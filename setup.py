"""Legacy entry point for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to `setup.py develop`
through this shim; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
