"""Adaptive-session engine: sequential from-scratch vs batched carry-over.

Reproduces the harness's measurement protocol (20 shared ground-truth
realizations per dataset, every algorithm scored on the same worlds) and
times the full adaptive ASTI/TRIM run both ways:

* **sequential** — one :meth:`ASTI.run` per realization with
  ``reuse_pool=False``: every round rebuilds its mRR pool from scratch,
  every cascade is revealed by its own reachability sweep (the pre-engine
  code path);
* **engine** — one :meth:`ASTI.run_batch` over all realizations with
  ``reuse_pool=True``: sessions advance round-synchronously, each round's
  cascades are revealed in one batched sweep, and each session's mRR pool
  is re-validated and carried into its next round.

Both paths consume identical per-session random streams.  Besides the
wall-clock speedup the measurement doubles as the carry-over equivalence
check: every engine run must reach ``eta``, and the mean seed count must
stay within a tight tolerance of the from-scratch mean (pool reuse is a
perf lever, not an accuracy trade).

Results are appended to ``benchmarks/results/adaptive_engine.json`` so the
engine's performance trajectory is tracked from PR to PR.  Run::

    python benchmarks/bench_adaptive_engine.py            # full profile
    python benchmarks/bench_adaptive_engine.py --quick    # CI profile

or through pytest (``pytest benchmarks/bench_adaptive_engine.py -s``),
which uses the quick profile and asserts the acceptance bar: the engine
must deliver **at least 2x** the sequential end-to-end throughput on the
20-realization harness run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.asti import ASTI
from repro.diffusion.ic import IndependentCascade
from repro.experiments.harness import sample_shared_realizations
from repro.graph import generators, weighting
from repro.utils.rng import spawn_generators

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "adaptive_engine.json"

#: ``eta_fraction = 0.5`` is the carry-friendly half of the paper's sweep
#: range: the root-count rule ``E[k] = n_i / eta_i`` stays in one regime
#: for many consecutive rounds, so most surviving sets re-validate.  The
#: small-eta end of the sweep shifts regimes nearly every round and
#: legitimately falls back to from-scratch pools — that end is covered by
#: the equivalence tests, not gated here.
#:
#: ``gated_batch_sizes`` holds the 2x-gated measurement (TRIM, whose
#: rounds are sampling-dominated); ``secondary_batch_sizes`` holds
#: TRIM-B, recorded for the trajectory but gated only against collapse:
#: its rounds are dominated by greedy max coverage over the pool, which
#: both paths pay identically, so carry-over's ~3.5x sample saving shows
#: up as a smaller end-to-end win (recorded ~1.7x).
FULL = {"graph_n": 1000, "eta_fraction": 0.5, "scale": 0.5,
        "realizations": 20, "epsilon": 0.5,
        "gated_batch_sizes": (1,), "secondary_batch_sizes": (4,)}
QUICK = {"graph_n": 600, "eta_fraction": 0.5, "scale": 0.5,
         "realizations": 20, "epsilon": 0.5,
         "gated_batch_sizes": (1,), "secondary_batch_sizes": (4,)}


def build_graph(n: int, seed: int = 0):
    """Preferential attachment + damped cascade weights (multi-round regime)."""
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.scaled_cascade(topology, 0.5)


def _measure_case(graph, model, eta, epsilon, realizations, batch_size, seed):
    streams = lambda: spawn_generators(seed + 1, len(realizations))  # noqa: E731

    sequential = ASTI(
        model, epsilon=epsilon, batch_size=batch_size, reuse_pool=False
    )
    start = time.perf_counter()
    fresh = [
        sequential.run(graph, eta, realization=phi, seed=rng)
        for phi, rng in zip(realizations, streams())
    ]
    sequential_seconds = time.perf_counter() - start

    engine = ASTI(
        model, epsilon=epsilon, batch_size=batch_size, reuse_pool=True
    )
    start = time.perf_counter()
    carried = engine.run_batch(graph, eta, realizations, seeds=streams())
    engine_seconds = time.perf_counter() - start

    fresh_mean = sum(r.seed_count for r in fresh) / len(fresh)
    carried_mean = sum(r.seed_count for r in carried) / len(carried)
    return {
        "sequential_seconds": round(sequential_seconds, 2),
        "engine_seconds": round(engine_seconds, 2),
        "speedup": round(sequential_seconds / engine_seconds, 2),
        "sequential_samples": sum(r.total_samples for r in fresh),
        "engine_samples": sum(r.total_samples for r in carried),
        "sequential_mean_seeds": round(fresh_mean, 2),
        "engine_mean_seeds": round(carried_mean, 2),
        "all_reached_eta": all(r.spread >= eta for r in carried),
        "seed_count_ratio": round(carried_mean / fresh_mean, 4),
    }


def measure(profile: dict, seed: int = 0) -> dict:
    """Both paths on the shared-realization harness protocol."""
    graph = build_graph(profile["graph_n"], seed=seed)
    model = IndependentCascade()
    eta = max(1, int(profile["eta_fraction"] * graph.n))
    realizations = sample_shared_realizations(
        graph, model, profile["realizations"], seed=seed + 10
    )
    def run_cases(batch_sizes):
        cases = {}
        for batch_size in batch_sizes:
            label = "TRIM" if batch_size == 1 else f"TRIM-B({batch_size})"
            cases[label] = _measure_case(
                graph, model, eta, profile["epsilon"], realizations,
                batch_size, seed,
            )
        return cases

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "eta": eta,
        "realizations": profile["realizations"],
        "epsilon": profile["epsilon"],
        "cases": run_cases(profile["gated_batch_sizes"]),
        "secondary_cases": run_cases(profile["secondary_batch_sizes"]),
    }


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"eta={result['eta']} | {result['realizations']} realizations",
        file=out,
    )
    for block in ("cases", "secondary_cases"):
        for name, case in result[block].items():
            print(
                f"  {name:<10} sequential {case['sequential_seconds']:>7.2f}s   "
                f"engine {case['engine_seconds']:>7.2f}s   "
                f"speedup {case['speedup']:>5.2f}x   "
                f"samples {case['sequential_samples']} -> {case['engine_samples']}   "
                f"mean seeds {case['sequential_mean_seeds']} -> "
                f"{case['engine_mean_seeds']}",
                file=out,
            )


#: End-to-end gate for the sampling-dominated TRIM case.  Recorded
#: speedups are ~3.5x (quick) / ~5.6x (full); 2.0x is the acceptance bar
#: with enough slack that shared-runner noise cannot flake the job while
#: losing the carry-over win still fails.
SPEEDUP_GATE = 2.0
#: TRIM-B's recorded win is ~1.7x (greedy max coverage dominates its
#: rounds and both paths pay it identically); gate only against losing
#: the win entirely, mirroring the other engines' stress-case gates.
SECONDARY_SPEEDUP_GATE = 1.2
#: Carry-over must not trade seeds for speed: the engine's mean seed count
#: may exceed the from-scratch mean by at most 3%.
SEED_RATIO_GATE = 1.03


def check_gates(result: dict, fail=SystemExit) -> None:
    """Raise unless every case clears the speedup and equivalence gates."""
    for block, bar in (
        ("cases", SPEEDUP_GATE),
        ("secondary_cases", SECONDARY_SPEEDUP_GATE),
    ):
        for name, case in result[block].items():
            if not case["all_reached_eta"]:
                raise fail(f"equivalence gate failed: {name} missed eta: {case}")
            if case["seed_count_ratio"] > SEED_RATIO_GATE:
                raise fail(f"seed-count gate failed: {name} {case}")
            if case["speedup"] < bar:
                raise fail(f"speedup gate failed: {name} {case}")


def test_engine_speedup():
    """Enforce the 2x end-to-end gate plus the carry-over equivalence bar."""
    # No record() here: pytest runs must not dirty the tracked trajectory
    # file — only explicit `python bench_adaptive_engine.py` runs append.
    result = measure(QUICK)
    report(result)
    check_gates(result, fail=AssertionError)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless the speedup/equivalence gates hold "
        "(CI uses this so one measurement both gates and records)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
