"""Figure 6: number of seed nodes vs. threshold under the LT model.

Paper artifact: the Figure 4 comparison repeated under linear threshold.
Reproduced shape: same orderings as IC, and (paper Section 6.3) "all the
algorithms select less nodes under the LT model than those under the IC
model" — the LT live-edge process is more permissive on weighted-cascade
weights, which we check against the cached IC sweep.
"""

import pytest

from benchmarks.conftest import QUICK, SWEEP_ALGORITHMS, get_sweep, print_artifact
from repro.experiments.report import format_series


@pytest.mark.benchmark(group="figure6")
def test_figure6_seeds_vs_threshold_lt(benchmark):
    sweep = benchmark.pedantic(lambda: get_sweep("LT"), rounds=1, iterations=1)

    series = {alg: sweep.series(alg, "seeds") for alg in SWEEP_ALGORITHMS}
    print_artifact(
        format_series(
            "eta/n",
            list(QUICK["eta_fractions"]),
            series,
            title="Figure 6 (nethept-sim, LT): mean seed count vs threshold",
        )
    )

    for alg in ("ASTI", "ASTI-4", "AdaptIM"):
        seeds = series[alg]
        assert all(seeds[i] <= seeds[i + 1] + 1e-9 for i in range(len(seeds) - 1)), alg

    # AdaptIM close to ASTI under LT as well.
    for a, b in zip(series["ASTI"], series["AdaptIM"]):
        assert b <= 1.5 * a + 1.0

    # Cross-model comparison at the largest threshold (Section 6.3).
    ic_sweep = get_sweep("IC")
    lt_seeds = series["ASTI"][-1]
    ic_seeds = ic_sweep.series("ASTI", "seeds")[-1]
    assert lt_seeds <= ic_seeds * 1.15 + 1.0
