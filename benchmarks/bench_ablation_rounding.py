"""Ablation A: the randomized rounding of the mRR root count.

Paper artifact: the Remark after Corollary 3.4 — fixing ``k = floor(n/eta)``
weakens the estimator bracket to ``[1 - 1/sqrt(e), 1]`` and fixing
``k = floor(n/eta) + 1`` to ``[1 - 1/e, 2]``, while randomized rounding with
``E[k] = n/eta`` achieves ``[1 - 1/e, 1]``.

We measure the estimate/truth ratio for all three rules on small graphs
where the exact expected truncated spread is enumerable, and assert:

* randomized rounding stays inside ``[1 - 1/e, 1]`` (with sampling slack);
* the ceil rule *overestimates* on instances with fractional ``n/eta``
  (ratios above 1), which randomized rounding prevents.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_artifact
from repro.diffusion.exact import exact_expected_truncated_spread
from repro.diffusion.ic import IndependentCascade
from repro.graph import generators
from repro.experiments.report import format_table
from repro.sampling.mrr import RootCountRule, estimate_truncated_spread_mrr

THETA = 20_000
ONE_MINUS_INV_E = 1.0 - 1.0 / np.e

# (graph, eta, seed-set) instances with fractional n/eta and enumerable
# realization spaces.
def make_instances():
    instances = []
    star = generators.star_graph(7, probability=0.5)
    instances.append(("star7/eta2", star, 2, [0]))
    instances.append(("star7/eta3", star, 3, [0]))
    example = generators.paper_example_graph()
    instances.append(("example/eta3", example, 3, [0]))
    chain = generators.path_graph(5, probability=0.75)
    instances.append(("chain5/eta2", chain, 2, [0]))
    return instances


def measure():
    model = IndependentCascade()
    rows = []
    ratios = {"randomized": [], "floor": [], "ceil": []}
    for name, graph, eta, seeds in make_instances():
        truth = exact_expected_truncated_spread(graph, model, seeds, eta)
        k_floor = graph.n // eta
        rules = {
            "randomized": None,  # default rule
            "floor": RootCountRule.fixed(max(1, k_floor), graph.n),
            "ceil": RootCountRule.fixed(min(graph.n, k_floor + 1), graph.n),
        }
        row = [name, round(truth, 3)]
        for label, rule in rules.items():
            estimate = estimate_truncated_spread_mrr(
                graph, model, seeds, eta, theta=THETA, seed=17, rule=rule
            )
            ratio = estimate / truth
            ratios[label].append(ratio)
            row.append(round(ratio, 3))
        rows.append(row)
    return rows, ratios


@pytest.mark.benchmark(group="ablation-rounding")
def test_rounding_ablation(benchmark):
    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_artifact(
        format_table(
            ["instance", "exact E[Gamma]", "randomized", "floor k", "ceil k"],
            rows,
            title="Ablation A: estimate/truth ratio by root-count rule "
            "(paper brackets: randomized [0.632, 1], floor [0.394, 1], ceil [0.632, 2])",
        )
    )

    slack = 0.06
    # Theorem 3.3: randomized rounding stays within [1 - 1/e, 1].
    for ratio in ratios["randomized"]:
        assert ONE_MINUS_INV_E - slack <= ratio <= 1.0 + slack

    # The ceil rule overestimates somewhere (its bracket reaches 2).
    assert max(ratios["ceil"]) > 1.0 + slack / 2

    # The floor rule never overestimates (bracket [1 - 1/sqrt(e), 1]).
    for ratio in ratios["floor"]:
        assert ratio <= 1.0 + slack
