"""Persistent pool store: warm-run speedups with bit-identity bars.

Measures the content-addressed artifact store (:mod:`repro.store`) on the
three consumers it accelerates, each as a cold-vs-warm pair over the same
store directory:

* **pool** — (m)RR pool generation: a cold ``BatchSampler.fill`` populates
  the store; a fresh sampler with the identical recipe replays it from
  disk.  The warm pool (members, indptr, root counts) must be
  byte-for-byte the cold pool, and a post-fill probe draw must match —
  the restored generator state is part of the artifact;
* **crn** — common-random-number world generation:
  ``CRNSpreadEvaluator`` construction cold vs warm, with the full
  candidate x world spread matrix compared bit-for-bit;
* **sweep** — an end-to-end ``run_sweep``: cold, warm, and store-less
  runs must select identical per-eta seed counts (the store may only
  change *when* sampling is paid, never *what* is sampled).

The gate: every warm leg at least ``--min-warm-speedup`` (default 5x)
over its cold leg, and every bit-identity flag true.  A fourth,
ungated-by-speedup **planner** leg measures a small ``sample_batch_size``
grid, feeds the timings to the execution planner as a calibration table,
and requires the planned pick to be within 10% of the best measured grid
point (on the recorded timings, so the bar is deterministic).

Results append to ``benchmarks/results/pool_store.json``.  Run::

    python benchmarks/bench_pool_store.py                 # full profile
    python benchmarks/bench_pool_store.py --quick --gate   # CI profile

or through pytest (quick profile), which always asserts the bit-identity
bars and asserts the warm-speedup bar when the cold legs are slow enough
to measure reliably.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.experiments.config import quick_config
from repro.experiments.harness import run_sweep
from repro.graph import generators, weighting
from repro.runtime.context import ExecutionContext
from repro.runtime.planner import (
    CalibrationEntry,
    CalibrationTable,
    graph_stats,
    plan,
)
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import RootCountRule
from repro.store import PoolStore

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "pool_store.json"

FULL = {
    "graph_n": 10_000,
    "pool_sets": 4_000,
    "batch_size": 256,
    "eta_fraction": 0.1,
    "crn_candidates": 64,
    "crn_worlds": 600,
    "sweep_n": 600,
    "sweep_realizations": 4,
    "planner_batches": (64, 256, 1024),
    "planner_eta_fraction": 0.1,
}
QUICK = {
    "graph_n": 4_000,
    "pool_sets": 2_000,
    "batch_size": 256,
    "eta_fraction": 0.1,
    "crn_candidates": 32,
    "crn_worlds": 400,
    "sweep_n": 400,
    "sweep_realizations": 3,
    "planner_batches": (64, 256, 1024),
    "planner_eta_fraction": 0.1,
}

#: A warm run is a digest-verified disk read where the cold run is a full
#: reverse-sampling (or forward-cascade) generation pass; 5x is a loose
#: floor for any graph big enough that the cold leg is measurable.
DEFAULT_MIN_WARM_SPEEDUP = 5.0

#: The planner leg's bar: the planned knob combination's *recorded*
#: seconds must be within this factor of the best recorded grid point.
PLANNER_MAX_RATIO = 1.10

#: Cold legs faster than this are timer noise, not workloads; the pytest
#: entry skips the speedup assertion (never the bit-identity bars) there.
MIN_MEASURABLE_COLD_SECONDS = 0.05


def build_graph(n: int, seed: int = 0):
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.weighted_cascade(topology)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_pool(graph, profile, store_dir, seed=0):
    """Cold fill vs warm (store-replayed) fill of one mRR pool."""
    model = IndependentCascade()
    eta = max(1, int(profile["eta_fraction"] * graph.n))
    rule = RootCountRule.for_target(graph.n, eta)

    def fill(store):
        context = ExecutionContext(
            sample_batch_size=profile["batch_size"], pool_store=store
        )
        engine = mrr_batch_sampler(
            graph, model, rule, seed=seed,
            batch_size=profile["batch_size"], context=context,
        )
        index = CoverageIndex(graph.n)
        seconds = _time(lambda: engine.fill(index, profile["pool_sets"]))
        members, indptr = index.packed()
        # The restored generator state is part of the contract: the next
        # draw after a warm fill must equal the next draw after the cold
        # fill, or a later grow_to would diverge.
        probe = engine._rng.integers(0, 2**32, size=4)
        return seconds, (members.copy(), indptr.copy(), probe)

    cold_seconds, cold = fill(PoolStore(store_dir))
    warm_store = PoolStore(store_dir)
    warm_seconds, warm = fill(warm_store)
    identical = all(np.array_equal(c, w) for c, w in zip(cold, warm))
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "bit_identical": bool(identical and warm_store.stats.hits >= 1),
    }


def measure_crn(graph, profile, store_dir, seed=0):
    """Cold vs warm CRN world generation, spread matrix compared."""
    model = IndependentCascade()
    candidates = [[int(v)] for v in range(profile["crn_candidates"])]

    def evaluate(store):
        context = ExecutionContext(pool_store=store)
        holder = {}
        seconds = _time(
            lambda: holder.setdefault(
                "evaluator",
                CRNSpreadEvaluator(
                    graph, model, n_sims=profile["crn_worlds"], seed=seed,
                    context=context,
                ),
            )
        )
        values = holder["evaluator"].evaluate_many(candidates)
        return seconds, np.asarray(values)

    cold_seconds, cold_values = evaluate(PoolStore(store_dir))
    warm_store = PoolStore(store_dir)
    warm_seconds, warm_values = evaluate(warm_store)
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "bit_identical": bool(
            np.array_equal(cold_values, warm_values)
            and warm_store.stats.hits >= 1
        ),
    }


def measure_sweep(profile, store_dir, seed=0):
    """End-to-end harness: store-less vs cold-store vs warm-store."""
    def run(pool_store):
        config = quick_config(
            graph_n=profile["sweep_n"],
            realizations=profile["sweep_realizations"],
            algorithms=("ASTI",),
            eta_fractions=(0.05, 0.15),
            seed=seed,
        ).scaled(pool_store=pool_store)
        holder = {}
        seconds = _time(lambda: holder.setdefault("sweep", run_sweep(config)))
        sweep = holder["sweep"]
        counts = [
            r.seed_count
            for eta in sweep.eta_values
            for r in sweep.outcomes[eta]["ASTI"].runs
        ]
        return seconds, counts

    plain_seconds, plain_counts = run(None)
    cold_seconds, cold_counts = run(store_dir)
    warm_seconds, warm_counts = run(store_dir)
    return {
        "plain_seconds": round(plain_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "bit_identical": bool(plain_counts == cold_counts == warm_counts),
        "seed_counts": plain_counts,
    }


def measure_planner(graph, profile, seed=0):
    """Grid-measure batch sizes, then require the planner to pick well.

    Each grid point is a full pool fill at that ``sample_batch_size``;
    the timings become a calibration table for this exact graph, and the
    planner's pick must be within :data:`PLANNER_MAX_RATIO` of the best
    recorded point *on the recorded timings* — a deterministic bar (the
    planner argmins over exactly these measurements), so the gate checks
    the planning plumbing, not the host's timer stability.
    """
    model = IndependentCascade()
    eta = max(1, int(profile["planner_eta_fraction"] * graph.n))
    rule = RootCountRule.for_target(graph.n, eta)
    stats = graph_stats(graph)

    recorded = {}
    for batch in profile["planner_batches"]:
        engine = mrr_batch_sampler(graph, model, rule, seed=seed, batch_size=batch)
        index = CoverageIndex(graph.n)
        recorded[batch] = _time(lambda: engine.fill(index, profile["pool_sets"]))

    table = CalibrationTable(
        entries=tuple(
            CalibrationEntry(
                n=stats.n, m=stats.m, degree_skew=stats.degree_skew,
                model="IC", sample_batch_size=batch, mc_batch_size=None,
                jobs=1, kernel_backend="auto", seconds=seconds,
            )
            for batch, seconds in recorded.items()
        )
    )
    decision = plan(graph, "IC", calibration=table)
    best_seconds = min(recorded.values())
    picked_seconds = recorded.get(decision.sample_batch_size, float("inf"))
    return {
        "grid_seconds": {str(b): round(s, 4) for b, s in recorded.items()},
        "picked_batch": decision.sample_batch_size,
        "picked_seconds": round(picked_seconds, 4),
        "best_seconds": round(best_seconds, 4),
        "ratio": round(picked_seconds / best_seconds, 3),
        "source": decision.source,
        "within_bar": bool(
            decision.source == "calibration"
            and picked_seconds <= PLANNER_MAX_RATIO * best_seconds
        ),
    }


def measure(profile: dict, seed: int = 0) -> dict:
    graph = build_graph(profile["graph_n"], seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-pool-store-") as tmp:
        cases = {
            "pool": measure_pool(graph, profile, os.path.join(tmp, "pool"), seed),
            "crn": measure_crn(graph, profile, os.path.join(tmp, "crn"), seed),
            "sweep": measure_sweep(profile, os.path.join(tmp, "sweep"), seed),
        }
    planner = measure_planner(graph, profile, seed)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "cpus": os.cpu_count(),
        "pool_sets": profile["pool_sets"],
        "crn_jobs": profile["crn_candidates"] * profile["crn_worlds"],
        "cases": cases,
        "planner": planner,
    }


def record(result: dict) -> None:
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"{result['pool_sets']} pool sets, {result['crn_jobs']} CRN evals",
        file=out,
    )
    for name, case in result["cases"].items():
        print(
            f"  {name:<6} cold {case['cold_seconds']:>8.3f}s   "
            f"warm {case['warm_seconds']:>8.3f}s   "
            f"speedup {case['speedup']:>7.2f}x   "
            f"bit-identical {case['bit_identical']}",
            file=out,
        )
    planner = result["planner"]
    print(
        f"  planner picked batch={planner['picked_batch']} "
        f"({planner['picked_seconds']:.3f}s) vs best {planner['best_seconds']:.3f}s "
        f"ratio {planner['ratio']:.3f} [{planner['source']}] "
        f"within-bar {planner['within_bar']}",
        file=out,
    )


def check_identity(result: dict) -> None:
    """Raise unless every leg replayed bit-identically."""
    broken = [
        name
        for name, case in result["cases"].items()
        if not case["bit_identical"]
    ]
    if broken:
        raise SystemExit(f"store replay not bit-identical: {broken}")
    if not result["planner"]["within_bar"]:
        raise SystemExit(
            f"planner pick outside {PLANNER_MAX_RATIO}x of best grid point: "
            f"{result['planner']}"
        )


def check_gates(result: dict, min_warm_speedup: float) -> None:
    check_identity(result)
    failures = {
        name: case["speedup"]
        for name, case in result["cases"].items()
        if name != "sweep" and case["speedup"] < min_warm_speedup
    }
    if failures:
        raise SystemExit(
            f"warm-speedup gate failed (< {min_warm_speedup}x): {failures}"
        )
    # The sweep leg re-pays everything but the sampling, so its bar is
    # only "warm is not slower" — the bit-identity flags carry the rigor.
    if result["cases"]["sweep"]["speedup"] < 1.0:
        raise SystemExit(
            f"warm sweep slower than cold: {result['cases']['sweep']}"
        )


def test_pool_store_gate():
    """Bit-identity always; the speedup bar when the cold legs are real."""
    import pytest

    result = measure(QUICK)
    report(result)
    check_identity(result)
    slow_enough = all(
        result["cases"][name]["cold_seconds"] >= MIN_MEASURABLE_COLD_SECONDS
        for name in ("pool", "crn")
    )
    if not slow_enough:
        pytest.skip(
            "cold legs under "
            f"{MIN_MEASURABLE_COLD_SECONDS}s are timer noise; the CI "
            "benchmark step gates the warm speedup"
        )
    for name in ("pool", "crn"):
        case = result["cases"][name]
        assert case["speedup"] >= DEFAULT_MIN_WARM_SPEEDUP, (name, case)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=DEFAULT_MIN_WARM_SPEEDUP,
        help=f"warm-vs-cold gate on the pool and CRN legs "
        f"(default {DEFAULT_MIN_WARM_SPEEDUP})",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless every bit-identity bar holds, every "
        "warm leg clears --min-warm-speedup, and the planner pick is "
        f"within {PLANNER_MAX_RATIO}x of the best grid point",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result, args.min_warm_speedup)
    else:
        check_identity(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
