"""Forward-engine throughput: per-cascade loop vs batched simulation.

Measures forward Monte-Carlo spread-estimation throughput (cascades per
second) on a ~10k-node generated graph for both execution paths:

* **loop** — the historical reference, one Python-level
  ``model.simulate`` call per cascade;
* **batched** — ``estimate_spread`` on the vectorized
  ``DiffusionModel.simulate_batch`` engine, one multi-cascade labeled
  forward BFS per ``mc_batch_size`` chunk;

plus **CELF end-to-end**: influence maximization with the fresh-noise
per-cascade estimator (``crn=False``) against the common-random-numbers
evaluator (``crn=True``), whose singleton initialization runs as a handful
of batched labeled sweeps.

The gated ``cases`` cover the regime the forward engine exists for — the
small-cascade workloads (singleton and few-seed estimates) that dominate
CELF initialization, oracle-greedy rounds, and seed-count heuristics.
``stress_cases`` hold the hub-seeded large-cascade points where the scalar
loop is already frontier-vectorized (Amdahl) and batching is at best a
modest win (IC) or near parity (LT, whose adaptive chunk shrinking bounds
the loss); they are recorded for the trajectory and gated only against
collapse.

Results are appended to ``benchmarks/results/forward_batching.json`` so the
engine's performance trajectory is tracked from PR to PR.  Run::

    python benchmarks/bench_forward_batching.py            # full profile
    python benchmarks/bench_forward_batching.py --quick    # CI profile

or through pytest (``pytest benchmarks/bench_forward_batching.py -s``),
which uses the quick profile and asserts the acceptance bars: **>= 5x**
spread-estimation throughput on the representative IC case and **>= 3x**
CELF end-to-end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines.celf import celf_influence_maximization
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.montecarlo import estimate_spread
from repro.graph import generators, weighting

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "forward_batching.json"

FULL = {"graph_n": 10_000, "samples": 4_000, "mc_batch_size": 256,
        "stress_samples": 1_000, "celf_k": 3, "celf_samples": 16}
QUICK = {"graph_n": 10_000, "samples": 1_500, "mc_batch_size": 256,
         "stress_samples": 500, "celf_k": 2, "celf_samples": 12}


def build_graph(n: int, seed: int = 0):
    """The ~10k-node benchmark graph: preferential attachment + WC weights."""
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.weighted_cascade(topology)


def _loop_estimate(graph, model, seeds, samples, seed):
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(samples):
        total += model.simulate(graph, seeds, rng).sum()
    return total / samples


def _measure_spread_case(graph, model, seeds, samples, mc_batch_size, seed):
    start = time.perf_counter()
    _loop_estimate(graph, model, seeds, samples, seed)
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    estimate_spread(
        graph, model, seeds, samples=samples, seed=seed,
        mc_batch_size=mc_batch_size,
    )
    batched_seconds = time.perf_counter() - start
    loop_rate = samples / loop_seconds
    batched_rate = samples / batched_seconds
    return {
        "loop_cascades_per_s": round(loop_rate, 1),
        "batched_cascades_per_s": round(batched_rate, 1),
        "speedup": round(batched_rate / loop_rate, 2),
    }


def _measure_celf_case(graph, model, k, samples, seed):
    start = time.perf_counter()
    loop_result = celf_influence_maximization(
        graph, model, k=k, samples=samples, seed=seed, crn=False
    )
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    crn_result = celf_influence_maximization(
        graph, model, k=k, samples=samples, seed=seed, crn=True
    )
    crn_seconds = time.perf_counter() - start
    return {
        "loop_seconds": round(loop_seconds, 2),
        "crn_seconds": round(crn_seconds, 2),
        "speedup": round(loop_seconds / crn_seconds, 2),
        "loop_seeds": loop_result.seeds,
        "crn_seeds": crn_result.seeds,
    }


def measure(profile: dict, seed: int = 0) -> dict:
    """Loop-vs-batched throughput for IC and LT, plus CELF end-to-end.

    ``cases`` holds the gated small-cascade measurements and the CELF run;
    ``stress_cases`` the hub-seeded large-cascade points, reported for the
    trajectory and gated only against collapse.
    """
    graph = build_graph(profile["graph_n"], seed=seed)
    degrees = graph.out_degrees()
    rng = np.random.default_rng(seed)
    median_node = int(np.argsort(-degrees)[graph.n // 2])
    small_set = sorted(int(v) for v in rng.choice(graph.n, size=5, replace=False))
    hub = int(degrees.argmax())
    samples = profile["samples"]
    mc_batch_size = profile["mc_batch_size"]

    cases = {}
    stress_cases = {}
    for model in (IndependentCascade(), LinearThreshold()):
        cases[f"{model.name}/singleton"] = _measure_spread_case(
            graph, model, [median_node], samples, mc_batch_size, seed
        )
        cases[f"{model.name}/small-set"] = _measure_spread_case(
            graph, model, small_set, samples, mc_batch_size, seed
        )
        stress_cases[f"{model.name}/hub"] = _measure_spread_case(
            graph, model, [hub], profile["stress_samples"], mc_batch_size, seed
        )
    # The LT weak spot (recorded ~0.85x): a hub seed on a *high-skew*
    # heavy-tailed graph, where the batch's widest levels are dominated by
    # the hub's huge in-neighborhoods and the scalar loop is already
    # frontier-vectorized.  Tracked separately so the trajectory shows
    # whether kernel work moves it; tests/test_forward_engine.py pins its
    # batch-vs-loop equivalence.
    skewed = weighting.weighted_cascade(
        generators.preferential_attachment(
            profile["graph_n"], 8, seed=seed + 1, directed=False
        )
    )
    skew_hub = int(skewed.out_degrees().argmax())
    stress_cases["LT/hub-skew"] = _measure_spread_case(
        skewed, LinearThreshold(), [skew_hub], profile["stress_samples"],
        mc_batch_size, seed,
    )
    cases["IC/celf"] = _measure_celf_case(
        graph, IndependentCascade(), profile["celf_k"],
        profile["celf_samples"], seed,
    )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "samples": samples,
        "mc_batch_size": mc_batch_size,
        "celf": {"k": profile["celf_k"], "samples": profile["celf_samples"]},
        "cases": cases,
        "stress_cases": stress_cases,
    }


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"{result['samples']} cascades | mc_batch_size={result['mc_batch_size']}",
        file=out,
    )
    for block in ("cases", "stress_cases"):
        print(f"  [{block}]", file=out)
        for name, case in result[block].items():
            if "loop_cascades_per_s" in case:
                print(
                    f"    {name:<13} loop {case['loop_cascades_per_s']:>9.1f}/s   "
                    f"batched {case['batched_cascades_per_s']:>9.1f}/s   "
                    f"speedup {case['speedup']:>6.2f}x",
                    file=out,
                )
            else:
                print(
                    f"    {name:<13} loop {case['loop_seconds']:>7.2f}s   "
                    f"crn {case['crn_seconds']:>7.2f}s   "
                    f"speedup {case['speedup']:>6.2f}x",
                    file=out,
                )


#: CI gate per gated case.  Recorded speedups: IC/singleton ~12-17x,
#: IC/small-set ~7-8x, LT/singleton ~2.5-3.3x, LT/small-set ~1.5-1.8x,
#: IC/celf ~6-8x.  The gates sit well below the recordings so shared-runner
#: timing noise cannot flake the job, while a real loss of the batching win
#: still fails.  LT's forward cascades were already cheap per level (one
#: threshold comparison, no per-edge coins), so its dispatch-amortization
#: headroom is structurally smaller than IC's.
GATES = {
    "IC/singleton": 5.0,
    "IC/small-set": 4.0,
    "LT/singleton": 1.7,
    "LT/small-set": 1.1,
    "IC/celf": 3.0,
}

#: Stress points (hub seeds, cascades covering a sizable graph fraction):
#: the scalar loop is already frontier-vectorized there, so batching is
#: near parity (recorded IC ~1.7x, LT ~0.85x); the gate only catches a
#: collapse of the adaptive chunk shrinking.
STRESS_GATE = 0.4


def test_forward_speedup():
    """Enforce the per-case throughput gates in ``GATES``."""
    # No record() here: pytest runs must not dirty the tracked trajectory
    # file — only explicit `python bench_forward_batching.py` runs append.
    result = measure(QUICK)
    report(result)
    for name, gate in GATES.items():
        assert result["cases"][name]["speedup"] >= gate, (name, result["cases"][name])
    for name, case in result["stress_cases"].items():
        assert case["speedup"] >= STRESS_GATE, (name, case)


def check_gates(result: dict) -> None:
    """Raise if any case falls below its gate (see GATES/STRESS_GATE)."""
    for name, gate in GATES.items():
        if result["cases"][name]["speedup"] < gate:
            raise SystemExit(f"gate failed: {name} {result['cases'][name]}")
    for name, case in result["stress_cases"].items():
        if case["speedup"] < STRESS_GATE:
            raise SystemExit(f"stress gate failed: {name} {case}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless the speedup gates hold (CI uses this "
        "so one measurement both gates and records)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
