"""Figure 10: marginal truncated spread by seed index.

Paper artifact (Appendix D): for each realization, the marginal spread of
each successive ASTI seed at the largest threshold — "the marginal spread
diminishes along the index of the seed node, which is consistent with the
property of submodularity", with fluctuations from realization randomness.

Reproduced shape: averaged across realizations, the first seeds contribute
far more than the last ones (we compare the first-third mean to the
last-third mean rather than requiring pointwise monotonicity, exactly
because single realizations fluctuate).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_artifact
from repro.experiments import figures
from repro.experiments.report import format_series


def build_result():
    return figures.figure10(
        dataset="nethept-sim",
        graph_n=320,
        realizations=4,
        eta_fraction=0.15,
        max_samples=12_000,
        seed=0,
    )


@pytest.mark.benchmark(group="figure10")
def test_figure10_marginal_spread(benchmark):
    result = benchmark.pedantic(build_result, rounds=1, iterations=1)

    means = result.mean_by_index()
    print_artifact(
        format_series(
            "seed index",
            list(range(1, len(means) + 1)),
            {"mean marginal spread": means},
            title=(
                f"Figure 10 (nethept-sim, IC): marginal spread per seed, "
                f"eta={result.eta}, {len(result.per_realization)} realizations"
            ),
        )
    )

    assert len(means) >= 3, "needs a multi-round regime to be meaningful"

    third = max(1, len(means) // 3)
    head = float(np.mean(means[:third]))
    tail = float(np.mean(means[-third:]))
    # Diminishing returns: early seeds contribute clearly more.
    assert head > tail

    # Every round contributed at least its own seed.
    assert min(means) >= 1.0

    # Total marginal spread accounts for the full realized spread >= eta.
    for seq in result.per_realization:
        assert sum(seq) >= result.eta
