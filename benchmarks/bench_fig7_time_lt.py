"""Figure 7: running time vs. threshold under the LT model.

Paper artifact: Figure 5's timing comparison under LT.  Reproduced shape:
the same orderings as IC, plus the paper's cross-model observation that
"the running time under the LT model is shorter than that under the IC
model under the same setting" (LT reverse sampling walks a single in-edge
per node instead of flipping every in-edge coin).
"""

import pytest

from benchmarks.conftest import QUICK, SWEEP_ALGORITHMS, get_sweep, print_artifact
from repro.experiments.report import format_series


@pytest.mark.benchmark(group="figure7")
def test_figure7_time_vs_threshold_lt(benchmark):
    sweep = benchmark.pedantic(lambda: get_sweep("LT"), rounds=1, iterations=1)

    series = {alg: sweep.series(alg, "seconds") for alg in SWEEP_ALGORITHMS}
    print_artifact(
        format_series(
            "eta/n",
            list(QUICK["eta_fractions"]),
            series,
            title="Figure 7 (nethept-sim, LT): mean seconds vs threshold",
            precision=3,
        )
    )

    largest = -1
    # Batched variants beat plain ASTI at the largest threshold.
    assert series["ASTI-8"][largest] <= series["ASTI"][largest]

    # Cross-model: ASTI under LT is not slower than under IC at the largest
    # threshold (generous 1.5x slack for scheduling noise on small runs).
    ic_time = get_sweep("IC").series("ASTI", "seconds")[largest]
    assert series["ASTI"][largest] <= 1.5 * ic_time
