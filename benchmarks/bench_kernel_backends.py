"""Kernel-backend throughput: compiled vs numpy labeled-BFS hot loops.

Measures every kernel driver the dispatch layer has — IC forward coin
flips, LT forward threshold walks, IC/LT reverse sampling, and the
deterministic replay sweep behind adaptive observation — on a ~10k-node
generated graph, once per measured backend:

* **numpy** — the vectorized per-level closures (the reference path);
* **numba** — the njit-compiled per-level kernels, measured only when the
  optional ``[numba]`` extra is importable; without it the compiled bars
  are *skipped, not failed*, and this script still runs the equivalence
  leg and records a trajectory entry.

The foregrounded case is the hub-seeded LT forward walk on a high-skew
heavy-tailed graph — the engine benchmark's historical ~0.85x weak spot —
which the compiled backend is expected to beat numpy on by **>= 2x** (the
CI gate on numba-enabled runners).

Backends are interchangeable bit for bit; the equivalence leg re-checks
that here on a small graph through the interpreted ``python`` backend (the
compiled kernels' source), so the kernel code path is exercised even on
machines without numba.

Results are appended to ``benchmarks/results/kernel_backends.json``.  Run::

    python benchmarks/bench_kernel_backends.py            # full profile
    python benchmarks/bench_kernel_backends.py --quick    # CI profile

or through pytest (``pytest benchmarks/bench_kernel_backends.py -s``),
which uses the quick profile, always asserts equivalence, and asserts the
speedup gates only where numba is installed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.realization import batch_reachable_from
from repro.graph import generators, weighting
from repro.kernels import numba_available, reset_stats, snapshot_stats

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "kernel_backends.json"

FULL = {"graph_n": 10_000, "skew_attachment": 8, "forward_sims": 600,
        "stress_sims": 400, "reverse_batch": 3_000, "replay_worlds": 24,
        "equiv_n": 300}
QUICK = {"graph_n": 10_000, "skew_attachment": 8, "forward_sims": 200,
         "stress_sims": 150, "reverse_batch": 1_000, "replay_worlds": 12,
         "equiv_n": 300}


def build_graphs(profile: dict, seed: int = 0):
    """The benchmark pair: the standard ~10k PA+WC graph and its high-skew
    sibling (heavier preferential attachment, hub-dominated levels)."""
    base = weighting.weighted_cascade(
        generators.preferential_attachment(
            profile["graph_n"], 3, seed=seed, directed=False
        )
    )
    skewed = weighting.weighted_cascade(
        generators.preferential_attachment(
            profile["graph_n"], profile["skew_attachment"], seed=seed + 1,
            directed=False,
        )
    )
    return base, skewed


def _measured_backends():
    return ("numpy", "numba") if numba_available() else ("numpy",)


def _time_per_backend(run) -> dict:
    """Run ``run(kernel_name)`` once warm-up + once timed per backend.

    The warm-up call absorbs numba's JIT compilation (reported separately
    via the dispatch stats) so the bars compare steady-state throughput.
    """
    case = {}
    for backend in _measured_backends():
        run(backend)  # warm-up: JIT compile + page in the CSR arrays
        start = time.perf_counter()
        run(backend)
        case[f"{backend}_seconds"] = round(time.perf_counter() - start, 4)
    if "numba_seconds" in case:
        case["speedup"] = round(
            case["numpy_seconds"] / max(case["numba_seconds"], 1e-9), 2
        )
    else:
        case["speedup"] = None  # no numba here: skipped, not failed
    return case


def measure(profile: dict, seed: int = 0) -> dict:
    """Compiled-vs-numpy bars for every kernel driver, plus JIT totals."""
    base, skewed = build_graphs(profile, seed=seed)
    rng = np.random.default_rng(seed)
    median_node = int(np.argsort(-base.out_degrees())[base.n // 2])
    skew_hub = int(skewed.out_degrees().argmax())
    ic, lt = IndependentCascade(), LinearThreshold()

    roots = rng.integers(0, base.n, profile["reverse_batch"], dtype=np.int64)
    roots_indptr = np.arange(profile["reverse_batch"] + 1, dtype=np.int64)
    replay_realizations = [
        ic.sample_realization(base, np.random.default_rng(seed + i))
        for i in range(profile["replay_worlds"])
    ]
    replay_seeds = [[int(v)] for v in
                    rng.integers(0, base.n, profile["replay_worlds"])]

    reset_stats()
    cases = {
        "ic_forward/singleton": _time_per_backend(
            lambda k: ic.simulate_batch(
                base, [median_node], profile["forward_sims"], seed=seed, kernel=k
            )
        ),
        "lt_forward/singleton": _time_per_backend(
            lambda k: lt.simulate_batch(
                base, [median_node], profile["forward_sims"], seed=seed, kernel=k
            )
        ),
        # The headline stress case: hub-seeded LT on the high-skew graph.
        "lt_forward/hub-skew": _time_per_backend(
            lambda k: lt.simulate_batch(
                skewed, [skew_hub], profile["stress_sims"], seed=seed, kernel=k
            )
        ),
        "ic_reverse/batch": _time_per_backend(
            lambda k: ic.reverse_sample_batch(
                base, roots, roots_indptr, np.random.default_rng(seed), kernel=k
            )
        ),
        "lt_reverse/batch": _time_per_backend(
            lambda k: lt.reverse_sample_batch(
                base, roots, roots_indptr, np.random.default_rng(seed), kernel=k
            )
        ),
        "replay_ic/batch": _time_per_backend(
            lambda k: batch_reachable_from(
                replay_realizations, replay_seeds, kernel=k
            )
        ),
    }
    stats = snapshot_stats()
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": base.n,
        "graph_m": base.m,
        "skew_graph_m": skewed.m,
        "numba_available": numba_available(),
        "jit_seconds": round(stats["jit_seconds"], 3),
        "kernel_calls": stats["calls"],
        "cases": cases,
    }


def check_equivalence(profile: dict, seed: int = 0) -> None:
    """Bit-identity of the kernel path on a small graph, via ``python``.

    Covers all six drivers; raises ``AssertionError`` on the first
    mismatch.  Runs on every machine — this is the benchmark's correctness
    leg, independent of whether numba is installed.
    """
    graph = weighting.weighted_cascade(
        generators.preferential_attachment(
            profile["equiv_n"], 3, seed=seed, directed=False
        )
    )
    rng = np.random.default_rng(seed)
    roots = rng.integers(0, graph.n, 80, dtype=np.int64)
    roots_indptr = np.arange(81, dtype=np.int64)
    for model in (IndependentCascade(), LinearThreshold()):
        fwd = {
            k: model.simulate_batch(graph, [0, 3], 40, seed=5, kernel=k)
            for k in ("numpy", "python")
        }
        assert np.array_equal(fwd["numpy"][0], fwd["python"][0])
        assert np.array_equal(fwd["numpy"][1], fwd["python"][1])
        rev = {
            k: model.reverse_sample_batch(
                graph, roots, roots_indptr, np.random.default_rng(7), kernel=k
            )
            for k in ("numpy", "python")
        }
        assert np.array_equal(rev["numpy"][0], rev["python"][0])
        assert np.array_equal(rev["numpy"][1], rev["python"][1])
        worlds = [
            model.sample_realization(graph, np.random.default_rng(seed + i))
            for i in range(5)
        ]
        seeds_per = [[i] for i in range(5)]
        replay = {
            k: batch_reachable_from(worlds, seeds_per, kernel=k)
            for k in ("numpy", "python")
        }
        assert np.array_equal(replay["numpy"], replay["python"])


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} "
        f"(skew m={result['skew_graph_m']}) | "
        f"numba={'yes' if result['numba_available'] else 'no (bars skipped)'} | "
        f"jit {result['jit_seconds']:.2f}s",
        file=out,
    )
    for name, case in result["cases"].items():
        if case["speedup"] is None:
            print(
                f"  {name:<22} numpy {case['numpy_seconds']:>8.4f}s   "
                f"numba    (skipped)",
                file=out,
            )
        else:
            print(
                f"  {name:<22} numpy {case['numpy_seconds']:>8.4f}s   "
                f"numba {case['numba_seconds']:>8.4f}s   "
                f"speedup {case['speedup']:>6.2f}x",
                file=out,
            )


#: The headline acceptance bar: the compiled hub-seeded LT walk on the
#: high-skew graph must beat the numpy batched path by at least this much
#: on numba-enabled runners.
STRESS_GATE = ("lt_forward/hub-skew", 2.0)

#: Every other compiled bar only gates against collapse — the compiled
#: kernels must never make a driver materially slower than the closures
#: (warm, steady-state; shared-runner noise headroom included).
FLOOR_GATE = 0.5


def check_gates(result: dict) -> None:
    """Raise unless the compiled bars hold their gates (numba runs only)."""
    if not result["numba_available"]:
        return  # skipped, not failed
    name, gate = STRESS_GATE
    if result["cases"][name]["speedup"] < gate:
        raise SystemExit(f"gate failed: {name} {result['cases'][name]}")
    for name, case in result["cases"].items():
        if case["speedup"] is not None and case["speedup"] < FLOOR_GATE:
            raise SystemExit(f"floor gate failed: {name} {case}")


def test_backend_equivalence():
    """Bit-identity of the kernel path across all six drivers."""
    check_equivalence(QUICK)


def test_compiled_speedup():
    """Enforce the compiled-vs-numpy gates (skipped without numba)."""
    import pytest

    if not numba_available():
        pytest.skip("numba not installed: compiled bars are skipped")
    # No record() here: pytest runs must not dirty the tracked trajectory.
    result = measure(QUICK)
    report(result)
    name, gate = STRESS_GATE
    assert result["cases"][name]["speedup"] >= gate, result["cases"][name]
    for case_name, case in result["cases"].items():
        if case["speedup"] is not None:
            assert case["speedup"] >= FLOOR_GATE, (case_name, case)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless the compiled speedup gates hold "
        "(no-ops without numba: bars are skipped, not failed)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    profile = QUICK if args.quick else FULL
    check_equivalence(profile, seed=args.seed)
    print("equivalence: python backend bit-identical to numpy on all drivers")
    result = measure(profile, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
