"""Figure 9: total influence spread vs. threshold under the IC model.

Paper artifact (Appendix C): realized spread per algorithm across the eta
sweep.  Reproduced shape:

* every adaptive algorithm's mean spread is at least eta (they stop only
  once the target is reached);
* ASTI's spread stays close to eta (it stops promptly), while large-batch
  variants overshoot more at small thresholds (paper: ASTI-8's spread
  "significantly overshoots 0.01n" because a whole batch lands at once);
* spreads grow with the threshold for every algorithm.
"""

import pytest

from benchmarks.conftest import QUICK, SWEEP_ALGORITHMS, get_sweep, print_artifact
from repro.experiments.report import format_series


@pytest.mark.benchmark(group="figure9")
def test_figure9_spread_vs_threshold_ic(benchmark):
    sweep = benchmark.pedantic(lambda: get_sweep("IC"), rounds=1, iterations=1)

    series = {alg: sweep.series(alg, "spread") for alg in SWEEP_ALGORITHMS}
    print_artifact(
        format_series(
            "eta/n",
            list(QUICK["eta_fractions"]),
            series,
            title="Figure 9 (nethept-sim, IC): mean realized spread vs threshold",
            precision=1,
        )
    )

    eta_values = list(sweep.eta_values)

    # Adaptive algorithms always reach the target.
    for alg in ("ASTI", "ASTI-4", "ASTI-8", "AdaptIM"):
        for spread, eta in zip(series[alg], eta_values):
            assert spread >= eta, (alg, eta)

    # Spread grows with the threshold.
    for alg in SWEEP_ALGORITHMS:
        spreads = series[alg]
        assert spreads[-1] >= spreads[0], alg

    # Batch overshoot at the smallest threshold: ASTI-8 >= ASTI.
    assert series["ASTI-8"][0] >= series["ASTI"][0]
