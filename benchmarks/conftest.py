"""Shared configuration for the reproduction benchmarks.

Every module under ``benchmarks/`` regenerates one artifact of the paper
(a table or a figure) at a reduced scale, prints it in ASCII, and asserts
its qualitative shape.  Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated tables.  The QUICK profile keeps the
full suite in the minutes range; raise the constants for a closer-to-paper
run (the drivers accept arbitrary sizes).
"""

from __future__ import annotations

import pytest

# The shrunk measurement profile shared by the figure benchmarks.
QUICK = {
    "graph_n": 320,
    "realizations": 3,
    "eta_fractions": (0.02, 0.06, 0.12),
    "max_samples": 12_000,
    "seed": 0,
}

#: Algorithm roster for the sweep figures (full paper roster minus ASTI-2,
#: which adds little signal beyond ASTI-4 at this scale).
SWEEP_ALGORITHMS = ("ASTI", "ASTI-4", "ASTI-8", "AdaptIM", "ATEUC")


@pytest.fixture(scope="session")
def quick_profile():
    return dict(QUICK)


_SWEEP_CACHE = {}


def get_sweep(model_name: str):
    """The shared NetHEPT-sim sweep behind Figures 4/5/9 (IC) and 6/7 (LT).

    Computed once per model per session; the figure benchmarks that merely
    re-slice it (times, spreads) reuse the cached run, exactly as the paper
    derives several figures from one measurement campaign.
    """
    if model_name not in _SWEEP_CACHE:
        from repro.experiments import figures

        _SWEEP_CACHE[model_name] = figures.threshold_sweep(
            dataset="nethept-sim",
            model_name=model_name,
            algorithms=SWEEP_ALGORITHMS,
            **QUICK,
        )
    return _SWEEP_CACHE[model_name]


def print_artifact(text: str) -> None:
    """Banner-print one regenerated artifact."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)
