"""Sampling-engine throughput: single-set reference vs batched engine.

Measures (m)RR pool-growth throughput (sets per second) on a ~10k-node
generated graph for both generation paths:

* **single** — the one-at-a-time reference (`RRSampler.sample_into` /
  `MRRSampler.sample_into`), one Python-level reverse BFS per set;
* **batched** — the vectorized `BatchSampler`, one multi-source labeled
  reverse BFS per `batch_size` sets.

Results (throughputs, speedups, configuration) are appended to
``benchmarks/results/sampler_batching.json`` so the engine's performance
trajectory is tracked from PR to PR.  Run::

    python benchmarks/bench_sampler_batching.py            # full profile
    python benchmarks/bench_sampler_batching.py --quick    # CI profile

or through pytest (``pytest benchmarks/bench_sampler_batching.py -s``),
which uses the quick profile and asserts the acceptance bar: the batched
engine must deliver **at least 5x** the single-set throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.graph import generators, weighting
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler, rr_batch_sampler
from repro.sampling.mrr import MRRSampler, RootCountRule
from repro.sampling.rr import RRSampler

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "sampler_batching.json"

#: ``eta_fraction`` sets the mRR truncation target eta = fraction * n, i.e.
#: the mean root count k = n / eta.  0.1 (k ~ 10) is a representative point
#: of the paper's eta sweeps and is the gated case; 0.02 (k ~ 50) is the
#: ungated stress case where single-set sampling is already well
#: frontier-vectorized (per-set frontiers start at 50 nodes), so batching
#: has less dispatch overhead left to remove (Amdahl).
FULL = {"graph_n": 10_000, "sets": 4_000, "batch_size": 256,
        "eta_fraction": 0.1, "stress_eta_fraction": 0.02}
QUICK = {"graph_n": 10_000, "sets": 1_500, "batch_size": 256,
         "eta_fraction": 0.1, "stress_eta_fraction": 0.02}


def build_graph(n: int, seed: int = 0):
    """The ~10k-node benchmark graph: preferential attachment + WC weights."""
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.weighted_cascade(topology)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_case(graph, model, family, eta, rule, sets, batch_size, seed):
    if family == "rr":
        single = RRSampler(graph, model, seed=seed)
        engine = rr_batch_sampler(graph, model, seed=seed, batch_size=batch_size)
    else:
        single = MRRSampler(graph, model, eta, seed=seed, rule=rule)
        engine = mrr_batch_sampler(
            graph, model, rule, seed=seed, batch_size=batch_size
        )
    single_seconds = _time(lambda: single.sample_into(CoverageIndex(graph.n), sets))
    batched_seconds = _time(lambda: engine.fill(CoverageIndex(graph.n), sets))
    single_rate = sets / single_seconds
    batched_rate = sets / batched_seconds
    return {
        "single_sets_per_s": round(single_rate, 1),
        "batched_sets_per_s": round(batched_rate, 1),
        "speedup": round(batched_rate / single_rate, 2),
    }


def measure(profile: dict, seed: int = 0) -> dict:
    """Throughput of both paths for RR and mRR pools under IC and LT.

    The ``cases`` block holds the gated measurements (RR, and mRR at the
    representative ``eta_fraction``); ``stress_cases`` holds the large
    root-count mRR point, reported for the trajectory but not gated.
    """
    graph = build_graph(profile["graph_n"], seed=seed)
    eta = max(1, int(profile["eta_fraction"] * graph.n))
    rule = RootCountRule.for_target(graph.n, eta)
    stress_eta = max(1, int(profile["stress_eta_fraction"] * graph.n))
    stress_rule = RootCountRule.for_target(graph.n, stress_eta)
    sets = profile["sets"]
    batch_size = profile["batch_size"]

    cases = {}
    stress_cases = {}
    for model in (IndependentCascade(), LinearThreshold()):
        for family in ("rr", "mrr"):
            cases[f"{model.name}/{family}"] = _measure_case(
                graph, model, family, eta, rule, sets, batch_size, seed
            )
        stress_cases[f"{model.name}/mrr"] = _measure_case(
            graph, model, "mrr", stress_eta, stress_rule, sets, batch_size, seed
        )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "eta": eta,
        "stress_eta": stress_eta,
        "sets": sets,
        "batch_size": batch_size,
        "cases": cases,
        "stress_cases": stress_cases,
    }


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"{result['sets']} sets | engine batch_size={result['batch_size']}",
        file=out,
    )
    for block, eta_key in (("cases", "eta"), ("stress_cases", "stress_eta")):
        print(f"  [{block}: eta={result[eta_key]}]", file=out)
        for name, case in result[block].items():
            print(
                f"    {name:<8} single {case['single_sets_per_s']:>9.1f}/s   "
                f"batched {case['batched_sets_per_s']:>9.1f}/s   "
                f"speedup {case['speedup']:>6.2f}x",
                file=out,
            )


#: CI gate per case.  The recorded speedups are ~5.9x (IC/mrr) to ~15x
#: (LT pools); the gates sit below them so timing noise on shared CI
#: runners cannot flake the job, while a real regression (losing the
#: batching win) still fails.
GATES = {"IC/rr": 5.0, "LT/rr": 5.0, "LT/mrr": 5.0, "IC/mrr": 4.0}
STRESS_GATE = 1.2


def test_batched_speedup():
    """Enforce the per-case throughput gates in ``GATES``.

    Recorded speedups are ~5.5-14x; the enforced gates sit below them
    (5x, except 4x for IC/mrr whose recorded margin is smallest, and
    1.2x for the large-root-count stress point) so shared-runner noise
    cannot flake the job while a real loss of the batching win still
    fails.
    """
    # No record() here: pytest runs must not dirty the tracked trajectory
    # file — only explicit `python bench_sampler_batching.py` runs append.
    result = measure(QUICK)
    report(result)
    for name, case in result["cases"].items():
        assert case["speedup"] >= GATES[name], (name, case)
    for name, case in result["stress_cases"].items():
        assert case["speedup"] >= STRESS_GATE, (name, case)


def check_gates(result: dict) -> None:
    """Raise if any case falls below its gate (see GATES/STRESS_GATE)."""
    for name, case in result["cases"].items():
        if case["speedup"] < GATES[name]:
            raise SystemExit(f"gate failed: {name} {case}")
    for name, case in result["stress_cases"].items():
        if case["speedup"] < STRESS_GATE:
            raise SystemExit(f"stress gate failed: {name} {case}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless the speedup gates hold (CI uses this "
        "so one measurement both gates and records)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
