"""Figure 3: degree distributions of the tested datasets.

Paper artifact: log-log scatter of (degree, fraction of nodes) showing
power-law tails on all four datasets.  We regenerate the distribution,
print a log-binned histogram, and assert the two power-law signatures:
monotone-decreasing head and a tail stretching far beyond the mean degree.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_artifact
from repro.experiments import datasets, figures
from repro.experiments.report import format_histogram

BENCH_N = 1000


def build_distributions():
    override = {name: BENCH_N for name in datasets.dataset_names()}
    return figures.figure3(n_override=override, seed=0)


@pytest.mark.benchmark(group="figure3")
def test_figure3_degree_distributions(benchmark):
    distributions = benchmark.pedantic(build_distributions, rounds=1, iterations=1)

    for name, dist in distributions.items():
        print_artifact(format_histogram(dist, title=f"Figure 3: {name} (fraction of nodes by degree)"))

    for name, dist in distributions.items():
        degrees = np.array(sorted(dist))
        fractions = np.array([dist[d] for d in degrees])
        assert fractions.sum() == pytest.approx(1.0)

        # Power-law signature 1: the distribution's mode sits at or below
        # the mean — the mass is in the small degrees, not the hubs.
        mean_degree = float((degrees * fractions).sum())
        modal_degree = degrees[fractions.argmax()]
        assert modal_degree <= 1.2 * mean_degree, name

        # Power-law signature 2: a heavy tail — max degree far above the
        # mean (Figure 3 spans 3-4 decades on the big graphs).
        assert degrees.max() > 4 * mean_degree, name

        # Fraction mass decays: the top-decile degrees hold little mass.
        tail_mass = fractions[degrees > 4 * mean_degree].sum()
        assert tail_mass < 0.1, name
