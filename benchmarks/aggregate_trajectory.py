"""Merge the per-gate benchmark trajectories into one machine-readable file.

Each gated engine benchmark appends its measurements to its own JSON list
under ``benchmarks/results/``.  This script folds all of them into a single
top-level ``BENCH_trajectory.json`` keyed by gate name, so the performance
history of every engine gate is readable from the repo root without knowing
the per-benchmark file layout::

    python benchmarks/aggregate_trajectory.py            # writes the file
    python benchmarks/aggregate_trajectory.py --check    # also fails if a
                                                         # gate has no runs

The output shape is::

    {
      "gates": {"sampler_batching": [ ...entries... ], ...},
      "entry_counts": {"sampler_batching": 7, ...},
      "latest": {"sampler_batching": { ...last entry... }, ...}
    }

The merged view is **deduplicated**: repeated runs of the same
configuration (same graph size, worker count, host CPU count, profile
knobs — the :data:`IDENTITY_KEYS`) keep only the latest entry, so
re-running a gate locally a dozen times does not drown the trajectory in
near-identical rows.  Entries are then stable-sorted by timestamp (ties
keep append order), so interleaved histories from different machines
merge chronologically.  The per-gate files under ``results/`` keep the
full append-only history; only this merged view is pruned.

CI runs it right after the gates, so the uploaded artifact (and any commit
of the results directory) always carries the merged view alongside the
per-gate files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

#: Fields that identify a benchmark *configuration* (as opposed to its
#: measurements): two entries agreeing on every present identity key are
#: the same experiment re-run, and only the latest is kept.  Measurement
#: fields (rates, speedups, seconds) and the timestamp never participate,
#: so a re-run with different numbers still deduplicates.
IDENTITY_KEYS = (
    "graph_n",
    "graph_m",
    "jobs",
    "cpus",
    "profile",
    "pool_sets",
    "crn_jobs",
    "batch_sizes",
    "backend",
    "seed",
)


def entry_identity(entry: object):
    """The configuration key of one entry, or ``None`` if anonymous.

    Anonymous entries (non-dict rows, or dicts carrying none of the
    identity fields) are never deduplicated — without a configuration to
    compare, "same experiment" is undecidable and dropping data would be
    worse than keeping a duplicate.
    """
    if not isinstance(entry, dict):
        return None
    present = [key for key in IDENTITY_KEYS if key in entry]
    if not present:
        return None
    return tuple(
        (key, json.dumps(entry[key], sort_keys=True, default=str))
        for key in present
    )


def dedupe_history(history: list) -> list:
    """Keep the latest entry per configuration; stable-sort by timestamp.

    "Latest" is by append order (the recorders only ever append), which
    also resolves entries with equal or missing timestamps.  The sort is
    stable on (timestamp, original position), so a merged view of runs
    from several machines reads chronologically without reshuffling
    same-second neighbors.
    """
    latest: dict = {}
    anonymous = []
    for position, entry in enumerate(history):
        identity = entry_identity(entry)
        if identity is None:
            anonymous.append((position, entry))
        else:
            latest[identity] = (position, entry)
    kept = list(latest.values()) + anonymous

    def sort_key(pair):
        position, entry = pair
        stamp = entry.get("timestamp", "") if isinstance(entry, dict) else ""
        return (str(stamp), position)

    return [entry for _, entry in sorted(kept, key=sort_key)]


def aggregate(results_dir: Path = RESULTS_DIR) -> dict:
    """Fold every ``results/*.json`` history list into one document."""
    gates = {}
    for path in sorted(results_dir.glob("*.json")):
        history = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = [history]
        gates[path.stem] = dedupe_history(history)
    return {
        "gates": gates,
        "entry_counts": {name: len(history) for name, history in gates.items()},
        "latest": {
            name: history[-1] for name, history in gates.items() if history
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when no gate histories exist or one is empty",
    )
    parser.add_argument(
        "--out", default=str(OUTPUT_PATH), help="output path (repo root default)"
    )
    args = parser.parse_args()
    merged = aggregate()
    out_path = Path(args.out)
    out_path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    names = ", ".join(sorted(merged["gates"])) or "none"
    print(f"merged {len(merged['gates'])} gate trajectories ({names}) -> {out_path}")
    if args.check:
        if not merged["gates"]:
            print("no benchmark trajectories found", file=sys.stderr)
            return 1
        empty = [name for name, hist in merged["gates"].items() if not hist]
        if empty:
            print(f"empty trajectories: {empty}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
