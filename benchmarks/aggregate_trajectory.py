"""Merge the per-gate benchmark trajectories into one machine-readable file.

Each gated engine benchmark appends its measurements to its own JSON list
under ``benchmarks/results/``.  This script folds all of them into a single
top-level ``BENCH_trajectory.json`` keyed by gate name, so the performance
history of every engine gate is readable from the repo root without knowing
the per-benchmark file layout::

    python benchmarks/aggregate_trajectory.py            # writes the file
    python benchmarks/aggregate_trajectory.py --check    # also fails if a
                                                         # gate has no runs

The output shape is::

    {
      "gates": {"sampler_batching": [ ...entries... ], ...},
      "entry_counts": {"sampler_batching": 7, ...},
      "latest": {"sampler_batching": { ...last entry... }, ...}
    }

CI runs it right after the gates, so the uploaded artifact (and any commit
of the results directory) always carries the merged view alongside the
per-gate files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"


def aggregate(results_dir: Path = RESULTS_DIR) -> dict:
    """Fold every ``results/*.json`` history list into one document."""
    gates = {}
    for path in sorted(results_dir.glob("*.json")):
        history = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = [history]
        gates[path.stem] = history
    return {
        "gates": gates,
        "entry_counts": {name: len(history) for name, history in gates.items()},
        "latest": {
            name: history[-1] for name, history in gates.items() if history
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when no gate histories exist or one is empty",
    )
    parser.add_argument(
        "--out", default=str(OUTPUT_PATH), help="output path (repo root default)"
    )
    args = parser.parse_args()
    merged = aggregate()
    out_path = Path(args.out)
    out_path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    names = ", ".join(sorted(merged["gates"])) or "none"
    print(f"merged {len(merged['gates'])} gate trajectories ({names}) -> {out_path}")
    if args.check:
        if not merged["gates"]:
            print("no benchmark trajectories found", file=sys.stderr)
            return 1
        empty = [name for name, hist in merged["gates"].items() if not hist]
        if empty:
            print(f"empty trajectories: {empty}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
