"""Ablation B: truncated vs. vanilla objective for adaptive seeding.

Paper artifacts: Example 2.3 (Section 2.4) and the ASTI-vs-AdaptIM
efficiency analysis (Section 6.2).

1.  On the Example 2.3 graph at eta = 2, the exact truncated-greedy policy
    needs 1 seed on every realization while the exact vanilla-greedy policy
    needs 2 seeds with probability 1/4 (expected 1.25).
2.  On a damped social graph, ASTI (truncated mRR objective) should need no
    more samples than AdaptIM (vanilla RR objective) to finish an adaptive
    run — mRR counts scale with eta_i, RR counts with n_i.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_artifact
from repro.baselines.adaptim import AdaptIM
from repro.baselines.oracle import ExactOracleSelector
from repro.core.asti import ASTI, run_adaptive_policy
from repro.diffusion.ic import IndependentCascade
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations
from repro.experiments.report import format_table

TRIALS = 60


def run_example_policies():
    from repro.graph.generators import paper_example_graph

    model = IndependentCascade()
    graph = paper_example_graph()
    truncated_counts = []
    vanilla_counts = []
    for i in range(TRIALS):
        phi = model.sample_realization(graph, seed=5000 + i)
        truncated_counts.append(
            run_adaptive_policy(
                graph, 2, model, ExactOracleSelector(model, truncated=True),
                realization=phi, seed=i,
            ).seed_count
        )
        vanilla_counts.append(
            run_adaptive_policy(
                graph, 2, model, ExactOracleSelector(model, truncated=False),
                realization=phi, seed=i,
            ).seed_count
        )
    return float(np.mean(truncated_counts)), float(np.mean(vanilla_counts))


def run_sampler_comparison():
    model = IndependentCascade()
    graph = datasets.load_dataset("nethept-sim", n=320, seed=0)
    worlds = sample_shared_realizations(graph, model, 3, seed=9)
    eta = 38
    asti_samples, adaptim_samples = [], []
    for i, phi in enumerate(worlds):
        asti_samples.append(
            ASTI(model, max_samples=20_000).run(graph, eta, realization=phi, seed=i).total_samples
        )
        adaptim_samples.append(
            AdaptIM(model, max_samples=20_000).run(graph, eta, realization=phi, seed=i).total_samples
        )
    return float(np.mean(asti_samples)), float(np.mean(adaptim_samples))


@pytest.mark.benchmark(group="ablation-truncated")
def test_truncated_vs_vanilla_objective(benchmark):
    def measure():
        return run_example_policies(), run_sampler_comparison()

    (trunc_mean, vanilla_mean), (asti_sets, adaptim_sets) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    print_artifact(
        format_table(
            ["quantity", "truncated objective", "vanilla objective", "paper expectation"],
            [
                ["Example 2.3: expected seeds", round(trunc_mean, 3),
                 round(vanilla_mean, 3), "1.0 vs 1.25"],
                ["nethept-sim eta=38: mean sample sets", round(asti_sets, 0),
                 round(adaptim_sets, 0), "mRR << RR (Sec 6.2)"],
            ],
            title="Ablation B: truncated vs vanilla objective",
        )
    )

    # Example 2.3: truncated-greedy solves every realization with one seed.
    assert trunc_mean == pytest.approx(1.0)
    # Vanilla greedy pays the phi_4 penalty (expected 1.25, binomial noise).
    assert vanilla_mean > 1.05

    # Sampling economics: the truncated objective needs no more sets.
    assert asti_sets <= adaptim_sets * 1.1
