"""Service load gate: latency under load, backpressure, chaos, degradation.

Drives the always-on seed-selection service (``repro.service``) with
concurrent client sessions and holds it to the same bar as the offline
library: every ``ok`` reply must be **bit-identical** to a cold
``jobs=1`` run of the same request seed, no matter what the service
survived to produce it.  Five legs:

* **cold** — concurrent estimate load on a fresh server; records p50/p99
  latency and throughput, requires zero failed requests and bit-identity
  for every reply;
* **warm** — the same requests again; the cached graphs and carried mRR
  pools must be *adopted* (``carry_adopted`` > 0) and the replies must
  not change by a bit;
* **backpressure** — a one-slot server (``max_in_flight=1``,
  ``max_queue=0``) with a stalled first request; the flood behind it
  must be shed with typed ``overloaded`` replies, never a dropped
  connection, and both the stalled request and a post-shed retry must
  still succeed;
* **chaos** — a shared ``jobs=2`` worker pool under a worker crash, a
  mid-request pool kill, a stalled handler, and a corrupted cache entry,
  all while the load runs; zero failures, every reply bit-identical,
  and the fault counters must prove the recovery paths actually fired;
* **degrade** — retry/rebuild budgets at zero with an always-firing
  crash: the pool is quarantined and every request degrades to
  in-process execution, still bit-identical.

Results append to ``benchmarks/results/service_load.json``.  Run::

    python benchmarks/bench_service_load.py             # full profile
    python benchmarks/bench_service_load.py --quick --gate   # CI smoke job

or through pytest (quick profile), which always enforces the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

from repro.diffusion.ic import IndependentCascade
from repro.experiments import datasets
from repro.parallel.runtime import FaultPolicy
from repro.runtime import ExecutionContext
from repro.sampling.mrr import estimate_truncated_spread_mrr
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.testing.faults import FaultInjection, ServiceFaultInjection
from repro.utils.timing import backoff_sleep

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "service_load.json"

DATASET = "nethept-sim"
QUERIED_SEEDS = [0, 3, 7]

#: The service bar is robustness, not raw sampling throughput, so the
#: graphs stay small enough that a full five-leg pass (including the
#: deliberately stalled handlers) finishes in well under a minute.
FULL = {
    "graph_n": 600,
    "eta": 60,
    "theta": 2_000,
    "request_seeds": 24,
    "clients": 8,
    "stall_seconds": 0.6,
}
QUICK = {
    "graph_n": 200,
    "eta": 20,
    "theta": 600,
    "request_seeds": 8,
    "clients": 4,
    "stall_seconds": 0.4,
}


def _payload(request_id: str, seed: int, profile: dict) -> dict:
    return {
        "op": "estimate",
        "id": request_id,
        "seed": seed,
        "params": {
            "dataset": DATASET,
            "n": profile["graph_n"],
            "eta": profile["eta"],
            "seeds": list(QUERIED_SEEDS),
            "theta": profile["theta"],
        },
    }


def _references(profile: dict) -> dict:
    """Cold offline ``jobs=1`` estimates, one per request seed."""
    graph = datasets.load_dataset(DATASET, n=profile["graph_n"], seed=0)
    references = {}
    for seed in range(profile["request_seeds"]):
        with ExecutionContext(jobs=1) as context:
            references[seed] = estimate_truncated_spread_mrr(
                graph,
                IndependentCascade(),
                QUERIED_SEEDS,
                profile["eta"],
                theta=profile["theta"],
                seed=seed,
                context=context,
            )
    return references


def _run_load(port: int, payloads: list, clients: int) -> tuple:
    """Fan ``payloads`` over ``clients`` concurrent connections.

    Returns ``(replies, latencies_seconds, wall_seconds)`` with replies
    and latencies in payload order.  A closed connection raises out of
    the worker thread and fails the leg — dropped lines are never
    tolerated, not even under chaos.
    """
    replies: list = [None] * len(payloads)
    latencies = [0.0] * len(payloads)
    errors: list = []

    def session(offset: int) -> None:
        try:
            with ServiceClient("127.0.0.1", port, timeout=300.0) as client:
                for i in range(offset, len(payloads), clients):
                    started = time.perf_counter()
                    replies[i] = client.request(payloads[i])
                    latencies[i] = time.perf_counter() - started
        except Exception as exc:  # surfaced by the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=session, args=(k,), name=f"load-client-{k}")
        for k in range(min(clients, len(payloads)))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"client session died: {errors[0]!r}") from errors[0]
    return replies, latencies, wall


def _percentile(values: list, q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _audit(replies: list, references: dict) -> dict:
    """Failure count and bit-identity across one load pass."""
    failures = sum(1 for reply in replies if not reply.get("ok"))
    identical = all(
        reply.get("ok")
        and reply["result"]["estimate"] == references[int(reply["id"].split("-")[-1])]
        for reply in replies
    )
    return {"requests": len(replies), "failures": failures, "bit_identical": identical}


def _latency_stats(latencies: list, wall: float) -> dict:
    return {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        "throughput_rps": round(len(latencies) / wall, 1),
    }


def _health(port: int) -> dict:
    with ServiceClient("127.0.0.1", port, timeout=60.0) as client:
        return client.request({"op": "health", "id": "bench-health"})["result"]


# ----------------------------------------------------------------------
# Legs
# ----------------------------------------------------------------------


def _leg_cold_warm(profile: dict, references: dict) -> tuple:
    payloads = [
        _payload(f"cold-{s}", s, profile) for s in range(profile["request_seeds"])
    ]
    repeats = [dict(p, id=p["id"].replace("cold", "warm")) for p in payloads]
    config = ServiceConfig(jobs=1, max_in_flight=4, max_queue=64)
    with ServiceThread(config) as service:
        cold_replies, cold_lat, cold_wall = _run_load(
            service.port, payloads, profile["clients"]
        )
        warm_replies, warm_lat, warm_wall = _run_load(
            service.port, repeats, profile["clients"]
        )
        health = _health(service.port)
    cold = {**_audit(cold_replies, references), **_latency_stats(cold_lat, cold_wall)}
    warm = {**_audit(warm_replies, references), **_latency_stats(warm_lat, warm_wall)}
    warm["carry_adopted"] = health["counters"]["carry_adopted"]
    warm["cache_hits"] = health["cache"]["hits"]
    return cold, warm


def _leg_backpressure(profile: dict, references: dict) -> dict:
    """One busy slot, zero queue: the flood must shed, never drop."""
    config = ServiceConfig(
        jobs=1,
        max_in_flight=1,
        max_queue=0,
        service_injections=(
            ServiceFaultInjection(
                "slow_handler", nth=0, delay_seconds=profile["stall_seconds"]
            ),
        ),
    )
    sheds = 0
    flood_ok = 0
    with ServiceThread(config) as service:
        with service.connect(timeout=120.0) as slow, service.connect(
            timeout=120.0
        ) as flood:
            slow.send(_payload("stalled-0", 0, profile))
            backoff_sleep(0.1, 1)  # let the stalled request reach admission
            attempt = 0
            while sheds == 0 and attempt < 200:
                attempt += 1
                reply = flood.request(_payload(f"flood-{attempt}-1", 1, profile))
                if reply.get("ok"):
                    flood_ok += 1
                elif reply["error"]["code"] == "overloaded":
                    sheds += 1
                else:
                    raise SystemExit(f"unexpected flood reply: {reply}")
            stalled = slow.read_reply()
            # The shed work retries once the slot frees up and must succeed.
            retry = flood.request(_payload("retry-1", 1, profile))
            for backoff in range(1, 8):
                if retry.get("ok"):
                    break
                if retry["error"]["code"] != "overloaded":
                    raise SystemExit(f"unexpected retry reply: {retry}")
                backoff_sleep(0.05, backoff)
                retry = flood.request(_payload("retry-1", 1, profile))
        health = _health(service.port)
    return {
        "sheds": sheds,
        "shed_overloaded": health["counters"]["shed_overloaded"],
        "flood_ok": flood_ok,
        "stalled_delivered": bool(
            stalled.get("ok") and stalled["result"]["estimate"] == references[0]
        ),
        "retry_ok": bool(
            retry.get("ok") and retry["result"]["estimate"] == references[1]
        ),
        "dropped_connections": 0,  # a drop raises out of the session above
    }


def _leg_chaos(profile: dict, references: dict) -> dict:
    """Crash + pool kill + stall + cache corruption under concurrent load."""
    count = profile["request_seeds"]
    payloads = [_payload(f"chaos-{s}", s, profile) for s in range(count)]
    repeats = [dict(p, id=f"rerun-{s}") for s, p in enumerate(payloads)]
    config = ServiceConfig(
        jobs=2,
        max_in_flight=4,
        max_queue=64,
        worker_injection=FaultInjection("crash", nth=0),
        service_injections=(
            ServiceFaultInjection("pool_kill", nth=1),
            ServiceFaultInjection("slow_handler", nth=2, delay_seconds=0.05),
            # Admitted index ``count`` is the first warm request of the
            # second pass — its carried pool arrives corrupted and must
            # be detected, discarded, and rebuilt.
            ServiceFaultInjection("cache_corrupt", nth=count),
        ),
    )
    with ServiceThread(config) as service:
        first, first_lat, first_wall = _run_load(
            service.port, payloads, profile["clients"]
        )
        second, second_lat, _ = _run_load(service.port, repeats, profile["clients"])
        health = _health(service.port)
    audit_first = _audit(first, references)
    audit_second = _audit(second, references)
    faults = health["runtime"]["fault_stats"]
    return {
        "requests": audit_first["requests"] + audit_second["requests"],
        "failures": audit_first["failures"] + audit_second["failures"],
        "bit_identical": audit_first["bit_identical"]
        and audit_second["bit_identical"],
        "rebuilds": faults["rebuilds"],
        "carry_discarded": health["counters"]["carry_discarded"],
        "cache_invalidations": health["cache"]["invalidations"],
        **_latency_stats(first_lat + second_lat, first_wall),
    }


def _leg_degrade(profile: dict, references: dict) -> dict:
    """Exhausted fault budgets: quarantine the pool, stay in-process."""
    payloads = [_payload(f"degrade-{s}", s, profile) for s in range(4)]
    config = ServiceConfig(
        jobs=2,
        fault_policy=FaultPolicy(
            chunk_timeout=60.0, max_rebuilds=0, on_pool_failure="raise"
        ),
        worker_injection=FaultInjection("crash", nth=0, attempts=(0, 1, 2, 3)),
    )
    with ServiceThread(config) as service:
        replies, _, _ = _run_load(service.port, payloads, 2)
        health = _health(service.port)
    return {
        **_audit(replies, references),
        "degraded_requests": health["counters"]["degraded_requests"],
        "quarantined": health["runtime"]["quarantined"],
        "status": health["status"],
    }


def measure(profile: dict, seed: int = 0) -> dict:
    references = _references(profile)
    cold, warm = _leg_cold_warm(profile, references)
    legs = {
        "cold": cold,
        "warm": warm,
        "backpressure": _leg_backpressure(profile, references),
        "chaos": _leg_chaos(profile, references),
        "degrade": _leg_degrade(profile, references),
    }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": profile["graph_n"],
        "theta": profile["theta"],
        "request_seeds": profile["request_seeds"],
        "clients": profile["clients"],
        "cpus": os.cpu_count(),
        "seed": seed,
        "legs": legs,
    }


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    legs = result["legs"]
    print(
        f"graph: n={result['graph_n']} theta={result['theta']} | "
        f"{result['request_seeds']} request seeds x {result['clients']} "
        f"clients on {result['cpus']} cpu(s)",
        file=out,
    )
    for name in ("cold", "warm", "chaos"):
        leg = legs[name]
        print(
            f"  {name:<13} {leg['requests']} requests  "
            f"failures {leg['failures']}  bit-identical {leg['bit_identical']}  "
            f"p50 {leg['p50_ms']:.0f}ms  p99 {leg['p99_ms']:.0f}ms  "
            f"{leg['throughput_rps']:.1f} req/s",
            file=out,
        )
    bp = legs["backpressure"]
    print(
        f"  backpressure  sheds {bp['sheds']}  flood-ok {bp['flood_ok']}  "
        f"stalled-delivered {bp['stalled_delivered']}  retry-ok {bp['retry_ok']}  "
        f"dropped {bp['dropped_connections']}",
        file=out,
    )
    print(
        f"  warm carry    adopted {legs['warm']['carry_adopted']}  "
        f"cache hits {legs['warm']['cache_hits']}",
        file=out,
    )
    print(
        f"  chaos faults  rebuilds {legs['chaos']['rebuilds']}  "
        f"carry-discarded {legs['chaos']['carry_discarded']}  "
        f"invalidations {legs['chaos']['cache_invalidations']}",
        file=out,
    )
    dg = legs["degrade"]
    print(
        f"  degrade       failures {dg['failures']}  "
        f"bit-identical {dg['bit_identical']}  "
        f"degraded {dg['degraded_requests']}  quarantined {dg['quarantined']}  "
        f"status {dg['status']}",
        file=out,
    )


def check_gates(result: dict) -> None:
    """Raise unless every leg held the robustness bar.

    All hardware-independent: zero failed requests on the ok-path legs,
    bit-identity everywhere, at least one typed shed with no dropped
    connection, and fault counters proving each recovery path ran.
    """
    legs = result["legs"]
    broken = [
        name
        for name in ("cold", "warm", "chaos", "degrade")
        if legs[name]["failures"] or not legs[name]["bit_identical"]
    ]
    if broken:
        raise SystemExit(f"service replies failed or diverged from offline: {broken}")
    if legs["warm"]["carry_adopted"] < 1:
        raise SystemExit("warm pass never adopted a cached mRR pool")
    bp = legs["backpressure"]
    if bp["sheds"] < 1 or bp["dropped_connections"]:
        raise SystemExit(f"backpressure leg never shed (or dropped a line): {bp}")
    if not (bp["stalled_delivered"] and bp["retry_ok"]):
        raise SystemExit(f"shed flood lost real work: {bp}")
    chaos = legs["chaos"]
    if chaos["rebuilds"] < 1:
        raise SystemExit("chaos leg: injected pool faults never forced a rebuild")
    if chaos["cache_invalidations"] < 1 or chaos["carry_discarded"] < 1:
        raise SystemExit("chaos leg: corrupted cache entry was never discarded")
    if legs["degrade"]["degraded_requests"] < 1 or not legs["degrade"]["quarantined"]:
        raise SystemExit("degrade leg: pool exhaustion never degraded in-process")


def test_service_load_gate():
    """The pytest entry point: quick profile, gate always enforced."""
    result = measure(QUICK)
    report(result)
    check_gates(result)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless every reply is bit-identical to the "
        "offline reference, load was shed (not dropped), and every "
        "injected fault's recovery path fired",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
