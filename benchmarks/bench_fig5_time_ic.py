"""Figure 5: running time vs. threshold under the IC model.

Paper artifact: wall-clock per algorithm across the eta sweep.  Reproduced
shape (from the same measurement campaign as Figure 4):

* adaptive algorithms get slower as eta grows (more rounds);
* the batched variants are markedly faster than plain ASTI at the largest
  threshold (paper: ASTI-8 runs at ~5% of ASTI's time);
* AdaptIM is slower than ASTI (paper: 10-20x; the gap compounds with eta
  because AdaptIM's RR count scales with n_i rather than eta_i).

Absolute seconds are host-specific; orderings are the reproduction target.
"""

import pytest

from benchmarks.conftest import QUICK, SWEEP_ALGORITHMS, get_sweep, print_artifact
from repro.experiments.report import format_series


@pytest.mark.benchmark(group="figure5")
def test_figure5_time_vs_threshold_ic(benchmark):
    sweep = benchmark.pedantic(lambda: get_sweep("IC"), rounds=1, iterations=1)

    series = {alg: sweep.series(alg, "seconds") for alg in SWEEP_ALGORITHMS}
    print_artifact(
        format_series(
            "eta/n",
            list(QUICK["eta_fractions"]),
            series,
            title="Figure 5 (nethept-sim, IC): mean seconds vs threshold",
            precision=3,
        )
    )

    largest = -1
    # ASTI slows down as the threshold grows.
    assert series["ASTI"][largest] >= series["ASTI"][0]

    # The batched variants beat plain ASTI at the largest threshold.
    assert series["ASTI-8"][largest] <= series["ASTI"][largest]

    # AdaptIM is no faster than ASTI at the largest threshold.
    assert series["AdaptIM"][largest] >= 0.8 * series["ASTI"][largest]
