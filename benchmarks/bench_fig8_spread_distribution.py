"""Figure 8: spread across 20 realizations, ASTI vs ATEUC on NetHEPT.

Paper artifact: a per-realization scatter of realized spread with the
threshold line; ATEUC misses the line on 25-30% of realizations and
overshoots (>150%) on others, while ASTI hugs the line from above on every
realization.  Reproduced shape: ASTI has zero failures and bounded
overshoot; ATEUC's spread distribution straddles the threshold.
"""

import pytest

from benchmarks.conftest import print_artifact
from repro.experiments import figures
from repro.experiments.report import format_table

REALIZATIONS = 8


def build_results():
    return {
        model: figures.figure8(
            dataset="nethept-sim",
            model_name=model,
            graph_n=320,
            realizations=REALIZATIONS,
            eta_fraction=0.08,
            max_samples=12_000,
            seed=0,
        )
        for model in ("IC", "LT")
    }


@pytest.mark.benchmark(group="figure8")
def test_figure8_spread_distribution(benchmark):
    results = benchmark.pedantic(build_results, rounds=1, iterations=1)

    for model, result in results.items():
        rows = [
            [i + 1, asti, ateuc, "ok" if ateuc >= result.eta else "MISS"]
            for i, (asti, ateuc) in enumerate(
                zip(result.asti_spreads, result.ateuc_spreads)
            )
        ]
        print_artifact(
            format_table(
                ["realization", "ASTI spread", "ATEUC spread", "ATEUC vs eta"],
                rows,
                title=(
                    f"Figure 8 ({model}): spread per realization, "
                    f"eta={result.eta}, ATEUC misses={result.ateuc_failures}"
                ),
            )
        )

    for model, result in results.items():
        # ASTI meets the threshold on every single realization.
        assert result.asti_failures == 0, model
        assert all(s >= result.eta for s in result.asti_spreads), model

        # ATEUC's fixed set produces genuinely varying spread.
        assert min(result.ateuc_spreads) < max(result.ateuc_spreads), model

    # Across both models, the non-adaptive baseline should miss at least
    # once — this is Figure 8's headline (25-30% missing in the paper).
    total_misses = sum(r.ateuc_failures for r in results.values())
    assert total_misses >= 1
