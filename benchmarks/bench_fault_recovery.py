"""Chaos gate: recovered parallel runs must reproduce the clean bytes.

Injects deterministic worker faults (:mod:`repro.testing.faults`) into the
supervised parallel runtime and asserts the **recovery-equivalence** bar on
each engine fan-out: a run that survived a crash, a hang, or full
degradation to in-process execution must be *bit-identical* to the clean
``jobs=1`` reference — the chunk-indexed seeding invariant means recovery
can change where a chunk runs, never what it returns.

Cases:

* **pool/crash** — an mRR pool fill whose first chunk's worker dies
  (``os._exit``), recovered by a pool rebuild;
* **crn/crash** — a CRN spread evaluation through the same injector;
* **sweep/crash** — a TRIM-style eta point (ASTI + ATEUC over shared
  realizations) surviving a worker crash;
* **pool/hang** — a hung worker caught by the policy ``chunk_timeout``;
* **pool/degrade** — retry/rebuild budgets at zero with an always-firing
  crash, forcing every surviving chunk in-process;
* **negative-control/corrupt** — the silent-corruption injector, which the
  gate requires the equivalence comparison to *detect*: a chaos gate that
  stays green under corrupted results is measuring nothing.

Each case also records the supervisor's ``fault_stats`` (rebuilds,
timeouts, degraded chunks, recovery wall-time), so the trajectory shows
what the recovery cost, not just that it worked.  Results append to
``benchmarks/results/fault_recovery.json``.  Run::

    python benchmarks/bench_fault_recovery.py             # full profile
    python benchmarks/bench_fault_recovery.py --quick --gate   # CI chaos job

or through pytest (quick profile), which always enforces the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.experiments.harness import run_eta_point, sample_shared_realizations
from repro.graph import generators, weighting
from repro.parallel.runtime import FaultPolicy, ParallelRuntime
from repro.runtime import ExecutionContext
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import RootCountRule
from repro.testing.faults import FaultInjection

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "fault_recovery.json"

#: Recovery is a correctness property, not a throughput one, so the graphs
#: stay small enough that every case (including the timeout wait) finishes
#: in seconds; ``jobs`` is fixed at 2 — one worker to kill, one to survive.
FULL = {
    "graph_n": 2_000,
    "pool_sets": 1_200,
    "batch_size": 128,
    "eta_fraction": 0.1,
    "crn_candidates": 48,
    "crn_worlds": 40,
    "crn_sweep": 128,
    "sweep_realizations": 3,
    "chunk_timeout": 5.0,
}
QUICK = {
    "graph_n": 600,
    "pool_sets": 600,
    "batch_size": 64,
    "eta_fraction": 0.1,
    "crn_candidates": 24,
    "crn_worlds": 24,
    "crn_sweep": 64,
    "sweep_realizations": 2,
    "chunk_timeout": 5.0,
}

JOBS = 2


def build_graph(n: int, seed: int = 0):
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.weighted_cascade(topology)


def _stats(runtime) -> dict:
    stats = runtime.fault_stats
    stats["recovered_seconds"] = round(stats["recovered_seconds"], 3)
    return stats


# ----------------------------------------------------------------------
# Fan-outs under injection
# ----------------------------------------------------------------------

def _pool_fill(graph, profile, runtime, seed):
    eta = max(1, int(profile["eta_fraction"] * graph.n))
    rule = RootCountRule.for_target(graph.n, eta)
    engine = mrr_batch_sampler(
        graph,
        IndependentCascade(),
        rule,
        seed=seed,
        batch_size=profile["batch_size"],
        runtime=runtime,
    )
    index = CoverageIndex(graph.n)
    engine.fill(index, profile["pool_sets"])
    members, indptr = index.packed()
    return members.copy(), indptr.copy()


def _crn_values(graph, profile, runtime, seed):
    candidates = [[int(v)] for v in range(profile["crn_candidates"])]
    with CRNSpreadEvaluator(
        graph,
        IndependentCascade(),
        n_sims=profile["crn_worlds"],
        seed=seed,
        mc_batch_size=profile["crn_sweep"],
        runtime=runtime,
    ) as evaluator:
        return evaluator.evaluate_many(candidates)


def _sweep_outcomes(graph, realizations, runtime, seed):
    labels = ("ASTI", "ATEUC")
    context = ExecutionContext()
    if runtime is not None:
        context.attach_runtime(runtime)
    results = run_eta_point(
        graph,
        IndependentCascade(),
        eta=max(1, graph.n // 10),
        algorithms=labels,
        realizations=realizations,
        max_samples=20_000,
        seed=seed,
        context=context,
    )
    return {
        label: [
            (r.seed_count, r.spread, r.achieved, r.marginal_spreads)
            for r in results[label].runs
        ]
        for label in labels
    }


def _case(reference, chaos_fn, policy=None, injection=None):
    """Run ``chaos_fn`` under an injected runtime; compare to ``reference``."""
    started = time.perf_counter()
    with ParallelRuntime(JOBS, fault_policy=policy, injection=injection) as rt:
        survivor = chaos_fn(rt)
        stats = _stats(rt)
    seconds = time.perf_counter() - started
    if isinstance(reference, tuple):
        identical = all(
            np.array_equal(ref, out) for ref, out in zip(reference, survivor)
        )
    elif isinstance(reference, np.ndarray):
        identical = bool(np.array_equal(reference, survivor))
    else:
        identical = reference == survivor
    return {
        "bit_identical": bool(identical),
        "seconds": round(seconds, 2),
        "faults": stats,
    }


def measure(profile: dict, seed: int = 0) -> dict:
    graph = build_graph(profile["graph_n"], seed=seed)
    realizations = sample_shared_realizations(
        graph, IndependentCascade(), profile["sweep_realizations"], seed=seed + 10
    )

    # Clean jobs=1 references (the bit-exact ground truth for every case).
    with ParallelRuntime(1) as rt:
        pool_reference = _pool_fill(graph, profile, rt, seed)
    with ParallelRuntime(1) as rt:
        crn_reference = _crn_values(graph, profile, rt, seed)
    sweep_reference = _sweep_outcomes(graph, realizations, None, seed)

    crash = FaultInjection("crash", nth=0)
    cases = {
        "pool/crash": _case(
            pool_reference,
            lambda rt: _pool_fill(graph, profile, rt, seed),
            injection=crash,
        ),
        "crn/crash": _case(
            crn_reference,
            lambda rt: _crn_values(graph, profile, rt, seed),
            injection=crash,
        ),
        "sweep/crash": _case(
            sweep_reference,
            lambda rt: _sweep_outcomes(graph, realizations, rt, seed),
            injection=crash,
        ),
        "pool/hang": _case(
            pool_reference,
            lambda rt: _pool_fill(graph, profile, rt, seed),
            policy=FaultPolicy(chunk_timeout=profile["chunk_timeout"]),
            injection=FaultInjection("hang", nth=0, hang_seconds=600.0),
        ),
        "pool/degrade": _case(
            pool_reference,
            lambda rt: _pool_fill(graph, profile, rt, seed),
            policy=FaultPolicy(max_retries=0, max_rebuilds=0),
            injection=FaultInjection("crash", nth=0, attempts=tuple(range(50))),
        ),
    }
    # Negative control: corruption must BREAK the equivalence comparison.
    control = _case(
        crn_reference,
        lambda rt: _crn_values(graph, profile, rt, seed),
        injection=FaultInjection("corrupt", nth=0),
    )
    control["detected"] = not control.pop("bit_identical")
    cases["negative-control/corrupt"] = control

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "pool_sets": profile["pool_sets"],
        "crn_jobs": profile["crn_candidates"] * profile["crn_worlds"],
        "cases": cases,
    }


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"jobs={result['jobs']} on {result['cpus']} cpu(s)",
        file=out,
    )
    for name, case in result["cases"].items():
        verdict = (
            f"detected {case['detected']}"
            if "detected" in case
            else f"bit-identical {case['bit_identical']}"
        )
        faults = case["faults"]
        print(
            f"  {name:<24} {verdict:<21} {case['seconds']:>6.2f}s   "
            f"rebuilds {faults['rebuilds']}  timeouts {faults['timeouts']}  "
            f"retries {faults['retries']}  degraded {faults['degraded_chunks']}  "
            f"recovery {faults['recovered_seconds']:.3f}s",
            file=out,
        )


def check_gates(result: dict) -> None:
    """Raise unless every recovery matched and the control was detected.

    Three bars, all hardware-independent:

    * every injected case is bit-identical to its clean ``jobs=1``
      reference;
    * each case's fault counters prove its recovery path actually ran
      (a crash case with zero rebuilds recovered nothing);
    * the corrupt negative control was *detected* by the comparison.
    """
    broken = [
        name
        for name, case in result["cases"].items()
        if "bit_identical" in case and not case["bit_identical"]
    ]
    if broken:
        raise SystemExit(f"recovery equivalence violated: {broken}")
    idle = []
    for name, case in result["cases"].items():
        faults = case["faults"]
        if name.endswith("/crash") and faults["rebuilds"] < 1:
            idle.append(name)
        if name.endswith("/hang") and faults["timeouts"] < 1:
            idle.append(name)
        if name.endswith("/degrade") and faults["degraded_chunks"] < 1:
            idle.append(name)
    if idle:
        raise SystemExit(f"injected fault never fired: {idle}")
    if not result["cases"]["negative-control/corrupt"]["detected"]:
        raise SystemExit(
            "negative control failed: corrupted results passed the "
            "equivalence comparison — the gate is not measuring anything"
        )


def test_fault_recovery_gate():
    """The pytest entry point: quick profile, gate always enforced."""
    result = measure(QUICK)
    report(result)
    check_gates(result)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless every recovery is bit-identical, every "
        "injected fault fired, and the corruption control was detected",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
