"""Figure 4: number of seed nodes vs. threshold under the IC model.

Paper artifact: for eta/n in {0.01..0.2} on each dataset, the seed counts
of ASTI, ASTI-2/4/8, AdaptIM, and ATEUC.  Reproduced shape:

* every algorithm needs more seeds as eta grows;
* AdaptIM's seed count is close to ASTI's (paper: "the number of nodes
  selected by AdaptIM is close to that of ASTI");
* batched variants select at least as many seeds as ASTI ("slightly
  increase the number of seed nodes");
* ATEUC needs at least as many seeds as ASTI wherever it is feasible at
  all (paper: 30-65% more).
"""

import pytest

from benchmarks.conftest import QUICK, SWEEP_ALGORITHMS, get_sweep, print_artifact
from repro.experiments.report import format_series


@pytest.mark.benchmark(group="figure4")
def test_figure4_seeds_vs_threshold_ic(benchmark):
    sweep = benchmark.pedantic(lambda: get_sweep("IC"), rounds=1, iterations=1)

    series = {alg: sweep.series(alg, "seeds") for alg in SWEEP_ALGORITHMS}
    print_artifact(
        format_series(
            "eta/n",
            list(QUICK["eta_fractions"]),
            series,
            title="Figure 4 (nethept-sim, IC): mean seed count vs threshold",
        )
    )
    from repro.experiments.plotting import ascii_line_plot

    print_artifact(
        ascii_line_plot(
            list(QUICK["eta_fractions"]),
            series,
            y_label="seeds",
            title="Figure 4 as a plot",
        )
    )

    # Monotone growth in the threshold for the adaptive algorithms.
    for alg in ("ASTI", "ASTI-4", "AdaptIM"):
        seeds = series[alg]
        assert all(seeds[i] <= seeds[i + 1] + 1e-9 for i in range(len(seeds) - 1)), alg

    # AdaptIM tracks ASTI's seed count (within 50% at every threshold).
    for a, b in zip(series["ASTI"], series["AdaptIM"]):
        assert b <= 1.5 * a + 1.0

    # Batching costs seeds, never saves them (up to averaging noise).
    largest = -1
    assert series["ASTI-8"][largest] >= series["ASTI"][largest] - 1.0

    # ATEUC never beats ASTI meaningfully on seed count.
    assert series["ATEUC"][largest] >= 0.9 * series["ASTI"][largest]
