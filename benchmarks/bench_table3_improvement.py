"""Table 3: improvement ratio of ASTI over ATEUC (with N/A marks).

Paper artifact: per (dataset, model, eta) the percentage of extra seeds
ATEUC needs over ASTI, with N/A wherever ATEUC's fixed seed set misses the
threshold on at least one sampled realization.  Reproduced shape:

* whenever the cell is a number it is non-negative (ATEUC never needs
  meaningfully fewer seeds than ASTI);
* N/A cells do occur — the defining failure mode of non-adaptive
  selection (the paper's table is mostly N/A under LT).
"""

import pytest

from benchmarks.conftest import QUICK, get_sweep, print_artifact
from repro.experiments import figures
from repro.experiments.report import format_table


@pytest.mark.benchmark(group="table3")
def test_table3_improvement_ratio(benchmark):
    def build_cells():
        return {
            model: figures.table3(get_sweep(model)) for model in ("IC", "LT")
        }

    cells_by_model = benchmark.pedantic(build_cells, rounds=1, iterations=1)

    rows = []
    for model, cells in cells_by_model.items():
        rows.append([model] + [cell.rendered() for cell in cells])
    print_artifact(
        format_table(
            ["model"] + [f"eta/n={f}" for f in QUICK["eta_fractions"]],
            rows,
            title="Table 3 (nethept-sim): ASTI improvement over ATEUC",
        )
    )

    numeric_cells = 0
    for cells in cells_by_model.values():
        for cell in cells:
            if cell.ratio is not None:
                numeric_cells += 1
                # ATEUC may not beat ASTI by more than noise.
                assert cell.ratio >= -0.35
    # At least one cell should be resolvable; if literally every cell is
    # N/A the comparison carries no information (and the paper's table has
    # numeric entries on every dataset).
    assert numeric_cells + sum(
        1
        for cells in cells_by_model.values()
        for cell in cells
        if cell.ratio is None
    ) == 2 * len(QUICK["eta_fractions"])
