"""Table 2: dataset summary statistics.

Paper artifact: n, m, type, average degree, LWCC size for NetHEPT,
Epinions, Youtube, LiveJournal.  We regenerate the same row format for the
synthetic stand-ins and check the calibrated shape statistics:

* average degree close to the paper's value for each dataset,
* LWCC fraction matching the spec (NetHEPT fragmented at 45%, the social
  networks essentially fully connected),
* no isolated nodes (Section 6.1: "There does [not] exist any isolated
  node in the four tested datasets").
"""

import pytest

from benchmarks.conftest import print_artifact
from repro.experiments import datasets, figures
from repro.experiments.report import format_table

BENCH_N = 800


def build_rows():
    override = {name: BENCH_N for name in datasets.dataset_names()}
    return figures.table2(n_override=override, seed=0)


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    print_artifact(
        format_table(
            ["dataset", "paper", "n", "m", "avg deg", "LWCC", "paper n", "paper m"],
            [
                [
                    r.dataset,
                    r.paper_name,
                    r.n,
                    r.m,
                    round(r.average_degree, 2),
                    r.lwcc_size,
                    r.paper_n,
                    r.paper_m,
                ]
                for r in rows
            ],
            title="Table 2 (scaled stand-ins; paper columns for reference)",
        )
    )

    by_name = {r.dataset: r for r in rows}
    # Average degrees track the paper's targets (generators are stochastic,
    # so the tolerance is generous but order-preserving).
    assert 1.5 < by_name["nethept-sim"].average_degree < 6.5
    assert 8.0 < by_name["epinions-sim"].average_degree < 19.0
    assert by_name["livejournal-sim"].average_degree > by_name["youtube-sim"].average_degree

    # LWCC fractions follow the spec: NetHEPT fragmented, others connected.
    assert by_name["nethept-sim"].lwcc_size == pytest.approx(0.45 * BENCH_N, rel=0.05)
    assert by_name["youtube-sim"].lwcc_size == BENCH_N
    assert by_name["livejournal-sim"].lwcc_size >= 0.9 * BENCH_N

    # No isolated nodes in any dataset.
    for name in datasets.dataset_names():
        graph = datasets.load_dataset(name, n=400, seed=0)
        assert int((graph.in_degrees() + graph.out_degrees()).min()) >= 1
