"""Parallel-runtime throughput: in-process chunks vs multi-core workers.

Measures the three fan-outs of the shared-memory parallel runtime on the
~10k-node benchmark graph, each against the same chunk decomposition run
in-process (``jobs=1``), so the speedup isolates multi-core scaling from
vectorization (which earlier gates already cover):

* **pool** — (m)RR pool generation: ``BatchSampler.fill`` sharding its
  per-batch reverse-sample chunks across workers over the shared CSR graph;
* **crn** — common-random-number spread evaluation:
  ``CRNSpreadEvaluator`` sharding its flattened candidate x world sweeps;
* **harness** — the experiment harness running independent adaptive
  realizations across workers (recorded for the trajectory, not gated:
  its shards are few and coarse, so its scaling is lumpier than the
  chunk-level engines').

Determinism is part of the bar: every case also asserts the **worker-count
invariance** equivalence — ``jobs=N`` output must be bit-identical to
``jobs=1`` (and, for CRN, to the runtime-free path).

Results (throughputs, speedups, equivalence flags, worker/CPU counts) are
appended to ``benchmarks/results/parallel_runtime.json``.  Run::

    python benchmarks/bench_parallel_runtime.py                   # full, 4 workers
    python benchmarks/bench_parallel_runtime.py --quick --jobs 2  # CI profile

or through pytest (quick profile), which always asserts the equivalence
bars and additionally asserts the CI speedup gate (1.3x at 2 workers) when
the host actually has at least 2 CPUs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.experiments.config import quick_config
from repro.experiments.harness import run_sweep
from repro.graph import generators, weighting
from repro.parallel import ParallelRuntime
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import RootCountRule

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "parallel_runtime.json"

#: The pool case samples mRR sets at the representative eta/n = 0.1 point;
#: the CRN case scores singleton candidates on shared worlds with a fixed
#: sweep size so the chunk count (and thus the shardable work) is stable.
FULL = {
    "graph_n": 10_000,
    "pool_sets": 4_000,
    "batch_size": 256,
    "eta_fraction": 0.1,
    "crn_candidates": 96,
    "crn_worlds": 100,
    "crn_sweep": 256,
    "harness_n": 1_000,
    "harness_realizations": 8,
}
QUICK = {
    "graph_n": 10_000,
    "pool_sets": 3_000,
    "batch_size": 256,
    "eta_fraction": 0.1,
    "crn_candidates": 64,
    "crn_worlds": 60,
    "crn_sweep": 256,
    "harness_n": 600,
    "harness_realizations": 6,
}

#: Gate thresholds on the gated cases (pool and CRN): full runs on a
#: >= 4-core host should clear 2.5x at 4 workers; CI's 2-vCPU runner
#: gates a relaxed 1.3x at 2 workers via --min-speedup.
DEFAULT_MIN_SPEEDUP = 2.5
CI_MIN_SPEEDUP = 1.3

#: Compact-storage bar: a fully compact-eligible graph (int32 indices,
#: float32 probabilities) must pack into at most this fraction of its
#: int64/float64 segment bytes.  Hardware-independent, enforced always.
MAX_COMPACT_SEGMENT_RATIO = 0.55


def build_graph(n: int, seed: int = 0):
    """The ~10k-node benchmark graph: preferential attachment + WC weights."""
    topology = generators.preferential_attachment(n, 3, seed=seed, directed=False)
    return weighting.weighted_cascade(topology)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _pool_once(graph, model, rule, profile, jobs, seed):
    with ParallelRuntime(jobs) as runtime:
        if jobs > 1:
            # Spawn the workers and map the graph outside the clock: the
            # runtime is persistent, so production runs pay this once per
            # process, not once per fill.
            warmup = mrr_batch_sampler(
                graph, model, rule, seed=seed,
                batch_size=profile["batch_size"], runtime=runtime,
            )
            warmup.fill(CoverageIndex(graph.n), profile["batch_size"])
        engine = mrr_batch_sampler(
            graph,
            model,
            rule,
            seed=seed,
            batch_size=profile["batch_size"],
            runtime=runtime,
        )
        index = CoverageIndex(graph.n)
        seconds = _time(lambda: engine.fill(index, profile["pool_sets"]))
        members, indptr = index.packed()
        return seconds, (members.copy(), indptr.copy())


def measure_pool(graph, model, profile, jobs, seed=0):
    eta = max(1, int(profile["eta_fraction"] * graph.n))
    rule = RootCountRule.for_target(graph.n, eta)
    base_seconds, base_pool = _pool_once(graph, model, rule, profile, 1, seed)
    par_seconds, par_pool = _pool_once(graph, model, rule, profile, jobs, seed)
    identical = np.array_equal(base_pool[0], par_pool[0]) and np.array_equal(
        base_pool[1], par_pool[1]
    )
    rate = profile["pool_sets"] / base_seconds
    par_rate = profile["pool_sets"] / par_seconds
    return {
        "jobs1_sets_per_s": round(rate, 1),
        "workers_sets_per_s": round(par_rate, 1),
        "speedup": round(par_rate / rate, 2),
        "bit_identical": bool(identical),
    }


def measure_relabeled(graph, profile, jobs, seed=0):
    """Stress the pool fan-out on a degree-relabeled copy of the graph.

    ``DiGraph.relabeled()`` packs the hubs into a compact id prefix; this
    case re-runs the gated pool measurement on that copy, so the
    worker-count-invariance bar (jobs=N bit-identical to jobs=1) is
    exercised under a node numbering whose chunk contents differ
    completely from the canonical graph's.  The relabeled graph must also
    be verifiably the same graph: same edge count, storage policy
    inherited, and ids actually sorted by descending total degree.
    """
    relabeled, order = graph.relabeled()
    degrees = relabeled.in_degrees() + relabeled.out_degrees()
    case = measure_pool(relabeled, IndependentCascade(), profile, jobs, seed)
    case["bit_identical"] = bool(
        case["bit_identical"]
        and relabeled.m == graph.m
        and relabeled.storage == graph.storage
        and np.array_equal(np.sort(order), np.arange(graph.n))
        and bool(np.all(degrees[:-1] >= degrees[1:]))
    )
    return case


def measure_crn(graph, model, profile, jobs, seed=0):
    candidates = [[int(v)] for v in range(profile["crn_candidates"])]
    kwargs = dict(
        n_sims=profile["crn_worlds"],
        seed=seed,
        mc_batch_size=profile["crn_sweep"],
    )
    legacy = CRNSpreadEvaluator(graph, model, **kwargs)
    legacy_values = legacy.evaluate_many(candidates)

    def timed(workers):
        with ParallelRuntime(workers) as runtime:
            evaluator = CRNSpreadEvaluator(graph, model, runtime=runtime, **kwargs)
            if workers > 1:
                # Warm with a full-size evaluation: anything smaller than
                # two sweeps stays in-process and would leave worker spawn
                # plus graph/worlds publication inside the timed run.
                evaluator.evaluate_many(candidates)
            holder = {}
            seconds = _time(
                lambda: holder.setdefault(
                    "values", evaluator.evaluate_many(candidates)
                )
            )
            return seconds, holder["values"]

    base_seconds, base_values = timed(1)
    par_seconds, par_values = timed(jobs)
    jobs_total = len(candidates) * profile["crn_worlds"]
    rate = jobs_total / base_seconds
    par_rate = jobs_total / par_seconds
    return {
        "jobs1_evals_per_s": round(rate, 1),
        "workers_evals_per_s": round(par_rate, 1),
        "speedup": round(par_rate / rate, 2),
        "bit_identical": bool(
            np.array_equal(legacy_values, base_values)
            and np.array_equal(base_values, par_values)
        ),
    }


def measure_harness(profile, jobs, seed=0):
    config = quick_config(
        graph_n=profile["harness_n"],
        realizations=profile["harness_realizations"],
        algorithms=("ASTI-4",),
        eta_fractions=(0.1,),
        max_samples=20_000,
        seed=seed,
    )

    def run(workers):
        holder = {}
        seconds = _time(
            lambda: holder.setdefault(
                "sweep", run_sweep(config.scaled(jobs=workers))
            )
        )
        sweep = holder["sweep"]
        counts = [
            r.seed_count
            for eta in sweep.eta_values
            for r in sweep.outcomes[eta]["ASTI-4"].runs
        ]
        return seconds, counts

    base_seconds, base_counts = run(1)
    par_seconds, par_counts = run(jobs)
    return {
        "jobs1_seconds": round(base_seconds, 2),
        "workers_seconds": round(par_seconds, 2),
        "speedup": round(base_seconds / par_seconds, 2),
        "bit_identical": bool(base_counts == par_counts),
    }


def measure_storage(profile, seed=0):
    """Shared-memory segment bytes: compact (adaptive) vs wide storage.

    Two graphs over the same ~10k-node topology:

    * ``weighted-cascade`` — the benchmark's WC weights (1/indeg is not
      float32-exact, so only the index arrays compact);
    * ``constant-p0.125`` — a fully compact-eligible graph (int32 indices
      *and* lossless float32 probabilities), which must pack into at most
      ``MAX_COMPACT_SEGMENT_RATIO`` of its int64/float64 bytes.

    Both segments really go through ``share_graph`` (alignment included),
    so the recorded bytes are exactly what workers map.
    """
    from repro.graph import generators, weighting
    from repro.parallel.shm import share_graph

    topology = generators.preferential_attachment(
        profile["graph_n"], 3, seed=seed, directed=False
    )
    cases = {}
    for name, graph in (
        ("weighted-cascade", weighting.weighted_cascade(topology)),
        ("constant-p0.125", weighting.constant(topology, 0.125)),
    ):
        compact_bundle, _ = share_graph(graph)
        wide_bundle, _ = share_graph(graph.with_storage("wide"))
        try:
            cases[name] = {
                "index_dtype": str(graph.index_dtype),
                "prob_dtype": str(graph.prob_dtype),
                "compact_segment_bytes": compact_bundle.nbytes,
                "wide_segment_bytes": wide_bundle.nbytes,
                "ratio": round(compact_bundle.nbytes / wide_bundle.nbytes, 3),
            }
        finally:
            compact_bundle.close()
            wide_bundle.close()
    return cases


def measure(profile: dict, jobs: int, seed: int = 0) -> dict:
    graph = build_graph(profile["graph_n"], seed=seed)
    cases = {}
    for model in (IndependentCascade(), LinearThreshold()):
        cases[f"pool/{model.name}-mrr"] = measure_pool(
            graph, model, profile, jobs, seed
        )
    cases["pool/IC-relabeled"] = measure_relabeled(graph, profile, jobs, seed)
    cases["crn/IC"] = measure_crn(graph, IndependentCascade(), profile, jobs, seed)
    harness = measure_harness(profile, jobs, seed)
    storage = measure_storage(profile, seed)
    result = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph_n": graph.n,
        "graph_m": graph.m,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "pool_sets": profile["pool_sets"],
        "crn_jobs": profile["crn_candidates"] * profile["crn_worlds"],
        "cases": cases,
        "harness": harness,
        "storage": storage,
    }
    if result["cpus"] is None or result["cpus"] < jobs:
        result["note"] = (
            f"host has {result['cpus']} CPU(s) for {jobs} workers: speedups "
            "measure timesharing overhead, not scaling; the bit_identical "
            "equivalence flags are the meaningful signal on this entry"
        )
    return result


def record(result: dict) -> None:
    """Append one measurement to the JSON trajectory file."""
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    history.append(result)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def report(result: dict, out=sys.stdout) -> None:
    print(
        f"graph: n={result['graph_n']} m={result['graph_m']} | "
        f"jobs={result['jobs']} on {result['cpus']} cpu(s)",
        file=out,
    )
    for name, case in result["cases"].items():
        rate_keys = [k for k in case if k.endswith("_per_s")]
        print(
            f"  {name:<14} jobs=1 {case[rate_keys[0]]:>10.1f}/s   "
            f"jobs={result['jobs']} {case[rate_keys[1]]:>10.1f}/s   "
            f"speedup {case['speedup']:>5.2f}x   "
            f"bit-identical {case['bit_identical']}",
            file=out,
        )
    harness = result["harness"]
    print(
        f"  {'harness':<14} jobs=1 {harness['jobs1_seconds']:>9.2f}s    "
        f"jobs={result['jobs']} {harness['workers_seconds']:>9.2f}s    "
        f"speedup {harness['speedup']:>5.2f}x   "
        f"bit-identical {harness['bit_identical']}",
        file=out,
    )
    for name, case in result.get("storage", {}).items():
        print(
            f"  storage/{name:<22} {case['compact_segment_bytes']:>10} B "
            f"vs wide {case['wide_segment_bytes']:>10} B   "
            f"ratio {case['ratio']:.3f}   "
            f"({case['index_dtype']}/{case['prob_dtype']})",
            file=out,
        )


def check_equivalence(result: dict) -> None:
    """Raise unless every parallel path matched its jobs=1 reference."""
    broken = [
        name
        for name, case in result["cases"].items()
        if not case["bit_identical"]
    ]
    if not result["harness"]["bit_identical"]:
        broken.append("harness")
    if broken:
        raise SystemExit(f"worker-count invariance violated: {broken}")
    check_storage(result)


def check_storage(result: dict) -> None:
    """Raise unless compact storage actually compacts.

    The fully compact-eligible graph must reach the
    ``MAX_COMPACT_SEGMENT_RATIO`` bar; the weighted-cascade graph (indices
    only) must still shrink below its wide layout.
    """
    storage = result.get("storage", {})
    eligible = storage.get("constant-p0.125")
    if eligible and eligible["ratio"] > MAX_COMPACT_SEGMENT_RATIO:
        raise SystemExit(
            f"compact-eligible graph segment ratio {eligible['ratio']} "
            f"exceeds {MAX_COMPACT_SEGMENT_RATIO}"
        )
    wc = storage.get("weighted-cascade")
    if wc and wc["ratio"] >= 1.0:
        raise SystemExit(
            f"weighted-cascade compact segment did not shrink: {wc}"
        )


def check_gates(result: dict, min_speedup: float) -> None:
    """Raise if a gated case (pool, crn) falls below ``min_speedup``."""
    check_equivalence(result)
    failures = {
        name: case["speedup"]
        for name, case in result["cases"].items()
        if case["speedup"] < min_speedup
    }
    if failures:
        raise SystemExit(
            f"speedup gate failed (< {min_speedup}x at {result['jobs']} "
            f"workers): {failures}"
        )


def test_parallel_runtime_gate():
    """Equivalence always; the speedup bar only on comfortably multi-core hosts.

    The worker-count-invariance bars are hardware-independent and always
    enforced.  The speedup assertion needs real, uncontended cores: on a
    single-CPU host the workers merely timeshare, and on an exactly-2-vCPU
    shared runner the measurement is noisy enough to flake tier-1 — there
    the dedicated CI benchmark step (``--gate --jobs 2 --min-speedup 1.3``)
    enforces the bar instead, with the recording that makes failures
    diagnosable.
    """
    import pytest

    jobs = 2
    result = measure(QUICK, jobs=jobs)
    report(result)
    check_equivalence(result)
    if os.cpu_count() is None or os.cpu_count() < 2 * jobs:
        pytest.skip(
            f"speedup assertion needs >= {2 * jobs} CPUs for a stable "
            f"measurement, host has {os.cpu_count()} "
            f"(the CI benchmark step gates it at {CI_MIN_SPEEDUP}x)"
        )
    for name, case in result["cases"].items():
        assert case["speedup"] >= CI_MIN_SPEEDUP, (name, case)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-scale profile")
    parser.add_argument("--jobs", type=int, default=4, help="worker count")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="gate threshold for the pool and CRN cases "
        f"(full default {DEFAULT_MIN_SPEEDUP}; CI uses {CI_MIN_SPEEDUP} at 2 workers)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero unless equivalence holds and every gated case "
        "clears --min-speedup",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    result = measure(QUICK if args.quick else FULL, jobs=args.jobs, seed=args.seed)
    report(result)
    record(result)
    print(f"appended to {RESULTS_PATH}")
    if args.gate:
        check_gates(result, args.min_speedup)
    else:
        check_equivalence(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
