"""Synthetic graph generators.

Two roles:

1. Small deterministic structures (paths, stars, cycles, complete graphs,
   layered DAGs) used heavily by the test suite, where exact spreads can be
   computed by hand.
2. Random social-network-like graphs (Erdős–Rényi, preferential attachment,
   Chung–Lu power law) that stand in for the paper's SNAP datasets.  The
   dataset registry in :mod:`repro.experiments.datasets` builds its scaled
   NetHEPT/Epinions/Youtube/LiveJournal analogues on top of these.

All generators return *unweighted* topology with a placeholder probability of
1.0 on each edge; callers then apply a scheme from
:mod:`repro.graph.weighting` (the experiments use weighted cascade).
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator

_PLACEHOLDER = 1.0


# ----------------------------------------------------------------------
# Deterministic structures (test workhorses)
# ----------------------------------------------------------------------

def path_graph(n: int, probability: float = _PLACEHOLDER) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    _check_n(n)
    builder = GraphBuilder(n)
    builder.add_path(range(n), probability)
    return builder.build()


def cycle_graph(n: int, probability: float = _PLACEHOLDER) -> DiGraph:
    """Directed cycle over ``n >= 2`` nodes."""
    _check_n(n, minimum=2)
    builder = GraphBuilder(n)
    builder.add_path(range(n), probability)
    builder.add_edge(n - 1, 0, probability)
    return builder.build()


def star_graph(
    n: int, probability: float = _PLACEHOLDER, outward: bool = True
) -> DiGraph:
    """Star with hub ``0``; ``outward=True`` points hub -> leaves."""
    _check_n(n, minimum=1)
    builder = GraphBuilder(n)
    for leaf in range(1, n):
        if outward:
            builder.add_edge(0, leaf, probability)
        else:
            builder.add_edge(leaf, 0, probability)
    return builder.build()


def complete_graph(n: int, probability: float = _PLACEHOLDER) -> DiGraph:
    """All ``n * (n-1)`` directed edges."""
    _check_n(n)
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                builder.add_edge(u, v, probability)
    return builder.build()


def layered_dag(
    layers: int,
    width: int,
    probability: float = _PLACEHOLDER,
) -> DiGraph:
    """Complete bipartite connections between consecutive layers.

    Node ids are assigned layer-major: layer ``i`` holds nodes
    ``i*width .. (i+1)*width - 1``.  Useful for testing truncation: a seed in
    layer 0 can reach exactly ``layers * width`` nodes when all edges fire.
    """
    _check_n(layers, minimum=1)
    _check_n(width, minimum=1)
    n = layers * width
    builder = GraphBuilder(n)
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                builder.add_edge(layer * width + a, (layer + 1) * width + b, probability)
    return builder.build()


def paper_example_graph() -> DiGraph:
    """The four-node graph of the paper's Example 2.3 (Figure 2).

    Edges: ``v1 -> v2`` (p=0.5), ``v1 -> v3`` (p=0.5), ``v2 -> v4`` (p=1),
    ``v3 -> v4`` (p=1), with node ids ``v1=0, v2=1, v3=2, v4=3``.  At
    ``eta = 2`` the vanilla expected spread prefers ``v1`` while the truncated
    expected spread prefers ``v2``/``v3`` — the motivating example for the
    whole truncated-objective design.
    """
    builder = GraphBuilder(4)
    builder.add_edge(0, 1, 0.5)
    builder.add_edge(0, 2, 0.5)
    builder.add_edge(1, 3, 1.0)
    builder.add_edge(2, 3, 1.0)
    return builder.build()


def figure1_graph() -> DiGraph:
    """The six-node illustration graph from the paper's Figure 1(a).

    Node ids ``v1..v6 -> 0..5``; probabilities as printed in the figure.
    """
    builder = GraphBuilder(6)
    builder.add_edge(0, 1, 0.1)   # v1 -> v2
    builder.add_edge(0, 3, 0.9)   # v1 -> v4
    builder.add_edge(0, 5, 0.5)   # v1 -> v6 (upper 0.5 edge)
    builder.add_edge(3, 5, 0.7)   # v4 -> v6
    builder.add_edge(2, 3, 0.6)   # v3 -> v4
    builder.add_edge(2, 4, 0.4)   # v3 -> v5
    builder.add_edge(1, 2, 0.3)   # v2 -> v3
    return builder.build()


# ----------------------------------------------------------------------
# Random graphs
# ----------------------------------------------------------------------

def erdos_renyi(
    n: int,
    expected_degree: float,
    seed: RandomSource = None,
    directed: bool = True,
) -> DiGraph:
    """G(n, p) random digraph with expected out-degree ``expected_degree``.

    Sampled by drawing ``Binomial(n*(n-1), p)`` edge slots without
    materializing the full adjacency matrix, so it scales to the tens of
    thousands of nodes the experiments use.
    """
    _check_n(n, minimum=2)
    if expected_degree <= 0 or expected_degree > n - 1:
        raise ConfigurationError(
            f"expected_degree must be in (0, {n - 1}], got {expected_degree}"
        )
    rng = as_generator(seed)
    p = expected_degree / (n - 1)
    total_slots = n * (n - 1)
    count = rng.binomial(total_slots, p)
    # Sample edge slot indices without replacement; decode to (u, v) pairs
    # skipping the diagonal.
    slots = rng.choice(total_slots, size=count, replace=False)
    u = slots // (n - 1)
    r = slots % (n - 1)
    v = np.where(r >= u, r + 1, r)
    if not directed:
        # Keep one orientation per unordered pair, then mirror.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
        u = np.concatenate([pairs[:, 0], pairs[:, 1]])
        v = np.concatenate([pairs[:, 1], pairs[:, 0]])
    probs = np.full(len(u), _PLACEHOLDER, dtype=np.float64)
    return DiGraph.from_arrays(n, u.astype(np.int64), v.astype(np.int64), probs)


def preferential_attachment(
    n: int,
    edges_per_node: int,
    seed: RandomSource = None,
    directed: bool = True,
) -> DiGraph:
    """Barabási–Albert-style power-law graph.

    Nodes arrive one at a time and attach ``edges_per_node`` edges to
    existing nodes chosen proportionally to their current degree (plus one,
    so isolated nodes remain reachable).  ``directed=False`` mirrors every
    edge, matching how the paper treats undirected datasets.

    The resulting in-degree distribution has the heavy power-law tail seen in
    the paper's Figure 3.
    """
    _check_n(n, minimum=2)
    if edges_per_node < 1:
        raise ConfigurationError(f"edges_per_node must be >= 1, got {edges_per_node}")
    rng = as_generator(seed)
    # Repeated-node list implements degree-proportional sampling in O(1).
    attachment_pool = [0]
    sources = []
    targets = []
    for new_node in range(1, n):
        k = min(edges_per_node, new_node)
        chosen = set()
        # Mix degree-proportional picks with occasional uniform picks so
        # early nodes do not absorb literally every edge.
        while len(chosen) < k:
            if rng.random() < 0.9:
                candidate = attachment_pool[rng.integers(len(attachment_pool))]
            else:
                candidate = int(rng.integers(new_node))
            chosen.add(candidate)
        for old_node in chosen:
            sources.append(new_node)
            targets.append(old_node)
            attachment_pool.append(old_node)
        attachment_pool.append(new_node)
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    probs = np.full(len(src), _PLACEHOLDER, dtype=np.float64)
    return DiGraph.from_arrays(n, src, dst, probs)


def chung_lu_power_law(
    n: int,
    average_degree: float,
    exponent: float = 2.5,
    seed: RandomSource = None,
    directed: bool = True,
    max_weight_fraction: float = 0.05,
) -> DiGraph:
    """Chung–Lu random graph with power-law expected degrees.

    Each node gets an expected degree ``w_i ~ PowerLaw(exponent)`` rescaled
    to the requested average; edge ``(u, v)`` appears with probability
    ``w_u * w_v / sum(w)`` (clipped at 1).  Sampled with the Miller–Hagberg
    style per-source geometric skipping, giving ``O(n + m)`` time.

    ``max_weight_fraction`` caps individual expected degrees at that fraction
    of ``n`` to avoid a single super-hub swallowing the graph.
    """
    _check_n(n, minimum=2)
    if average_degree <= 0:
        raise ConfigurationError(f"average_degree must be positive, got {average_degree}")
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must exceed 1, got {exponent}")
    rng = as_generator(seed)
    # Pareto-style weights: w ~ (1 - U)^(-1/(exponent-1)).
    raw = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    raw = np.minimum(raw, max_weight_fraction * n)
    weights = raw * (average_degree * n / raw.sum())
    total = weights.sum()

    # Sort descending so the skipping loop can terminate early per source.
    order = np.argsort(-weights)
    sorted_w = weights[order]

    sources = []
    targets = []
    for i in range(n):
        wi = sorted_w[i]
        if wi <= 0:
            break
        j = 0
        p = min(1.0, wi * sorted_w[j] / total) if n else 0.0
        while j < n and p > 0:
            if p < 1.0:
                # Geometric skip to the next selected partner.
                skip = int(np.floor(np.log(rng.random()) / np.log(1.0 - p)))
                j += skip
            if j >= n:
                break
            q = min(1.0, wi * sorted_w[j] / total)
            if rng.random() < q / p and i != j:
                sources.append(order[i])
                targets.append(order[j])
            p = q
            j += 1
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if not directed and len(src):
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        # Mirroring can duplicate a pair sampled in both orientations.
        pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
    probs = np.full(len(src), _PLACEHOLDER, dtype=np.float64)
    return DiGraph.from_arrays(n, src, dst, probs)


def attach_fragments(
    core: DiGraph,
    total_n: int,
    seed: RandomSource = None,
    directed: bool = True,
    min_size: int = 2,
    max_size: int = 4,
) -> DiGraph:
    """Pad a core graph with small disconnected components.

    Real collaboration graphs are fragmented — the paper's NetHEPT has only
    45% of its nodes inside the largest weakly connected component — which
    matters for seed minimization: nodes outside the core can only be
    reached by seeding their own component.  This helper keeps the core's
    node ids ``0..core.n-1`` and fills ids up to ``total_n - 1`` with random
    chains of ``min_size..max_size`` nodes (never isolated nodes, matching
    the datasets' "no isolated node" property).
    """
    _check_n(total_n, minimum=core.n)
    if not 2 <= min_size <= max_size:
        raise ConfigurationError(
            f"need 2 <= min_size <= max_size, got {min_size}..{max_size}"
        )
    if total_n == core.n:
        return core
    rng = as_generator(seed)
    src, dst, probs = core.edge_arrays()
    extra_src = []
    extra_dst = []
    next_id = core.n
    while next_id < total_n:
        size = int(rng.integers(min_size, max_size + 1))
        size = min(size, total_n - next_id)
        if size < 2:
            # A single leftover node attaches to the previous fragment so it
            # is not isolated.
            extra_src.append(next_id - 1)
            extra_dst.append(next_id)
            if not directed:
                extra_src.append(next_id)
                extra_dst.append(next_id - 1)
            next_id += 1
            continue
        for offset in range(size - 1):
            extra_src.append(next_id + offset)
            extra_dst.append(next_id + offset + 1)
            if not directed:
                extra_src.append(next_id + offset + 1)
                extra_dst.append(next_id + offset)
        if directed:
            # Close the chain into a cycle so every node has indegree >= 1
            # (the weighted cascade divides by indegree).
            extra_src.append(next_id + size - 1)
            extra_dst.append(next_id)
        next_id += size
    all_src = np.concatenate([src, np.asarray(extra_src, dtype=np.int64)])
    all_dst = np.concatenate([dst, np.asarray(extra_dst, dtype=np.int64)])
    all_probs = np.concatenate(
        [probs, np.full(len(extra_src), _PLACEHOLDER, dtype=np.float64)]
    )
    return DiGraph.from_arrays(total_n, all_src, all_dst, all_probs)


def _check_n(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise ConfigurationError(f"need at least {minimum} nodes, got {n}")
