"""Incremental construction of :class:`repro.graph.digraph.DiGraph`.

``DiGraph`` is immutable; :class:`GraphBuilder` is the mutable staging area
used by the generators, the IO readers, and test fixtures.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import numpy as np

from repro.errors import EdgeError
from repro.graph.digraph import DiGraph


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`DiGraph`.

    Parameters
    ----------
    n:
        Number of nodes (fixed up front; node ids are ``0..n-1``).
    deduplicate:
        If ``True`` (default), adding the same ``(u, v)`` edge twice keeps
        the *last* probability instead of creating a parallel edge.
    """

    def __init__(self, n: int, deduplicate: bool = True):
        if n < 0:
            raise EdgeError(f"node count must be non-negative, got {n}")
        self.n = int(n)
        self._deduplicate = deduplicate
        self._edges: dict[tuple[int, int], float] = {}
        self._parallel: list = []  # used only when deduplicate=False

    def __len__(self) -> int:
        """Number of staged edges."""
        return len(self._edges) + len(self._parallel)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether a ``u -> v`` edge has been staged (deduplicating mode)."""
        return (u, v) in self._edges

    def add_edge(self, u: int, v: int, probability: float) -> GraphBuilder:
        """Stage a directed edge ``u -> v`` with the given probability."""
        self._validate(u, v, probability)
        if self._deduplicate:
            self._edges[(u, v)] = float(probability)
        else:
            self._parallel.append((u, v, float(probability)))
        return self

    def add_undirected_edge(self, u: int, v: int, probability: float) -> GraphBuilder:
        """Stage both directions, as the paper does for undirected datasets.

        "an undirected edge is transformed into two directed edges"
        (Section 6.1).
        """
        self.add_edge(u, v, probability)
        self.add_edge(v, u, probability)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int, float]]) -> GraphBuilder:
        """Stage many ``(u, v, p)`` triples at once."""
        for u, v, p in edges:
            self.add_edge(u, v, p)
        return self

    def add_path(self, nodes: Iterable[int], probability: float) -> GraphBuilder:
        """Stage a directed path through ``nodes`` with uniform probability."""
        prev: Optional[int] = None
        for node in nodes:
            if prev is not None:
                self.add_edge(prev, node, probability)
            prev = node
        return self

    def build(self) -> DiGraph:
        """Materialize the staged edges into an immutable :class:`DiGraph`."""
        if self._deduplicate:
            items = self._edges.items()
            src = np.fromiter((uv[0] for uv, _ in items), dtype=np.int64, count=len(self._edges))
            dst = np.fromiter((uv[1] for uv, _ in items), dtype=np.int64, count=len(self._edges))
            prob = np.fromiter((p for _, p in items), dtype=np.float64, count=len(self._edges))
        else:
            src = np.fromiter((e[0] for e in self._parallel), dtype=np.int64, count=len(self._parallel))
            dst = np.fromiter((e[1] for e in self._parallel), dtype=np.int64, count=len(self._parallel))
            prob = np.fromiter((e[2] for e in self._parallel), dtype=np.float64, count=len(self._parallel))
        return DiGraph.from_arrays(self.n, src, dst, prob)

    def _validate(self, u: int, v: int, probability: float) -> None:
        if not 0 <= u < self.n:
            raise EdgeError(f"source {u} out of range for n={self.n}")
        if not 0 <= v < self.n:
            raise EdgeError(f"target {v} out of range for n={self.n}")
        if u == v:
            raise EdgeError(f"self-loop {u} -> {v} is not allowed")
        if not 0.0 < probability <= 1.0:
            raise EdgeError(f"probability must be in (0, 1], got {probability}")
