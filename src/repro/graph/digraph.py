"""Immutable directed probabilistic graph in compressed-sparse-row form.

The whole library runs on :class:`DiGraph`: a node set ``{0, ..., n-1}`` and
``m`` directed edges, each with a propagation probability ``p(e) in (0, 1]``.
Both adjacency directions are stored as CSR arrays because the two halves of
the system walk the graph in opposite directions:

* forward simulation of a cascade follows *outgoing* edges,
* RR / mRR sampling performs a reverse BFS over *incoming* edges.

The arrays are NumPy vectors so the BFS inner loops can expand a whole
frontier with vectorized slicing instead of per-edge Python calls — this is
what makes a pure-Python reproduction of an RR-set-based system feasible.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

import numpy as np

from repro.errors import EdgeError, GraphError, NodeNotFoundError

Edge = tuple[int, int, float]

#: Graph storage policies.  ``adaptive`` downcasts CSR arrays where the
#: downcast is provably lossless (int32 index/indptr arrays when both the
#: node and edge counts fit, float32 probabilities when every value
#: round-trips exactly); ``wide`` pins the historical int64/float64 layout.
#: Every sampler and simulator consumes the arrays through NumPy operations
#: that promote exactly (compares, float64 accumulators, index gathers), so
#: the two layouts produce bit-identical results — the dtype-equivalence
#: tests pin this.
STORAGE_POLICIES = ("adaptive", "wide")

_INT32_LIMIT = np.iinfo(np.int32).max


def csr_index_dtype(n: int, m: int) -> np.dtype:
    """Narrowest safe dtype for the CSR index/indptr arrays of ``(n, m)``.

    ``indptr`` values run up to ``m`` and index values up to ``n - 1``, so
    int32 is exact whenever both counts fit; int64 otherwise.
    """
    if n + 1 <= _INT32_LIMIT and m <= _INT32_LIMIT:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def csr_prob_dtype(probabilities: np.ndarray) -> np.dtype:
    """float32 when the downcast is lossless for every value, else float64.

    Lossless means every probability survives a float32 round-trip exactly
    (powers of two like 0.5/0.25, and most hand-authored test weights do;
    weighted-cascade values like 1/3 do not) — only then can the compact
    layout be numerically indistinguishable, because float32 -> float64
    promotion is always exact.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    narrow = probabilities.astype(np.float32)
    if np.array_equal(narrow.astype(np.float64), probabilities):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


class DiGraph:
    """A directed graph with per-edge propagation probabilities.

    Instances are immutable: construct them with :class:`repro.graph.builder.
    GraphBuilder`, the generators in :mod:`repro.graph.generators`, or
    directly from edge arrays via :meth:`from_edges`.

    Attributes
    ----------
    n:
        Number of nodes; node identifiers are ``0..n-1``.
    m:
        Number of directed edges.
    """

    __slots__ = (
        "n",
        "m",
        "storage",
        "_out_indptr",
        "_out_targets",
        "_out_probs",
        "_in_indptr",
        "_in_sources",
        "_in_probs",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_targets: np.ndarray,
        out_probs: np.ndarray,
        in_indptr: np.ndarray,
        in_sources: np.ndarray,
        in_probs: np.ndarray,
        storage: str = "adaptive",
    ):
        """Low-level constructor from pre-built CSR arrays.

        Most callers should use :meth:`from_edges`; this constructor trusts
        its arguments apart from cheap shape checks.  ``storage`` records
        the policy the arrays were built under so derived graphs
        (:meth:`induced_subgraph`, :meth:`with_probabilities`) inherit it.
        """
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        if len(out_indptr) != n + 1 or len(in_indptr) != n + 1:
            raise GraphError("indptr arrays must have length n + 1")
        if len(out_targets) != len(out_probs):
            raise GraphError("out_targets and out_probs must have equal length")
        if len(in_sources) != len(in_probs):
            raise GraphError("in_sources and in_probs must have equal length")
        if len(out_targets) != len(in_sources):
            raise GraphError("forward and reverse CSR must describe the same edges")
        if storage not in STORAGE_POLICIES:
            raise GraphError(
                f"storage must be one of {STORAGE_POLICIES}, got {storage!r}"
            )
        self.n = int(n)
        self.m = int(len(out_targets))
        self.storage = storage
        self._out_indptr = out_indptr
        self._out_targets = out_targets
        self._out_probs = out_probs
        self._in_indptr = in_indptr
        self._in_sources = in_sources
        self._in_probs = in_probs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Edge], storage: str = "adaptive"
    ) -> DiGraph:
        """Build a graph from ``(source, target, probability)`` triples.

        Self-loops and out-of-range endpoints raise :class:`EdgeError`;
        parallel edges are allowed (the diffusion models treat them as
        independent activation chances), though the stock generators never
        produce them.
        """
        edge_list = list(edges)
        if edge_list:
            src = np.fromiter((e[0] for e in edge_list), dtype=np.int64)
            dst = np.fromiter((e[1] for e in edge_list), dtype=np.int64)
            prob = np.fromiter((e[2] for e in edge_list), dtype=np.float64)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
            prob = np.empty(0, dtype=np.float64)
        return cls.from_arrays(n, src, dst, prob, storage=storage)

    @classmethod
    def from_arrays(
        cls,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probabilities: np.ndarray,
        storage: str = "adaptive",
    ) -> DiGraph:
        """Build a graph from parallel NumPy edge arrays (vectorized path).

        ``storage`` selects the CSR array layout: ``"adaptive"`` (default)
        stores index/indptr arrays as int32 when ``n`` and ``m`` fit and
        probabilities as float32 when that is lossless, halving the memory
        (and shared-memory segment) footprint with bit-identical sampling
        behavior; ``"wide"`` pins the int64/float64 reference layout (the
        dtype-equivalence tests compare the two).
        """
        if storage not in STORAGE_POLICIES:
            raise GraphError(
                f"storage must be one of {STORAGE_POLICIES}, got {storage!r}"
            )
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if not (len(sources) == len(targets) == len(probabilities)):
            raise EdgeError("edge arrays must have equal length")
        if len(sources):
            if sources.min() < 0 or sources.max() >= n:
                raise EdgeError("edge source out of range")
            if targets.min() < 0 or targets.max() >= n:
                raise EdgeError("edge target out of range")
            if np.any(sources == targets):
                raise EdgeError("self-loops are not allowed")
            if np.any(probabilities <= 0.0) or np.any(probabilities > 1.0):
                raise EdgeError("edge probabilities must lie in (0, 1]")

        if storage == "adaptive":
            index_dtype = csr_index_dtype(n, len(sources))
            prob_dtype = csr_prob_dtype(probabilities)
        else:
            index_dtype = np.dtype(np.int64)
            prob_dtype = np.dtype(np.float64)
        out_indptr, out_targets, out_probs = _build_csr(
            n, sources, targets, probabilities, index_dtype, prob_dtype
        )
        in_indptr, in_sources, in_probs = _build_csr(
            n, targets, sources, probabilities, index_dtype, prob_dtype
        )
        return cls(
            n,
            out_indptr,
            out_targets,
            out_probs,
            in_indptr,
            in_sources,
            in_probs,
            storage=storage,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise NodeNotFoundError(v, self.n)

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        self._check_node(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        self._check_node(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for all nodes."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for all nodes."""
        return np.diff(self._in_indptr)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Targets of edges leaving ``v`` (a read-only CSR slice)."""
        self._check_node(v)
        return self._out_targets[self._out_indptr[v] : self._out_indptr[v + 1]]

    def out_probabilities(self, v: int) -> np.ndarray:
        """Probabilities aligned with :meth:`out_neighbors`."""
        self._check_node(v)
        return self._out_probs[self._out_indptr[v] : self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (a read-only CSR slice)."""
        self._check_node(v)
        return self._in_sources[self._in_indptr[v] : self._in_indptr[v + 1]]

    def in_probabilities(self, v: int) -> np.ndarray:
        """Probabilities aligned with :meth:`in_neighbors`."""
        self._check_node(v)
        return self._in_probs[self._in_indptr[v] : self._in_indptr[v + 1]]

    # Raw CSR access for the vectorized samplers.  These return the internal
    # arrays without copying; callers must treat them as read-only.

    @property
    def out_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, targets, probabilities)`` of the forward adjacency."""
        return self._out_indptr, self._out_targets, self._out_probs

    @property
    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, sources, probabilities)`` of the reverse adjacency."""
        return self._in_indptr, self._in_sources, self._in_probs

    # ------------------------------------------------------------------
    # Storage introspection
    # ------------------------------------------------------------------

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the CSR index/indptr arrays (int32 when compact)."""
        return self._out_targets.dtype

    @property
    def prob_dtype(self) -> np.dtype:
        """Dtype of the probability arrays (float32 when lossless)."""
        return self._out_probs.dtype

    @property
    def csr_nbytes(self) -> int:
        """Total bytes of the six CSR arrays (the shared-memory payload)."""
        return int(
            self._out_indptr.nbytes
            + self._out_targets.nbytes
            + self._out_probs.nbytes
            + self._in_indptr.nbytes
            + self._in_sources.nbytes
            + self._in_probs.nbytes
        )

    def with_storage(self, storage: str) -> DiGraph:
        """Rebuild this graph under another storage policy.

        ``"wide"`` upcasts every CSR array to int64/float64; ``"adaptive"``
        re-applies the lossless downcasts.  Topology, edge order, and (by
        losslessness) every probability value are preserved exactly, so the
        two layouts sample bit-identically.
        """
        if storage not in STORAGE_POLICIES:
            raise GraphError(
                f"storage must be one of {STORAGE_POLICIES}, got {storage!r}"
            )
        if storage == "adaptive":
            index_dtype = csr_index_dtype(self.n, self.m)
            prob_dtype = csr_prob_dtype(self._out_probs)
        else:
            index_dtype = np.dtype(np.int64)
            prob_dtype = np.dtype(np.float64)
        return DiGraph(
            self.n,
            self._out_indptr.astype(index_dtype),
            self._out_targets.astype(index_dtype),
            self._out_probs.astype(prob_dtype),
            self._in_indptr.astype(index_dtype),
            self._in_sources.astype(index_dtype),
            self._in_probs.astype(prob_dtype),
            storage=storage,
        )

    # ------------------------------------------------------------------
    # Edge iteration / export
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(source, target, probability)`` triples."""
        for u in range(self.n):
            start, end = self._out_indptr[u], self._out_indptr[u + 1]
            for idx in range(start, end):
                yield u, int(self._out_targets[idx]), float(self._out_probs[idx])

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Export edges as ``(sources, targets, probabilities)`` arrays.

        Edges come out grouped by source in ascending order, which is the
        canonical ordering used by :meth:`__eq__` and the IO round-trip.
        Always int64/float64 regardless of the internal storage policy
        (the export is a copy anyway, and float32 -> float64 is exact).
        """
        sources = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        return (
            sources,
            self._out_targets.astype(np.int64),
            self._out_probs.astype(np.float64),
        )

    def has_edge(self, u: int, v: int) -> bool:
        """Whether at least one directed edge ``u -> v`` exists."""
        self._check_node(v)
        return bool(np.any(self.out_neighbors(u) == v))

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of edge ``u -> v``; raises if absent.

        With parallel edges, returns the probability of the first stored one.
        """
        self._check_node(v)
        neighbors = self.out_neighbors(u)
        matches = np.flatnonzero(neighbors == v)
        if len(matches) == 0:
            raise EdgeError(f"edge {u} -> {v} does not exist")
        return float(self.out_probabilities(u)[matches[0]])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def reverse(self) -> DiGraph:
        """Return the graph with every edge direction flipped."""
        return DiGraph(
            self.n,
            self._in_indptr,
            self._in_sources,
            self._in_probs,
            self._out_indptr,
            self._out_targets,
            self._out_probs,
            storage=self.storage,
        )

    def with_probabilities(self, probabilities_by_edge) -> DiGraph:
        """Return a copy whose probabilities are recomputed per edge.

        ``probabilities_by_edge`` is a callable ``(u, v) -> p`` evaluated for
        every edge; used by the weighting schemes.
        """
        src, dst, _ = self.edge_arrays()
        probs = np.fromiter(
            (probabilities_by_edge(int(u), int(v)) for u, v in zip(src, dst)),
            dtype=np.float64,
            count=len(src),
        )
        return DiGraph.from_arrays(self.n, src, dst, probs, storage=self.storage)

    def relabeled(
        self, order: Optional[np.ndarray] = None
    ) -> tuple["DiGraph", np.ndarray]:
        """Renumber the nodes along a permutation; same graph, new ids.

        ``order[new_id] = old_id`` — the node that becomes id ``0`` is
        ``order[0]``.  With ``order=None`` the degree-descending
        permutation from :func:`repro.graph.analysis.degree_order` is
        used, which packs the high-degree hubs into a small id prefix so
        the sampling kernels' frontier/visited arrays touch a compact
        region of memory.  Returns ``(relabeled_graph, order)``; recover
        original ids from any result computed on the relabeled graph with
        ``order[new_ids]``.

        The relabeled graph is isomorphic by construction: every edge
        ``u -> v`` with probability ``p`` becomes
        ``inverse[u] -> inverse[v]`` with the same ``p``, and the storage
        policy is inherited.  Sampling streams are *not* preserved (RR
        sets depend on node ids), so relabeling is a preprocessing step —
        fix the order before seeding, not mid-run.
        """
        if order is None:
            from repro.graph.analysis import degree_order

            order = degree_order(self)
        order = np.asarray(order, dtype=np.int64)
        if order.shape != (self.n,):
            raise GraphError(
                f"order must have shape ({self.n},), got {order.shape}"
            )
        if not np.array_equal(np.sort(order), np.arange(self.n, dtype=np.int64)):
            raise GraphError("order must be a permutation of 0..n-1")
        inverse = np.argsort(order)  # inverse[old_id] = new_id
        src, dst, probs = self.edge_arrays()
        relabeled = DiGraph.from_arrays(
            self.n, inverse[src], inverse[dst], probs, storage=self.storage
        )
        return relabeled, order

    def induced_subgraph(self, keep: np.ndarray) -> tuple["DiGraph", np.ndarray]:
        """Induce the subgraph on the nodes flagged in boolean mask ``keep``.

        Returns ``(subgraph, kept_node_ids)``: the subgraph renumbers the
        surviving nodes ``0..n'-1`` in ascending original order, and
        ``kept_node_ids[i]`` maps new id ``i`` back to the original id.  This
        is the primitive behind the residual graphs ``G_i`` of the paper.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n,):
            raise GraphError(f"mask must have shape ({self.n},), got {keep.shape}")
        kept_ids = np.flatnonzero(keep)
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[kept_ids] = np.arange(len(kept_ids), dtype=np.int64)

        src, dst, probs = self.edge_arrays()
        mask = keep[src] & keep[dst]
        # Derived graphs inherit the storage policy, so a "wide" reference
        # graph keeps the int64/float64 layout through every residual round.
        sub = DiGraph.from_arrays(
            len(kept_ids),
            new_id[src[mask]],
            new_id[dst[mask]],
            probs[mask],
            storage=self.storage,
        )
        return sub, kept_ids

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        return (
            np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_targets, other._out_targets)
            and np.allclose(self._out_probs, other._out_probs)
        )

    def __hash__(self) -> int:  # graphs are content-addressed rarely; cheap hash
        return hash((self.n, self.m))

    def __repr__(self) -> str:
        return f"DiGraph(n={self.n}, m={self.m})"


def _build_csr(
    n: int,
    group_by: np.ndarray,
    values: np.ndarray,
    probs: np.ndarray,
    index_dtype: Optional[np.dtype] = None,
    prob_dtype: Optional[np.dtype] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group ``(values, probs)`` by ``group_by`` into CSR arrays.

    Within each group the stored order follows a stable sort of ``group_by``,
    i.e. original insertion order, which keeps round-trips deterministic.
    The output arrays are cast to the requested storage dtypes (callers
    guarantee the cast is lossless; see :func:`csr_index_dtype` /
    :func:`csr_prob_dtype`).
    """
    if index_dtype is None:
        index_dtype = np.dtype(np.int64)
    if prob_dtype is None:
        prob_dtype = np.dtype(np.float64)
    counts = np.bincount(group_by, minlength=n) if len(group_by) else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(group_by, kind="stable")
    return (
        indptr.astype(index_dtype),
        values[order].astype(index_dtype),
        probs[order].astype(prob_dtype),
    )


def gather_csr_rows(indptr: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Positions of all CSR entries belonging to the rows in ``nodes``.

    Given a CSR ``indptr`` and an array of row ids, returns an int64 array of
    positions such that ``values[positions]`` concatenates the row slices in
    order.  This is the frontier-expansion primitive shared by forward
    simulation and reverse (m)RR sampling: it replaces a Python loop over
    frontier nodes with three vectorized NumPy operations.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    starts = indptr[nodes]
    sizes = indptr[nodes + 1] - starts
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative_before = np.cumsum(sizes) - sizes
    return np.repeat(starts - cumulative_before, sizes) + np.arange(total, dtype=np.int64)


def nodes_reachable_from(
    graph: DiGraph, sources: Sequence[int]
) -> np.ndarray:
    """Boolean mask of nodes reachable from ``sources`` following all edges.

    This ignores probabilities (treats every edge as present); the diffusion
    package provides the probabilistic counterparts.  Exposed here because
    analysis code (LWCC, feasibility checks) needs plain reachability.
    """
    indptr, targets, _ = graph.out_csr
    visited = np.zeros(graph.n, dtype=bool)
    frontier: list[int] = []
    for s in sources:
        if not 0 <= s < graph.n:
            raise NodeNotFoundError(s, graph.n)
        if not visited[s]:
            visited[s] = True
            frontier.append(s)
    while frontier:
        next_frontier: list[int] = []
        for v in frontier:
            neighbors = targets[indptr[v] : indptr[v + 1]]
            fresh = neighbors[~visited[neighbors]]
            if len(fresh):
                visited[fresh] = True
                next_frontier.extend(int(x) for x in fresh)
        frontier = next_frontier
    return visited
