"""Edge-probability assignment schemes.

The paper's experiments use the *weighted cascade* convention
``p(u, v) = 1 / indeg(v)`` (Section 6.1).  We also provide the other two
conventions common in the influence-maximization literature (constant and
trivalency) plus a uniform-random scheme, so downstream users can stress
their own settings.

Each scheme maps an existing :class:`DiGraph` to a new one with the same
topology and fresh probabilities.  For the linear threshold model the
weighted cascade scheme additionally guarantees the LT validity constraint
that incoming probabilities sum to at most 1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator


def weighted_cascade(graph: DiGraph) -> DiGraph:
    """Assign ``p(u, v) = 1 / indeg(v)`` to every edge.

    This is the paper's setting.  Incoming probabilities at each node sum to
    exactly 1, which also makes the graph a valid linear-threshold instance.
    """
    src, dst, _ = graph.edge_arrays()
    indeg = graph.in_degrees().astype(np.float64)
    # Every edge target has indegree >= 1 by construction.
    probs = 1.0 / indeg[dst]
    return DiGraph.from_arrays(graph.n, src, dst, probs)


def scaled_cascade(graph: DiGraph, gamma: float) -> DiGraph:
    """Assign ``p(u, v) = gamma / indeg(v)`` to every edge.

    A damped weighted cascade: ``gamma = 1`` recovers the paper's setting,
    while ``gamma < 1`` lowers the percolation level uniformly.  The dataset
    registry uses this to calibrate the *relative* per-seed spread of the
    scaled-down synthetic graphs to the paper's large graphs (see DESIGN.md):
    plain weighted cascade on a small dense core is super-critical, which
    would collapse the seed-count figures to a handful of seeds.

    Still a valid LT weighting (incoming sums are ``gamma <= 1``).
    """
    if not 0.0 < gamma <= 1.0:
        raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
    src, dst, _ = graph.edge_arrays()
    indeg = graph.in_degrees().astype(np.float64)
    probs = gamma / indeg[dst]
    return DiGraph.from_arrays(graph.n, src, dst, probs)


def constant(graph: DiGraph, probability: float) -> DiGraph:
    """Assign the same probability to every edge."""
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError(f"probability must be in (0, 1], got {probability}")
    src, dst, _ = graph.edge_arrays()
    probs = np.full(len(src), probability, dtype=np.float64)
    return DiGraph.from_arrays(graph.n, src, dst, probs)


def trivalency(
    graph: DiGraph,
    choices: Sequence[float] = (0.1, 0.01, 0.001),
    seed: RandomSource = None,
) -> DiGraph:
    """Assign each edge a probability drawn uniformly from ``choices``.

    The classic TRIVALENCY model of Chen et al.; the default triple matches
    the literature's {0.1, 0.01, 0.001}.
    """
    if not choices:
        raise ConfigurationError("choices must be non-empty")
    for c in choices:
        if not 0.0 < c <= 1.0:
            raise ConfigurationError(f"every choice must be in (0, 1], got {c}")
    rng = as_generator(seed)
    src, dst, _ = graph.edge_arrays()
    probs = rng.choice(np.asarray(choices, dtype=np.float64), size=len(src))
    return DiGraph.from_arrays(graph.n, src, dst, probs)


def uniform_random(
    graph: DiGraph,
    low: float = 0.01,
    high: float = 0.1,
    seed: RandomSource = None,
) -> DiGraph:
    """Assign each edge an independent probability ``Uniform(low, high]``."""
    if not 0.0 < low <= high <= 1.0:
        raise ConfigurationError(
            f"need 0 < low <= high <= 1, got low={low}, high={high}"
        )
    rng = as_generator(seed)
    src, dst, _ = graph.edge_arrays()
    probs = rng.uniform(low, high, size=len(src))
    # uniform() can return exactly `low` but never `high`; both are fine and
    # strictly positive, so no clipping is needed.
    return DiGraph.from_arrays(graph.n, src, dst, probs)


def normalize_for_lt(graph: DiGraph) -> DiGraph:
    """Scale incoming probabilities so they sum to at most 1 per node.

    The LT model requires ``sum_u p(u, v) <= 1`` for every ``v``.  Nodes
    already satisfying the constraint are untouched; others have their
    incoming probabilities divided by the (violating) sum.
    """
    src, dst, probs = graph.edge_arrays()
    if len(src) == 0:
        return graph
    incoming_sum = np.zeros(graph.n, dtype=np.float64)
    np.add.at(incoming_sum, dst, probs)
    scale = np.ones(graph.n, dtype=np.float64)
    violating = incoming_sum > 1.0
    scale[violating] = 1.0 / incoming_sum[violating]
    return DiGraph.from_arrays(graph.n, src, dst, probs * scale[dst])
