"""Structural analysis: degree statistics and connected components.

These back the paper's Table 2 (dataset summary: n, m, average degree, size
of the largest weakly connected component) and Figure 3 (log-log degree
distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphSummary:
    """The row format of the paper's Table 2."""

    name: str
    n: int
    m: int
    average_degree: float
    lwcc_size: int

    def as_row(self) -> tuple[str, int, int, float, int]:
        return (self.name, self.n, self.m, self.average_degree, self.lwcc_size)


def average_degree(graph: DiGraph) -> float:
    """Mean out-degree (equals mean in-degree): ``m / n``."""
    if graph.n == 0:
        return 0.0
    return graph.m / graph.n


def degree_histogram(graph: DiGraph, direction: str = "total") -> dict[int, int]:
    """Map ``degree -> number of nodes`` for the requested direction.

    ``direction`` is ``"in"``, ``"out"``, or ``"total"`` (sum of both, the
    quantity plotted in the paper's Figure 3 for undirected datasets).
    """
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    elif direction == "total":
        degrees = graph.in_degrees() + graph.out_degrees()
    else:
        raise ValueError(f"direction must be 'in', 'out' or 'total', got {direction!r}")
    values, counts = np.unique(degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def degree_distribution(
    graph: DiGraph, direction: str = "total"
) -> dict[int, float]:
    """Fraction-of-nodes version of :func:`degree_histogram` (Figure 3)."""
    histogram = degree_histogram(graph, direction)
    if graph.n == 0:
        return {}
    return {d: c / graph.n for d, c in histogram.items()}


def degree_order(graph: DiGraph, direction: str = "total") -> np.ndarray:
    """Node ids sorted by descending degree (ties: ascending original id).

    Returns a permutation ``order`` with ``order[new_id] = old_id`` —
    exactly the argument :meth:`~repro.graph.digraph.DiGraph.relabeled`
    takes.  Relabeling a power-law graph this way clusters the hubs (the
    nodes nearly every traversal touches) into a compact id prefix, which
    tightens the working set of the labeled-BFS kernels' frontier and
    visited arrays.  The tie-break makes the permutation deterministic,
    so a relabeled run is reproducible from the graph alone.
    """
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    elif direction == "total":
        degrees = graph.in_degrees() + graph.out_degrees()
    else:
        raise ValueError(f"direction must be 'in', 'out' or 'total', got {direction!r}")
    # lexsort's last key is primary: descending degree, then original id.
    return np.lexsort(
        (np.arange(graph.n, dtype=np.int64), -degrees.astype(np.int64))
    )


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label nodes by weakly connected component via union-find.

    Returns an array ``label[v]`` with labels renumbered ``0..k-1`` in first-
    seen order.
    """
    parent = np.arange(graph.n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    src, dst, _ = graph.edge_arrays()
    for u, v in zip(src, dst):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[rv] = ru

    labels = np.empty(graph.n, dtype=np.int64)
    remap: dict[int, int] = {}
    for v in range(graph.n):
        root = find(v)
        if root not in remap:
            remap[root] = len(remap)
        labels[v] = remap[root]
    return labels


def largest_wcc_size(graph: DiGraph) -> int:
    """Number of nodes in the largest weakly connected component."""
    if graph.n == 0:
        return 0
    labels = weakly_connected_components(graph)
    return int(np.bincount(labels).max())


def summarize_graph(graph: DiGraph, name: str = "graph") -> GraphSummary:
    """Produce a Table-2-style summary row for ``graph``."""
    return GraphSummary(
        name=name,
        n=graph.n,
        m=graph.m,
        average_degree=average_degree(graph),
        lwcc_size=largest_wcc_size(graph),
    )


def power_law_exponent_estimate(graph: DiGraph, direction: str = "total") -> float:
    """Crude MLE (Clauset et al. with x_min=1) of the degree-tail exponent.

    Used only for dataset sanity checks ("is this graph power-law-ish like
    Figure 3"), not for any algorithmic decision.
    """
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    else:
        degrees = graph.in_degrees() + graph.out_degrees()
    positive = degrees[degrees >= 1].astype(np.float64)
    if len(positive) == 0:
        return float("nan")
    return 1.0 + len(positive) / np.log(positive / 0.5).sum()
