"""Residual graphs ``G_i`` for the adaptive rounds.

After round ``i-1`` the adaptive policy has observed a set of activated
nodes; the next round operates on the subgraph induced by the still-inactive
nodes (paper Section 2.3).  :class:`ResidualGraph` bundles that induced
subgraph with the id mapping back to the original graph and the shortfall
``eta_i = eta - (n - n_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class ResidualGraph:
    """The induced subgraph on inactive nodes, with bookkeeping.

    Attributes
    ----------
    graph:
        Induced :class:`DiGraph` with nodes renumbered ``0..n_i - 1``.
    original_ids:
        ``original_ids[local]`` maps a residual-node id back to the id in
        the round-1 graph.
    shortfall:
        ``eta_i``: how many more activations the policy still needs.
    round_index:
        1-based round counter (``G_1`` is the input graph).
    """

    graph: DiGraph
    original_ids: np.ndarray
    shortfall: int
    round_index: int

    @property
    def n(self) -> int:
        """Number of inactive nodes (``n_i``)."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of surviving edges (``m_i``)."""
        return self.graph.m

    def to_original(self, local_nodes: Iterable[int]) -> np.ndarray:
        """Map residual-local node ids back to original ids.

        Raises :class:`GraphError` on ids outside the residual range, so a
        misbehaving selector fails loudly instead of corrupting state.
        """
        idx = np.fromiter((int(v) for v in local_nodes), dtype=np.int64)
        if len(idx) and (idx.min() < 0 or idx.max() >= len(self.original_ids)):
            raise GraphError(
                f"local node ids {idx.tolist()} out of residual range "
                f"[0, {len(self.original_ids)})"
            )
        return self.original_ids[idx]

    def local_of(self, original_node: int) -> int:
        """Map an original node id to its residual-local id.

        Raises :class:`GraphError` if the node is no longer inactive.
        """
        pos = np.searchsorted(self.original_ids, original_node)
        if pos >= len(self.original_ids) or self.original_ids[pos] != original_node:
            raise GraphError(f"node {original_node} is not in the residual graph")
        return int(pos)


def initial_residual(graph: DiGraph, eta: int) -> ResidualGraph:
    """``G_1 = G`` with shortfall ``eta`` and identity id mapping."""
    if not 1 <= eta <= graph.n:
        raise GraphError(f"eta must be in [1, n={graph.n}], got {eta}")
    return ResidualGraph(
        graph=graph,
        original_ids=np.arange(graph.n, dtype=np.int64),
        shortfall=eta,
        round_index=1,
    )


def shrink_residual(
    current: ResidualGraph,
    newly_activated_local: Sequence[int],
) -> ResidualGraph:
    """Remove newly-activated nodes and advance to round ``i + 1``.

    ``newly_activated_local`` holds residual-*local* node ids (the output of
    observing a seed's spread inside ``current.graph``).  The shortfall
    decreases by the number of removals and is floored at 0.
    """
    ids = np.asarray(newly_activated_local, dtype=np.int64).reshape(-1)
    out_of_range = (ids < 0) | (ids >= current.n)
    if out_of_range.any():
        v = int(ids[out_of_range][0])
        raise GraphError(f"activated node {v} out of residual range {current.n}")
    activated = np.bincount(ids, minlength=current.n).astype(bool)
    removed = int(activated.sum())
    if removed == 0:
        raise GraphError("a round must activate at least the selected seed")
    keep = ~activated
    subgraph, kept_local = current.graph.induced_subgraph(keep)
    return ResidualGraph(
        graph=subgraph,
        original_ids=current.original_ids[kept_local],
        shortfall=max(0, current.shortfall - removed),
        round_index=current.round_index + 1,
    )
