"""Structural metrics beyond Table 2: SCCs, reciprocity, clustering, hops.

Used to validate that the synthetic stand-in datasets share the *shape* of
the paper's SNAP graphs beyond degree statistics — social networks have
high edge reciprocity and short path lengths; collaboration networks have
high clustering — and exposed as library features for downstream users
profiling their own graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph, gather_csr_rows
from repro.utils.rng import RandomSource, as_generator


def strongly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label nodes by SCC using an iterative Tarjan traversal.

    Returns ``label[v]`` with components numbered in reverse topological
    order of the condensation (Tarjan's natural output order).
    """
    n = graph.n
    indptr, targets, _ = graph.out_csr
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    component = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    component_count = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Each frame is [node, next-edge-offset].
        work = [[root, int(indptr[root])]]
        index[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, edge_pos = work[-1]
            if edge_pos < indptr[v + 1]:
                work[-1][1] += 1
                w = int(targets[edge_pos])
                if index[w] == -1:
                    index[w] = lowlink[w] = next_index
                    next_index += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, int(indptr[w])])
                elif on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
                if lowlink[v] == index[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component[w] = component_count
                        if w == v:
                            break
                    component_count += 1
    return component


def largest_scc_size(graph: DiGraph) -> int:
    """Node count of the largest strongly connected component."""
    if graph.n == 0:
        return 0
    labels = strongly_connected_components(graph)
    return int(np.bincount(labels).max())


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Undirected datasets (stored as mirrored arcs) score 1.0; real directed
    social graphs like Epinions score well below.
    """
    if graph.m == 0:
        return 0.0
    src, dst, _ = graph.edge_arrays()
    forward = set(zip(src.tolist(), dst.tolist()))
    mutual = sum(1 for u, v in forward if (v, u) in forward)
    return mutual / len(forward)


def average_clustering_coefficient(
    graph: DiGraph, sample_nodes: Optional[int] = None, seed: RandomSource = None
) -> float:
    """Mean local clustering over the symmetrized graph.

    ``sample_nodes`` restricts the average to a uniform node sample (exact
    triangle counting on every node is quadratic-ish in degree).
    """
    if graph.n == 0:
        return 0.0
    rng = as_generator(seed)
    neighbor_sets = _symmetrized_neighbor_sets(graph)
    if sample_nodes is not None and sample_nodes < graph.n:
        nodes = rng.choice(graph.n, size=sample_nodes, replace=False)
    else:
        nodes = np.arange(graph.n)
    total = 0.0
    counted = 0
    for v in nodes:
        neighbors = neighbor_sets[int(v)]
        degree = len(neighbors)
        if degree < 2:
            continue
        links = 0
        neighbor_list = list(neighbors)
        for i, a in enumerate(neighbor_list):
            links += sum(1 for b in neighbor_list[i + 1 :] if b in neighbor_sets[a])
        total += 2.0 * links / (degree * (degree - 1))
        counted += 1
    return total / counted if counted else 0.0


def hop_histogram(graph: DiGraph, source: int, max_hops: Optional[int] = None):
    """Number of nodes first reached at each hop distance from ``source``.

    Returns a list ``counts`` with ``counts[d]`` = nodes at distance ``d``
    (``counts[0] == 1``).  Probabilities are ignored (structural BFS).
    """
    if not 0 <= source < graph.n:
        raise NodeNotFoundError(source, graph.n)
    indptr, targets, _ = graph.out_csr
    visited = np.zeros(graph.n, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    counts = [1]
    while len(frontier):
        if max_hops is not None and len(counts) > max_hops:
            break
        positions = gather_csr_rows(indptr, frontier)
        candidates = targets[positions]
        fresh = np.unique(candidates[~visited[candidates]])
        if len(fresh) == 0:
            break
        visited[fresh] = True
        counts.append(int(len(fresh)))
        frontier = fresh
    return counts


def estimated_average_distance(
    graph: DiGraph, samples: int = 32, seed: RandomSource = None
) -> float:
    """Mean hop distance over sampled (source, reachable-node) pairs.

    Social networks are "small worlds": the stand-ins should land in the
    3-7 range like the SNAP originals.  Returns ``nan`` when no sampled
    source reaches anything.
    """
    if samples < 1:
        raise GraphError(f"samples must be >= 1, got {samples}")
    if graph.n == 0:
        return float("nan")
    rng = as_generator(seed)
    total = 0.0
    weight = 0
    for _ in range(samples):
        source = int(rng.integers(graph.n))
        counts = hop_histogram(graph, source)
        for distance, count in enumerate(counts[1:], start=1):
            total += distance * count
            weight += count
    return total / weight if weight else float("nan")


@dataclass(frozen=True)
class StructuralProfile:
    """One-call bundle of the shape metrics."""

    n: int
    m: int
    largest_scc: int
    reciprocity: float
    clustering: float
    average_distance: float


def structural_profile(
    graph: DiGraph,
    clustering_sample: int = 200,
    distance_samples: int = 16,
    seed: RandomSource = 0,
) -> StructuralProfile:
    """Compute the full structural profile (sampled where exactness is slow)."""
    return StructuralProfile(
        n=graph.n,
        m=graph.m,
        largest_scc=largest_scc_size(graph),
        reciprocity=reciprocity(graph),
        clustering=average_clustering_coefficient(
            graph, sample_nodes=clustering_sample, seed=seed
        ),
        average_distance=estimated_average_distance(
            graph, samples=distance_samples, seed=seed
        ),
    )


def _symmetrized_neighbor_sets(graph: DiGraph) -> list[set]:
    src, dst, _ = graph.edge_arrays()
    sets: list[set] = [set() for _ in range(graph.n)]
    for u, v in zip(src.tolist(), dst.tolist()):
        sets[u].add(v)
        sets[v].add(u)
    return sets
