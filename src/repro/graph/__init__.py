"""Graph substrate: CSR digraphs, builders, generators, IO, analysis."""

from repro.graph.digraph import DiGraph, nodes_reachable_from
from repro.graph.builder import GraphBuilder
from repro.graph.residual import ResidualGraph, initial_residual, shrink_residual
from repro.graph import analysis, generators, io, metrics, weighting

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "ResidualGraph",
    "initial_residual",
    "shrink_residual",
    "nodes_reachable_from",
    "analysis",
    "generators",
    "io",
    "metrics",
    "weighting",
]
