"""Edge-list IO.

The on-disk format is the plain whitespace-separated edge list used by SNAP
and most influence-maximization codebases::

    # optional comment lines
    <source> <target> [probability]

A missing probability column defaults to 1.0 (topology-only files, to be
weighted afterwards).  A compact binary round-trip via ``.npz`` is also
provided for large generated datasets.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    """Open a path as text, transparently gzipped for ``.gz`` suffixes.

    SNAP dumps ship as ``*.txt.gz``; accepting them directly saves the
    decompress-to-disk step on every dataset download.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_edge_list(graph: DiGraph, destination: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as a text edge list with probabilities.

    A ``.gz`` destination path is written gzip-compressed.
    """
    close = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = _open_text(destination, "w")
        close = True
    else:
        handle = destination
    try:
        handle.write(f"# nodes {graph.n} edges {graph.m}\n")
        for u, v, p in graph.edges():
            handle.write(f"{u} {v} {p:.10g}\n")
    finally:
        if close:
            handle.close()


def read_edge_list(
    source: Union[PathLike, TextIO],
    n: int = 0,
    default_probability: float = 1.0,
) -> DiGraph:
    """Parse a text edge list into a :class:`DiGraph`.

    Parameters
    ----------
    source:
        Path or open text handle.  A ``.gz`` path is read through gzip
        transparently (SNAP edge lists ship gzipped).
    n:
        Node count.  If 0, inferred as ``max endpoint + 1`` (or taken from a
        leading ``# nodes N edges M`` header when present).
    default_probability:
        Used for rows with only two columns.
    """
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = _open_text(source, "r")
        close = True
    else:
        handle = source
    sources = []
    targets = []
    probs = []
    header_n = 0
    try:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                header_n = max(header_n, _parse_header_n(line))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"line {line_no}: expected 'u v [p]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                p = float(parts[2]) if len(parts) == 3 else default_probability
            except ValueError as exc:
                raise GraphError(f"line {line_no}: unparseable edge {line!r}") from exc
            sources.append(u)
            targets.append(v)
            probs.append(p)
    finally:
        if close:
            handle.close()

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if n == 0:
        inferred = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if len(src) else 0
        n = max(header_n, inferred)
    return DiGraph.from_arrays(n, src, dst, np.asarray(probs, dtype=np.float64))


def _parse_header_n(line: str) -> int:
    """Extract N from a ``# nodes N edges M`` header; 0 if absent."""
    tokens = line.lstrip("#").split()
    for i, token in enumerate(tokens):
        if token == "nodes" and i + 1 < len(tokens):
            try:
                return int(tokens[i + 1])
            except ValueError:
                return 0
    return 0


def edge_list_to_string(graph: DiGraph) -> str:
    """Render the edge list format to a string (small graphs / tests)."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    return buffer.getvalue()


def save_npz(graph: DiGraph, path: PathLike) -> None:
    """Save a graph to a compressed ``.npz`` archive."""
    src, dst, probs = graph.edge_arrays()
    np.savez_compressed(
        path,
        n=np.asarray([graph.n], dtype=np.int64),
        sources=src,
        targets=dst,
        probabilities=probs,
    )


def load_npz(path: PathLike) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        required = {"n", "sources", "targets", "probabilities"}
        missing = required - set(data.files)
        if missing:
            raise GraphError(f"npz archive missing arrays: {sorted(missing)}")
        return DiGraph.from_arrays(
            int(data["n"][0]),
            data["sources"],
            data["targets"],
            data["probabilities"],
        )
