"""The shared-memory parallel runtime.

:class:`ParallelRuntime` owns the two resources every parallel path in the
library shares:

* a **persistent worker pool** — a ``spawn``-context
  :class:`~concurrent.futures.ProcessPoolExecutor` started lazily on the
  first parallel dispatch and reused for every subsequent fan-out (pool
  growth rounds, CRN sweeps, harness realizations alike), so process
  startup is paid once per runtime, not once per task;
* a **publication cache** — graphs and realization batches are packed into
  ``multiprocessing.shared_memory`` once (:mod:`repro.parallel.shm`) and
  addressed by picklable handles from then on; a small LRU keeps the
  per-round residual graphs of adaptive runs from accumulating segments.

``jobs=1`` is the degenerate runtime: :attr:`parallel` is False, no worker
processes or shared memory are ever created, and callers run the exact same
chunk functions in-process — the work decomposition (and therefore every
random draw) is identical for any worker count, which is what makes
``jobs=1`` the bit-exact reference for ``jobs=N``.

The runtime is a context manager; :meth:`close` (or garbage collection, or
interpreter exit — a :func:`weakref.finalize` hook covers both) shuts the
pool down and unlinks every published segment.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.parallel.shm import (
    GraphHandle,
    RealizationsHandle,
    SharedArrayBundle,
    share_graph,
    share_realizations,
)
from repro.utils.validation import check_positive_int

#: Published graphs kept mapped per runtime.  Two is the steady state of an
#: adaptive run (the round's residual plus the previous round's stragglers);
#: a little slack costs only address space.
_GRAPH_CACHE_SIZE = 4

#: Published realization batches kept mapped per runtime (the harness uses
#: one shared batch for a whole sweep).
_WORLDS_CACHE_SIZE = 2


def _release(state: dict) -> None:
    """Finalizer: tear down the executor and unlink every live segment.

    Leaves ``state`` with empty-but-present containers so that late calls
    on a closed runtime fail through the explicit closed checks rather
    than with a bare ``KeyError``.
    """
    executor = state.get("executor")
    state["executor"] = None
    if executor is not None:
        executor.shutdown(wait=True, cancel_futures=True)
    bundles = state.get("bundles") or {}
    state["bundles"] = {}
    for bundle in bundles.values():
        bundle.close()


class ParallelRuntime:
    """A persistent worker pool over a zero-copy shared graph.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` runs everything in-process (no pool, no shared
        memory) through the same chunked code route, so results are
        bit-identical to any ``jobs >= 2`` run with the same seed.
    """

    def __init__(self, jobs: int = 1):
        check_positive_int(jobs, "jobs")
        self.jobs = int(jobs)
        # Everything needing cleanup lives in _state so the finalizer can
        # reference it without keeping the runtime itself alive.
        self._state: dict = {"executor": None, "bundles": {}}
        self._graphs: "OrderedDict[int, tuple]" = OrderedDict()
        self._worlds: "OrderedDict[int, tuple]" = OrderedDict()
        self._closed = False
        self._finalizer = weakref.finalize(self, _release, self._state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether dispatches actually fan out to worker processes."""
        return self.jobs > 1

    def close(self) -> None:
        """Shut down the pool and unlink all shared segments (idempotent)."""
        self._closed = True
        self._graphs.clear()
        self._worlds.clear()
        self._finalizer()

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("parallel runtime is closed")

    def _executor(self):
        self._check_open()
        if self._state["executor"] is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            from repro.parallel.tasks import worker_initializer

            self._state["executor"] = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=worker_initializer,
            )
        return self._state["executor"]

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def _adopt(self, bundle: SharedArrayBundle) -> None:
        self._state["bundles"][id(bundle)] = bundle

    def _drop(self, bundle_id: int) -> None:
        bundle = self._state["bundles"].pop(bundle_id, None)
        if bundle is not None:
            bundle.close()

    def publish_graph(self, graph) -> GraphHandle:
        """Shared-memory handle for ``graph``, packed once and cached.

        The cache holds a strong reference to the graph, so ``id(graph)``
        cannot be recycled while its handle is alive; the oldest entries
        are unlinked once more than ``_GRAPH_CACHE_SIZE`` distinct graphs
        (per-round residuals, typically) have been published.
        """
        self._check_open()
        key = id(graph)
        cached = self._graphs.get(key)
        if cached is not None:
            self._graphs.move_to_end(key)
            return cached[1]
        bundle, handle = share_graph(graph)
        self._adopt(bundle)
        self._graphs[key] = (graph, handle, id(bundle))
        while len(self._graphs) > _GRAPH_CACHE_SIZE:
            _, (_, _, old_bundle_id) = self._graphs.popitem(last=False)
            self._drop(old_bundle_id)
        return handle

    def publish_arrays(self, arrays) -> Tuple:
        """Share a dict of arrays; returns ``(ArrayHandle, release)``.

        The generic escape hatch (the CRN evaluator publishes its stacked
        live-edge worlds through this).  Not cached — callers hold the
        handle for the lifetime of their fan-outs and call ``release()``
        when done; anything not released is unlinked at :meth:`close`.
        """
        from repro.parallel.shm import pack_arrays

        self._check_open()
        bundle = pack_arrays(arrays)
        self._adopt(bundle)
        bundle_id = id(bundle)
        return bundle.handle, lambda: self._drop(bundle_id)

    def publish_realizations(self, realizations: Sequence) -> RealizationsHandle:
        """Shared-memory handle for a homogeneous realization batch.

        Cached by the identity of ``realizations`` (with a strong
        reference, like :meth:`publish_graph`): the harness scores every
        algorithm and eta point against the *same* ground-truth worlds,
        so the ``count x m`` live-edge matrix is stacked and copied once
        per sweep, not once per fan-out.  Evicted / remaining segments
        are unlinked at eviction / :meth:`close`.
        """
        self._check_open()
        key = id(realizations)
        cached = self._worlds.get(key)
        if cached is not None:
            self._worlds.move_to_end(key)
            return cached[1]
        bundle, handle = share_realizations(realizations)
        self._adopt(bundle)
        self._worlds[key] = (realizations, handle, id(bundle))
        while len(self._worlds) > _WORLDS_CACHE_SIZE:
            _, (_, _, old_bundle_id) = self._worlds.popitem(last=False)
            self._drop(old_bundle_id)
        return handle

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def map_ordered(self, fn: Callable, payloads: Sequence[tuple]) -> List:
        """Run ``fn(*payload)`` for every payload, results in input order.

        With ``jobs=1`` this is a plain loop (same functions, same order);
        with workers it submits everything and gathers, so chunk results
        merge in their deterministic chunk order regardless of which
        worker finished first.
        """
        if not self.parallel:
            return [fn(*payload) for payload in payloads]
        executor = self._executor()
        futures = [executor.submit(fn, *payload) for payload in payloads]
        return [future.result() for future in futures]


def maybe_runtime(jobs: Optional[int]) -> Optional[ParallelRuntime]:
    """``None`` for the legacy in-process path, else a fresh runtime."""
    if jobs is None:
        return None
    return ParallelRuntime(jobs)
