"""The shared-memory parallel runtime.

:class:`ParallelRuntime` owns the two resources every parallel path in the
library shares:

* a **persistent worker pool** — a ``spawn``-context
  :class:`~concurrent.futures.ProcessPoolExecutor` started lazily on the
  first parallel dispatch and reused for every subsequent fan-out (pool
  growth rounds, CRN sweeps, harness realizations alike), so process
  startup is paid once per runtime, not once per task;
* a **publication cache** — graphs and realization batches are packed into
  ``multiprocessing.shared_memory`` once (:mod:`repro.parallel.shm`) and
  addressed by picklable handles from then on; a small LRU keeps the
  per-round residual graphs of adaptive runs from accumulating segments.

``jobs=1`` is the degenerate runtime: :attr:`parallel` is False, no worker
processes or shared memory are ever created, and callers run the exact same
chunk functions in-process — the work decomposition (and therefore every
random draw) is identical for any worker count, which is what makes
``jobs=1`` the bit-exact reference for ``jobs=N``.

Dispatch is **supervised** (:meth:`ParallelRuntime.map_ordered`): a frozen
:class:`FaultPolicy` bounds how long the supervisor waits on any chunk, how
often a transiently failing chunk is retried (exponential backoff), how
many times a broken or hung pool is rebuilt (republishing any shared
segment that went missing, under its original name, so in-flight handles
stay valid), and what happens when those budgets run out — raise a
:class:`~repro.errors.WorkerPoolError`, or *degrade*: run the surviving
chunks in-process.  Because every chunk's randomness is fixed by its
lifetime index (the chunk-indexed seeding invariant), a retried, rebuilt,
or degraded chunk produces exactly the bytes the clean ``jobs=1`` run
would — recovery never changes results, only where the work happens.

The runtime is a context manager; :meth:`close` (or garbage collection, or
interpreter exit — a :func:`weakref.finalize` hook covers both) shuts the
pool down (killing hung workers rather than joining them forever) and
unlinks every published segment.
"""

from __future__ import annotations

import contextlib
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from concurrent.futures import Future, ProcessPoolExecutor

    import numpy as np

    from repro.graph.digraph import DiGraph
    from repro.parallel.shm import ArrayHandle
    from repro.testing.faults import FaultInjection

from repro.errors import (
    ConfigurationError,
    TransientWorkerError,
    WorkerPoolError,
)
from repro.parallel.shm import (
    GraphHandle,
    RealizationsHandle,
    SharedArrayBundle,
    share_graph,
    share_realizations,
    sweep_orphans,
)
from repro.utils.timing import Deadline, backoff_sleep
from repro.utils.validation import (
    check_optional_positive_int,
    check_positive_float,
    check_positive_int,
)

#: Published graphs kept mapped per runtime.  Two is the steady state of an
#: adaptive run (the round's residual plus the previous round's stragglers);
#: a little slack costs only address space.
_GRAPH_CACHE_SIZE = 4

#: Published realization batches kept mapped per runtime (the harness uses
#: one shared batch for a whole sweep).
_WORLDS_CACHE_SIZE = 2

#: The two terminal behaviors once a chunk's recovery budgets are spent.
POOL_FAILURE_MODES = ("raise", "degrade")


@dataclass(frozen=True)
class FaultPolicy:
    """All supervision knobs for one runtime, frozen at construction.

    Parameters
    ----------
    chunk_timeout:
        Maximum seconds the supervisor waits on one chunk once it becomes
        the gather head (earlier chunks' waits never count against it);
        exceeding it declares the worker hung and triggers a pool rebuild.
        ``None`` (default) waits forever — the pre-supervision behavior.
    max_retries:
        In-place retries per chunk for transient failures
        (:class:`~repro.errors.TransientWorkerError`) before the terminal
        ``on_pool_failure`` behavior applies to it.
    backoff_base:
        First retry delay in seconds; attempt ``k`` waits
        ``backoff_base * 2**(k-1)``.
    max_rebuilds:
        Worker-pool rebuilds (after ``BrokenProcessPool`` or a chunk
        timeout) per dispatch before the terminal behavior applies.
    on_pool_failure:
        ``"degrade"`` (default) re-runs the surviving chunks in-process —
        bit-identical to ``jobs=1`` by the chunk-indexed seeding
        invariant; ``"raise"`` fails the dispatch with a
        :class:`~repro.errors.WorkerPoolError`.
    max_segment_bytes:
        Publication budget: a single shared-memory segment larger than
        this raises :class:`~repro.errors.ResourceError` before the OS is
        asked.  ``None`` checks only the shm filesystem's free space.
    """

    chunk_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    max_rebuilds: int = 2
    on_pool_failure: str = "degrade"
    max_segment_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_float(self.chunk_timeout, "chunk_timeout")
        if not isinstance(self.max_retries, int) or isinstance(self.max_retries, bool):
            raise ConfigurationError(
                f"max_retries must be an int, got {type(self.max_retries).__name__}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not isinstance(self.max_rebuilds, int) or isinstance(self.max_rebuilds, bool):
            raise ConfigurationError(
                f"max_rebuilds must be an int, got {type(self.max_rebuilds).__name__}"
            )
        if self.max_rebuilds < 0:
            raise ConfigurationError(
                f"max_rebuilds must be >= 0, got {self.max_rebuilds}"
            )
        if not self.backoff_base >= 0.0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.on_pool_failure not in POOL_FAILURE_MODES:
            raise ConfigurationError(
                f"on_pool_failure must be one of {POOL_FAILURE_MODES}, "
                f"got {self.on_pool_failure!r}"
            )
        check_optional_positive_int(self.max_segment_bytes, "max_segment_bytes")


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down even when workers are hung or already dead.

    ``shutdown(wait=True)`` alone joins worker processes — forever, if one
    of them is stuck in a chunk.  Cancel what is queued, kill whatever
    processes remain (SIGKILL: a hung worker ignores politeness), then let
    the executor's management machinery wind down.
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.kill()
    executor.shutdown(wait=True, cancel_futures=True)


def _release(state: dict[str, Any]) -> None:
    """Finalizer: tear down the executor and unlink every live segment.

    Leaves ``state`` with empty-but-present containers so that late calls
    on a closed runtime fail through the explicit closed checks rather
    than with a bare ``KeyError``.
    """
    executor = state.get("executor")
    state["executor"] = None
    if executor is not None:
        _shutdown_executor(executor)
    bundles = state.get("bundles") or {}
    state["bundles"] = {}
    for bundle in bundles.values():
        bundle.close()


class ParallelRuntime:
    """A persistent worker pool over a zero-copy shared graph.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` runs everything in-process (no pool, no shared
        memory) through the same chunked code route, so results are
        bit-identical to any ``jobs >= 2`` run with the same seed.
    fault_policy:
        Supervision knobs (:class:`FaultPolicy`); ``None`` uses the
        defaults (no timeout, 2 retries, 2 rebuilds, degrade).
    injection:
        A :class:`~repro.testing.faults.FaultInjection` spec wrapped
        around every worker-pool submission — test/benchmark chaos only;
        the in-process route and degraded re-runs are never injected.
    """

    def __init__(
        self,
        jobs: int = 1,
        fault_policy: Optional[FaultPolicy] = None,
        injection: Optional[FaultInjection] = None,
    ) -> None:
        check_positive_int(jobs, "jobs")
        if fault_policy is not None and not isinstance(fault_policy, FaultPolicy):
            raise ConfigurationError(
                f"fault_policy must be a FaultPolicy, "
                f"got {type(fault_policy).__name__}"
            )
        self.jobs = int(jobs)
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        self._injection = injection
        # Everything needing cleanup lives in _state so the finalizer can
        # reference it without keeping the runtime itself alive.
        self._state: dict[str, Any] = {"executor": None, "bundles": {}}
        self._graphs: OrderedDict[int, tuple[Any, GraphHandle, int]] = OrderedDict()
        self._worlds: OrderedDict[int, tuple[Any, RealizationsHandle, int]] = (
            OrderedDict()
        )
        self._closed = False
        self._chunks_dispatched = 0
        self._faults: dict[str, float] = {
            "retries": 0,
            "timeouts": 0,
            "rebuilds": 0,
            "republished_segments": 0,
            "degraded_chunks": 0,
            "recovered_seconds": 0.0,
            "swept_orphans": 0,
        }
        if self.jobs > 1:
            # Leak guard: reclaim segments orphaned by dead runs before
            # this run starts publishing its own (kill -9 mid-sweep, OOM).
            self._faults["swept_orphans"] = len(sweep_orphans())
        self._finalizer = weakref.finalize(self, _release, self._state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether dispatches actually fan out to worker processes."""
        return self.jobs > 1

    @property
    def fault_stats(self) -> dict[str, float]:
        """A copy of the supervisor's recovery counters.

        Keys: ``retries`` (transient chunk re-runs), ``timeouts`` (chunks
        declared hung), ``rebuilds`` (worker pools replaced),
        ``republished_segments`` (shared segments restored under their
        original names during rebuilds), ``degraded_chunks`` (chunks
        re-run in-process after budget exhaustion), ``recovered_seconds``
        (wall-clock spent inside recovery), ``swept_orphans`` (leaked
        segments of dead runs unlinked at runtime start).
        """
        return dict(self._faults)

    def close(self) -> None:
        """Shut down the pool and unlink all shared segments (idempotent)."""
        self._closed = True
        self._graphs.clear()
        self._worlds.clear()
        self._finalizer()

    def __enter__(self) -> ParallelRuntime:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("parallel runtime is closed")

    def _executor(self) -> ProcessPoolExecutor:
        self._check_open()
        if self._state["executor"] is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            from repro.parallel.tasks import worker_initializer

            self._state["executor"] = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=worker_initializer,
            )
        return self._state["executor"]

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def _adopt(self, bundle: SharedArrayBundle) -> None:
        self._state["bundles"][id(bundle)] = bundle

    def _drop(self, bundle_id: int) -> None:
        bundle = self._state["bundles"].pop(bundle_id, None)
        if bundle is not None:
            bundle.close()

    def publish_graph(self, graph: DiGraph) -> GraphHandle:
        """Shared-memory handle for ``graph``, packed once and cached.

        The cache holds a strong reference to the graph, so ``id(graph)``
        cannot be recycled while its handle is alive; the oldest entries
        are unlinked once more than ``_GRAPH_CACHE_SIZE`` distinct graphs
        (per-round residuals, typically) have been published.
        """
        self._check_open()
        key = id(graph)
        cached = self._graphs.get(key)
        if cached is not None:
            self._graphs.move_to_end(key)
            return cached[1]
        bundle, handle = share_graph(
            graph, max_bytes=self.fault_policy.max_segment_bytes
        )
        self._adopt(bundle)
        self._graphs[key] = (graph, handle, id(bundle))
        while len(self._graphs) > _GRAPH_CACHE_SIZE:
            _, (_, _, old_bundle_id) = self._graphs.popitem(last=False)
            self._drop(old_bundle_id)
        return handle

    def publish_arrays(
        self, arrays: Mapping[str, np.ndarray]
    ) -> tuple[ArrayHandle, Callable[[], None]]:
        """Share a dict of arrays; returns ``(ArrayHandle, release)``.

        The generic escape hatch (the CRN evaluator publishes its stacked
        live-edge worlds through this).  Not cached — callers hold the
        handle for the lifetime of their fan-outs and call ``release()``
        when done; anything not released is unlinked at :meth:`close`.
        Prefer :meth:`published` where the lifetime fits a ``with`` block:
        it cannot lose the release closure to an exception.
        """
        from repro.parallel.shm import pack_arrays

        self._check_open()
        bundle = pack_arrays(
            arrays, max_bytes=self.fault_policy.max_segment_bytes
        )
        self._adopt(bundle)
        bundle_id = id(bundle)
        return bundle.handle, lambda: self._drop(bundle_id)

    @contextlib.contextmanager
    def published(self, arrays: Mapping[str, np.ndarray]) -> Iterator[ArrayHandle]:
        """Context manager over :meth:`publish_arrays`.

        Yields the :class:`~repro.parallel.shm.ArrayHandle` and releases
        the segment on exit — including exceptional exit, which is the
        point: with the bare tuple API, an exception between publication
        and the caller stashing the release closure pins the segment until
        :meth:`close`.
        """
        handle, release = self.publish_arrays(arrays)
        try:
            yield handle
        finally:
            release()

    def publish_realizations(self, realizations: Sequence[Any]) -> RealizationsHandle:
        """Shared-memory handle for a homogeneous realization batch.

        Cached by the identity of ``realizations`` (with a strong
        reference, like :meth:`publish_graph`): the harness scores every
        algorithm and eta point against the *same* ground-truth worlds,
        so the ``count x m`` live-edge matrix is stacked and copied once
        per sweep, not once per fan-out.  Evicted / remaining segments
        are unlinked at eviction / :meth:`close`.
        """
        self._check_open()
        key = id(realizations)
        cached = self._worlds.get(key)
        if cached is not None:
            self._worlds.move_to_end(key)
            return cached[1]
        bundle, handle = share_realizations(
            realizations, max_bytes=self.fault_policy.max_segment_bytes
        )
        self._adopt(bundle)
        self._worlds[key] = (realizations, handle, id(bundle))
        while len(self._worlds) > _WORLDS_CACHE_SIZE:
            _, (_, _, old_bundle_id) = self._worlds.popitem(last=False)
            self._drop(old_bundle_id)
        return handle

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------

    def map_ordered(
        self, fn: Callable[..., Any], payloads: Sequence[tuple[Any, ...]]
    ) -> list[Any]:
        """Run ``fn(*payload)`` for every payload, results in input order.

        With ``jobs=1`` this is a plain loop (same functions, same order);
        with workers everything is submitted up front and gathered in
        order under the runtime's :class:`FaultPolicy` — transient chunk
        failures retry in place with backoff, a broken or hung pool is
        rebuilt (with missing shared segments republished under their
        original names), and once those budgets are spent the surviving
        chunks either run in-process (``on_pool_failure="degrade"``, the
        default — bit-identical by the chunk-indexed seeding invariant)
        or the dispatch raises a :class:`~repro.errors.WorkerPoolError`.
        Either way chunk results merge in their deterministic chunk order
        regardless of which worker (or process) finished first.
        """
        self._check_open()
        payloads = [tuple(payload) for payload in payloads]
        if not self.parallel:
            return [fn(*payload) for payload in payloads]
        return self._supervised_gather(fn, payloads)

    def _submit(
        self,
        executor: ProcessPoolExecutor,
        fn: Callable[..., Any],
        chunk_id: int,
        attempt: int,
        payload: tuple[Any, ...],
    ) -> Future[Any]:
        if self._injection is not None:
            from repro.testing.faults import run_with_injection

            return executor.submit(
                run_with_injection, self._injection, chunk_id, attempt, fn, payload
            )
        return executor.submit(fn, *payload)

    def _run_degraded(self, fn: Callable[..., Any], payload: tuple[Any, ...]) -> Any:
        """One chunk in-process: the graceful-degradation executor.

        The same function on the same payload the worker would have run —
        shared-memory handles attach fine in the parent (it owns the
        segments) — so by the chunk-indexed seeding invariant the result
        is byte-for-byte what the clean run produces.  Never injected:
        degraded execution is the reference, not the chaos.
        """
        self._faults["degraded_chunks"] += 1
        return fn(*payload)

    def _rebuild_pool(self) -> ProcessPoolExecutor:
        """Replace a broken/hung pool; republish any missing segments."""
        self._faults["rebuilds"] += 1
        executor = self._state["executor"]
        self._state["executor"] = None
        if executor is not None:
            _shutdown_executor(executor)
        restored = 0
        for bundle in self._state["bundles"].values():
            if not bundle.segment_exists():
                bundle.restore()
                restored += 1
        self._faults["republished_segments"] += restored
        return self._executor()

    def _terminal_failure(
        self,
        chunk_id: int,
        failure: str,
        attempts: int,
        error: Optional[BaseException] = None,
    ) -> None:
        """Budgets spent for a chunk: degrade from here on, or raise."""
        if self.fault_policy.on_pool_failure == "raise":
            raise WorkerPoolError(
                f"chunk {chunk_id} failed ({failure}) after {attempts} "
                f"attempt(s) and {self._faults['rebuilds']} pool rebuild(s); "
                f"fault policy on_pool_failure='raise' forbids degradation"
            ) from error
        # Degrade: the pool (possibly broken or hosting a hung worker) is
        # of no further use this dispatch — tear it down now so nothing
        # lingers; a later dispatch lazily builds a fresh one.
        executor = self._state["executor"]
        self._state["executor"] = None
        if executor is not None:
            _shutdown_executor(executor)

    def _supervised_gather(
        self, fn: Callable[..., Any], payloads: Sequence[tuple[Any, ...]]
    ) -> list[Any]:
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        policy = self.fault_policy
        count = len(payloads)
        first_id = self._chunks_dispatched
        self._chunks_dispatched += count
        chunk_ids = [first_id + i for i in range(count)]
        attempts = [0] * count
        results: list[Any] = [None] * count
        done = [False] * count
        degraded = False
        rebuilds_left = policy.max_rebuilds

        executor = self._executor()
        futures = [
            self._submit(executor, fn, chunk_ids[i], 0, payloads[i])
            for i in range(count)
        ]

        head = 0
        while head < count:
            if done[head]:
                head += 1
                continue
            if degraded:
                results[head] = self._run_degraded(fn, payloads[head])
                done[head] = True
                head += 1
                continue
            error: Optional[BaseException] = None
            # One Deadline per wait: the head chunk gets the policy's full
            # budget each attempt, measured on the same monotonic clock
            # the service layer's request deadlines use.
            wait = Deadline.after(policy.chunk_timeout)
            try:
                results[head] = futures[head].result(timeout=wait.remaining())
                done[head] = True
                head += 1
                continue
            except FuturesTimeout:
                failure = "timeout"
            except BrokenProcessPool as exc:
                failure = "broken pool"
                error = exc
            except TransientWorkerError as exc:
                failure = "transient failure"
                error = exc
            # Anything else — a deterministic chunk exception, or the
            # user's KeyboardInterrupt — propagates untouched; retrying
            # a genuine bug only hides it, and Ctrl-C means stop.

            recovery_started = time.perf_counter()
            try:
                if failure == "transient failure":
                    # The pool is healthy; retry just this chunk.
                    attempts[head] += 1
                    if attempts[head] > policy.max_retries:
                        self._terminal_failure(
                            chunk_ids[head], failure, attempts[head], error
                        )
                        degraded = True
                        continue
                    self._faults["retries"] += 1
                    backoff_sleep(policy.backoff_base, attempts[head])
                    futures[head] = self._submit(
                        executor, fn, chunk_ids[head], attempts[head],
                        payloads[head],
                    )
                    continue
                # Timeout or broken pool: the pool itself is suspect.
                if failure == "timeout":
                    self._faults["timeouts"] += 1
                # Chunks that finished before the pool died keep their
                # results; everything else reruns on the rebuilt pool.
                for j in range(head, count):
                    future = futures[j]
                    if done[j] or future is None or not future.done():
                        continue
                    if future.cancelled() or future.exception() is not None:
                        continue
                    results[j] = future.result()
                    done[j] = True
                if rebuilds_left <= 0:
                    self._terminal_failure(
                        chunk_ids[head], failure, attempts[head] + 1, error
                    )
                    degraded = True
                    continue
                rebuilds_left -= 1
                executor = self._rebuild_pool()
                for j in range(head, count):
                    if done[j]:
                        continue
                    # Every resubmitted chunk gets a fresh attempt number:
                    # the one that crashed must not replay its failure,
                    # and the innocent in-flight ones died with the pool.
                    attempts[j] += 1
                    futures[j] = self._submit(
                        executor, fn, chunk_ids[j], attempts[j], payloads[j]
                    )
            finally:
                self._faults["recovered_seconds"] = round(
                    float(self._faults["recovered_seconds"])
                    + (time.perf_counter() - recovery_started),
                    6,
                )
        return results


def maybe_runtime(jobs: Optional[int]) -> Optional[ParallelRuntime]:
    """``None`` for the legacy in-process path, else a fresh runtime."""
    if jobs is None:
        return None
    return ParallelRuntime(jobs)
