"""Shared-memory parallel runtime for the reproduction's hot paths.

The package has three layers:

* :mod:`repro.parallel.shm` — packing graphs and realization batches into
  ``multiprocessing.shared_memory`` and rebuilding zero-copy views in
  workers;
* :mod:`repro.parallel.runtime` — :class:`ParallelRuntime`, the persistent
  spawn-context worker pool plus publication cache that every parallel
  entry point shares;
* :mod:`repro.parallel.tasks` — the chunk kernels (reverse-sample chunks,
  CRN sweeps, harness realization shards) and their worker-side wrappers.

Entry points accept ``jobs``: ``None`` keeps the historical in-process
single-stream path, ``jobs >= 1`` switches to the chunk-seeded parallel
scheme whose results are bit-identical for every worker count (``jobs=1``
runs the chunks in-process with no pool).
"""

from repro.parallel.runtime import FaultPolicy, ParallelRuntime, maybe_runtime

__all__ = ["FaultPolicy", "ParallelRuntime", "maybe_runtime"]
