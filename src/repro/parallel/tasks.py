"""Work-unit kernels and their worker-process entry points.

Every parallel path in the library decomposes into chunks that are pure
functions of ``(shared arrays, small pickled payload, chunk seed)``:

* :func:`sample_chunk` — one engine call's worth of reverse samples
  (the unit :meth:`~repro.sampling.engine.BatchSampler.fill` fans out);
* :func:`crn_chunk` — one labeled forward sweep over a slice of the CRN
  evaluator's flattened candidate x world jobs;
* :func:`adaptive_shard` — a contiguous block of the harness's adaptive
  sessions, run through the round-synchronous batch engine;
* :func:`spread_shard` — non-adaptive evaluation of one fixed seed set on
  a block of ground-truth realizations.

Each kernel has a ``worker_*`` twin that first rebuilds its zero-copy
graph/realization views from the shared-memory handles
(:mod:`repro.parallel.shm`) and then calls the kernel — the in-process
``jobs=1`` route calls the kernels directly with live objects, so both
routes execute identical code on identical inputs.

Determinism: kernels that draw randomness receive an explicit
:class:`numpy.random.SeedSequence` for the chunk; nothing here touches
global RNG state, so a chunk's output depends only on its payload, never
on which worker (or how many workers) ran it.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.parallel.shm import (
    ArrayHandle,
    GraphHandle,
    RealizationsHandle,
    disable_shm_tracking,
    graph_from_handle,
    realizations_from_handle,
)

if TYPE_CHECKING:
    from repro.diffusion.base import DiffusionModel
    from repro.graph.digraph import DiGraph


def worker_initializer() -> None:  # pragma: no cover - runs in workers
    """Per-worker setup: attachments must not fight the resource tracker."""
    disable_shm_tracking()


# One pooled visitation bitset per worker process, grown on demand and
# restored to all-False by every BFS driver call (the same contract as the
# engines' in-process scratch).
_scratch: Optional[np.ndarray] = None


def _scratch_for(size: int) -> np.ndarray:
    global _scratch
    if _scratch is None or len(_scratch) < size:
        _scratch = np.zeros(size, dtype=bool)
    return _scratch


# ----------------------------------------------------------------------
# Reverse-sampling chunks (BatchSampler.fill fan-out)
# ----------------------------------------------------------------------

def sample_chunk(
    graph: DiGraph,
    model: DiffusionModel,
    roots: Any,
    count: int,
    seed_seq: np.random.SeedSequence,
    scratch: Optional[np.ndarray] = None,
    kernel: str = "auto",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``count`` reverse samples from the chunk's own stream.

    Returns the CSR-packed ``(members, indptr, root_counts)`` triple the
    parent merges straight into its
    :class:`~repro.sampling.coverage.CoverageIndex`.  ``kernel`` selects
    the per-level BFS backend; a chunk's output is bit-identical across
    backends (all randomness comes from the chunk's own generator).
    """
    rng = np.random.default_rng(seed_seq)
    root_ids, roots_indptr = roots.draw(rng, count)
    members, indptr = model.reverse_sample_batch(
        graph, root_ids, roots_indptr, rng, scratch, kernel=kernel
    )
    # Members are node ids < n: ship them at the graph's (compact) index
    # width, halving the pickled result payload on int32-eligible graphs.
    return members.astype(graph.index_dtype, copy=False), indptr, np.diff(roots_indptr)


def worker_sample_chunk(
    graph_handle: GraphHandle,
    model: DiffusionModel,
    roots: Any,
    count: int,
    seed_seq: np.random.SeedSequence,
    kernel: str = "auto",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    graph = graph_from_handle(graph_handle)
    return sample_chunk(
        graph, model, roots, count, seed_seq, _scratch_for(count * graph.n),
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# CRN evaluation chunks (CRNSpreadEvaluator.spread_matrix fan-out)
# ----------------------------------------------------------------------

def worker_crn_chunk(
    graph_handle: GraphHandle,
    kind: str,
    worlds_handle: ArrayHandle,
    sets_block: list[np.ndarray],
    world_ids: np.ndarray,
    kernel: str = "auto",
) -> np.ndarray:
    from repro.diffusion.montecarlo import crn_chunk
    from repro.parallel.shm import attach_arrays

    graph = graph_from_handle(graph_handle)
    worlds = attach_arrays(worlds_handle)["worlds"]
    return crn_chunk(
        graph,
        kind,
        worlds,
        sets_block,
        world_ids,
        _scratch_for(len(world_ids) * graph.n),
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Harness shards (independent realizations fan-out)
# ----------------------------------------------------------------------

def adaptive_shard(
    graph: DiGraph,
    realizations: Sequence[Any],
    algorithm_spec: dict[str, Any],
    eta: int,
    seed_seqs: Sequence[np.random.SeedSequence],
) -> list[tuple[int, int, float, tuple[int, ...]]]:
    """Run one algorithm over a block of ground-truth realizations.

    ``algorithm_spec`` holds :func:`repro.experiments.harness
    .build_algorithm` keyword arguments; each session gets the generator
    spawned from its own per-realization seed sequence, so shard
    boundaries never shift any session's stream.  Returns the
    per-realization ``(seed_count, spread, seconds, marginal_spreads)``
    tuples the harness folds into its outcome records.
    """
    from repro.experiments.harness import build_algorithm

    algorithm = build_algorithm(**algorithm_spec)
    streams = [np.random.default_rng(seq) for seq in seed_seqs]
    if hasattr(algorithm, "run_batch"):
        results = algorithm.run_batch(graph, eta, list(realizations), seeds=streams)
    else:  # pragma: no cover - every adaptive roster entry has run_batch
        results = [
            algorithm.run(graph, eta, realization=phi, seed=rng)
            for phi, rng in zip(realizations, streams)
        ]
    return [
        (
            result.seed_count,
            result.spread,
            result.seconds,
            tuple(result.marginal_spreads),
        )
        for result in results
    ]


def worker_adaptive_shard(
    graph_handle: GraphHandle,
    worlds_handle: RealizationsHandle,
    indices: Sequence[int],
    algorithm_spec: dict[str, Any],
    eta: int,
    seed_seqs: Sequence[np.random.SeedSequence],
) -> list[tuple[int, int, float, tuple[int, ...]]]:
    graph = graph_from_handle(graph_handle)
    realizations = realizations_from_handle(graph, worlds_handle, indices)
    return adaptive_shard(graph, realizations, algorithm_spec, eta, seed_seqs)


def spread_shard(
    realizations: Sequence[Any], seeds: Sequence[int]
) -> list[int]:
    """Realized spread of one fixed seed set on each realization."""
    return [int(phi.spread(seeds)) for phi in realizations]


def worker_spread_shard(
    graph_handle: GraphHandle,
    worlds_handle: RealizationsHandle,
    indices: Sequence[int],
    seeds: Sequence[int],
) -> list[int]:
    graph = graph_from_handle(graph_handle)
    realizations = realizations_from_handle(graph, worlds_handle, indices)
    return spread_shard(realizations, seeds)
