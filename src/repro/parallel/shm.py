"""Zero-copy shared-memory transport for the parallel runtime.

Worker processes must see the graph's CSR arrays (and, for the harness and
the CRN evaluator, the stacked live-edge arrays of the shared realizations)
without pickling megabytes per task.  This module packs a named set of
NumPy arrays into **one** ``multiprocessing.shared_memory`` block on the
parent side and reconstructs read-only views on the worker side:

* :func:`pack_arrays` copies the arrays into a fresh segment once and
  returns a :class:`SharedArrayBundle` (the owner, responsible for
  ``unlink``) whose picklable :class:`ArrayHandle` travels inside task
  payloads;
* :func:`attach_arrays` maps the segment in the worker and rebuilds the
  views — no copy, every worker shares the parent's physical pages.

On top of the generic bundle sit the two domain packings: a whole
:class:`~repro.graph.digraph.DiGraph` (:func:`share_graph` /
:func:`graph_from_handle`) and a homogeneous list of IC/LT realizations
(:func:`share_realizations` / :func:`realizations_from_handle`).

Worker-side attachments are cached per segment name (tasks of one fill or
sweep all reference the same segment) with a small LRU so per-round
residual graphs do not accumulate mappings forever.  Ownership is strictly
parent-side: workers never register attachments with the resource tracker
(see :func:`attach_shared_memory`), the parent unlinks when the runtime
closes or evicts.

Segments carry **generation-tagged names** minted by
:func:`next_segment_name` (``reproshm-{pid}-{token}-g{generation}``), so
that (a) a leaked segment is attributable to the run that created it —
:func:`sweep_orphans` unlinks segments whose creating process is dead —
and (b) a segment lost mid-run can be *restored* under its original name
(:meth:`SharedArrayBundle.restore`), which keeps every handle already
baked into dispatched task payloads valid across a worker-pool rebuild.
"""

from __future__ import annotations

import itertools
import os
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.diffusion.realization import (
    ICRealization,
    LTRealization,
    Realization,
)
from repro.errors import ConfigurationError, ResourceError
from repro.graph.digraph import DiGraph

#: Worker-side attachment cache capacity (segments, not bytes).  Adaptive
#: runs publish one residual graph per round; keeping a handful of recent
#: segments mapped covers the in-flight round plus stragglers.
_ATTACH_CACHE_SIZE = 8

#: Prefix of every segment this library creates; the orphan sweeper only
#: ever considers names carrying it, so foreign segments are untouchable.
SEGMENT_PREFIX = "reproshm"

#: Where POSIX shared memory is visible as a filesystem (Linux).  On
#: platforms without it the sweeper and the free-space budget check turn
#: into no-ops — segment creation still works, it just fails the OS way.
_SHM_DIR = "/dev/shm"

#: Random per-process token: two runs under a recycled pid can never mint
#: colliding names, and a restored segment keeps its original identity.
_RUN_TOKEN = secrets.token_hex(4)

_generation = itertools.count()


def next_segment_name() -> str:
    """Mint a fresh generation-tagged segment name for this process."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{_RUN_TOKEN}-g{next(_generation)}"


def _segment_pid(name: str) -> Optional[int]:
    """The creating pid encoded in a registry-format name, else ``None``."""
    parts = name.split("-")
    if len(parts) != 4 or parts[0] != SEGMENT_PREFIX:
        return None
    if not (parts[3].startswith("g") and parts[3][1:].isdigit()):
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


def sweep_orphans(shm_dir: str = _SHM_DIR) -> list[str]:
    """Unlink leaked segments of dead runs; returns the names removed.

    A crash between publication and the runtime finalizer (``kill -9``,
    OOM) leaves segments behind that no live process will ever unlink.
    Because every name carries its creating pid, the sweep is safe by
    construction: only ``reproshm-*`` names whose pid no longer exists are
    touched — segments of this process and of every live sibling survive.
    Best-effort and Linux-shaped (``/dev/shm``); elsewhere it is a no-op.
    """
    removed: list[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    own = os.getpid()
    for name in names:
        pid = _segment_pid(name)
        if pid is None or pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:  # pragma: no cover - raced by another sweeper
            continue
        removed.append(name)
    return removed


def _available_shm_bytes(shm_dir: str = _SHM_DIR) -> Optional[int]:
    """Free bytes on the shm filesystem, or ``None`` where unknowable."""
    try:
        stats = os.statvfs(shm_dir)
    except (OSError, AttributeError):
        return None
    return stats.f_bavail * stats.f_frsize


@dataclass(frozen=True)
class ArrayHandle:
    """Picklable descriptor of arrays packed in one shared-memory segment.

    ``specs`` maps each array name to ``(offset, shape, dtype_str)`` inside
    the segment called ``shm_name``.
    """

    shm_name: str
    specs: tuple[tuple[str, int, tuple[int, ...], str], ...]


class SharedArrayBundle:
    """Parent-side owner of one packed shared-memory segment.

    Keeps *references* to the source arrays (no extra copies — they are
    the caller's live arrays) so that :meth:`restore` can recreate the
    segment **under its original name** if it goes missing mid-run: task
    payloads carry the name, so restoration makes every already-dispatched
    handle valid again after a worker-pool rebuild.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: ArrayHandle,
        sources: Sequence[np.ndarray] = (),
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._sources = tuple(sources)
        self._released = False

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def name(self) -> str:
        return self.handle.shm_name

    def segment_exists(self) -> bool:
        """Whether the *named* segment still exists for workers to attach.

        The parent's own mapping stays valid even after an unlink, so this
        probes the name — the thing task payloads reference — not the map.
        """
        path = os.path.join(_SHM_DIR, self.handle.shm_name)
        if os.path.isdir(_SHM_DIR):
            return os.path.exists(path)
        try:  # pragma: no cover - non-Linux fallback probe
            probe = attach_shared_memory(self.handle.shm_name)
        except FileNotFoundError:  # pragma: no cover
            return False
        probe.close()  # pragma: no cover
        return True  # pragma: no cover

    def restore(self) -> None:
        """Recreate a missing segment under its original name and refill it.

        Called by the runtime's pool-rebuild path when a published segment
        was lost (leaked past an unlink, swept by mistake, tmpfs purge).
        No-op if the bundle was deliberately released or the segment is
        still present.
        """
        if self._released or self.segment_exists():
            return
        self._shm.close()  # drop the stale mapping; the file is gone
        shm = shared_memory.SharedMemory(
            create=True, name=self.handle.shm_name, size=max(self.nbytes, 1)
        )
        for (_name, start, shape, dtype), source in zip(
            self.handle.specs, self._sources
        ):
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
            view[...] = source
        self._shm = shm

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._released:
            return
        self._released = True
        self._sources = ()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def validate_publication(
    nbytes: int, max_bytes: Optional[int] = None
) -> None:
    """Publish-time budget check with a clear error, run before the OS.

    Raises :class:`~repro.errors.ResourceError` when a requested segment
    exceeds the caller's explicit ``max_bytes`` budget or the space left on
    the shm filesystem — the two ways ``SharedMemory(create=True)`` would
    otherwise fail opaquely (``OSError: [Errno 28]`` mid-copy, or a SIGBUS
    on first touch of an overcommitted mapping).
    """
    if max_bytes is not None and nbytes > max_bytes:
        raise ResourceError(
            f"shared-memory publication of {nbytes} bytes exceeds the "
            f"configured segment budget of {max_bytes} bytes"
        )
    available = _available_shm_bytes()
    if available is not None and nbytes > available:
        raise ResourceError(
            f"shared-memory publication of {nbytes} bytes exceeds the "
            f"{available} bytes available on {_SHM_DIR}"
        )


def pack_arrays(
    arrays: dict[str, np.ndarray], max_bytes: Optional[int] = None
) -> SharedArrayBundle:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Arrays are laid out back to back at 64-byte-aligned offsets; the copy
    happens exactly once here, after which any number of workers map the
    same pages read-only.  The segment gets a generation-tagged registry
    name (:func:`next_segment_name`) and its size is validated against
    ``max_bytes`` / the shm filesystem budget first
    (:func:`validate_publication`).
    """
    if not arrays:
        raise ConfigurationError("cannot pack an empty array set")
    specs: list[tuple[str, int, tuple[int, ...], str]] = []
    sources: list[np.ndarray] = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = (offset + 63) & ~63  # keep every array cache-line aligned
        specs.append((name, offset, tuple(array.shape), array.dtype.str))
        sources.append(array)
        offset += array.nbytes
    validate_publication(max(offset, 1), max_bytes)
    shm = shared_memory.SharedMemory(
        create=True, name=next_segment_name(), size=max(offset, 1)
    )
    for (_name, start, shape, dtype), source in zip(specs, sources):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
        view[...] = source
    return SharedArrayBundle(shm, ArrayHandle(shm.name, tuple(specs)), sources)


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    Python 3.13+ supports ``track=False`` directly; on older versions the
    worker initializer (:func:`disable_shm_tracking`) has already patched
    the resource tracker so the attach does not get registered — either
    way only the parent, which created the segment, ever unlinks it.
    """
    try:
        return shared_memory.SharedMemory(  # type: ignore[call-arg]
            name=name, track=False
        )
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting attachments.

    Run in every worker before the first attach.  Without it, Python < 3.13
    registers attached segments with the (shared) resource tracker, which
    then double-unlinks when the parent cleans up and spews KeyError
    tracebacks at shutdown.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:  # pragma: no cover - workers
        if rtype == "shared_memory":
            return None
        return original(name, rtype)

    resource_tracker.register = register  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Worker-side attachment cache
# ----------------------------------------------------------------------

_attached: OrderedDict[str, tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]] = (
    OrderedDict()
)


def attach_arrays(handle: ArrayHandle) -> dict[str, np.ndarray]:
    """Views onto the arrays of ``handle``'s segment (cached per segment)."""
    cached = _attached.get(handle.shm_name)
    if cached is not None:
        _attached.move_to_end(handle.shm_name)
        return cached[1]
    shm = attach_shared_memory(handle.shm_name)
    views = {
        name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        for name, offset, shape, dtype in handle.specs
    }
    # The descriptor is only needed to create the mapping; closing it now
    # (instead of via SharedMemory.close) lets cache eviction simply drop
    # the entry below — the mapping itself stays alive for as long as any
    # NumPy view references it and is reclaimed by GC afterwards, so a
    # kernel holding views across an eviction can never hit a forced
    # unmap (SharedMemory.close unmaps even under live views).
    try:
        import os

        os.close(shm._fd)  # type: ignore[attr-defined]
        shm._fd = -1  # type: ignore[attr-defined]
    except (OSError, AttributeError):  # pragma: no cover - non-POSIX
        pass
    _attached[handle.shm_name] = (shm, views)
    while len(_attached) > _ATTACH_CACHE_SIZE:
        _attached.popitem(last=False)
    return views


# ----------------------------------------------------------------------
# Domain packings: graphs and realization batches
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GraphHandle:
    """Picklable reference to a shared-memory-resident :class:`DiGraph`."""

    n: int
    arrays: ArrayHandle


def share_graph(
    graph: DiGraph, max_bytes: Optional[int] = None
) -> tuple[SharedArrayBundle, GraphHandle]:
    """Pack a graph's six CSR arrays into one shared segment."""
    out_indptr, out_targets, out_probs = graph.out_csr
    in_indptr, in_sources, in_probs = graph.in_csr
    bundle = pack_arrays(
        {
            "out_indptr": out_indptr,
            "out_targets": out_targets,
            "out_probs": out_probs,
            "in_indptr": in_indptr,
            "in_sources": in_sources,
            "in_probs": in_probs,
        },
        max_bytes=max_bytes,
    )
    return bundle, GraphHandle(graph.n, bundle.handle)


def graph_from_handle(handle: GraphHandle) -> DiGraph:
    """Rebuild a zero-copy :class:`DiGraph` over the shared CSR arrays."""
    views = attach_arrays(handle.arrays)
    return DiGraph(
        handle.n,
        views["out_indptr"],
        views["out_targets"],
        views["out_probs"],
        views["in_indptr"],
        views["in_sources"],
        views["in_probs"],
    )


@dataclass(frozen=True)
class RealizationsHandle:
    """Picklable reference to a homogeneous batch of shared realizations.

    ``kind`` is ``"ic"`` (stacked per-realization live-edge flags, shape
    ``(count, m)``) or ``"lt"`` (stacked chosen in-edge sources, shape
    ``(count, n)``).
    """

    kind: str
    count: int
    arrays: ArrayHandle


def realizations_shareable(realizations: Sequence[Realization]) -> bool:
    """Whether the batch is homogeneous IC or LT (stackable into one array)."""
    if not realizations:
        return False
    first = type(realizations[0])
    if first not in (ICRealization, LTRealization):
        return False
    return all(type(phi) is first for phi in realizations)


def share_realizations(
    realizations: Sequence[Realization], max_bytes: Optional[int] = None
) -> tuple[SharedArrayBundle, RealizationsHandle]:
    """Stack a homogeneous IC/LT realization batch into shared memory."""
    if not realizations_shareable(realizations):
        raise ConfigurationError(
            "only homogeneous IC or LT realization batches can be shared"
        )
    if isinstance(realizations[0], ICRealization):
        kind = "ic"
        worlds = np.stack([phi.live_edges for phi in realizations])
    else:
        kind = "lt"
        worlds = np.stack([phi.chosen_source for phi in realizations])
    bundle = pack_arrays({"worlds": worlds}, max_bytes=max_bytes)
    return bundle, RealizationsHandle(kind, len(realizations), bundle.handle)


def realizations_from_handle(
    graph: DiGraph, handle: RealizationsHandle, indices: Sequence[int]
) -> list[Realization]:
    """Rebuild the realizations at ``indices`` as views over shared rows."""
    worlds = attach_arrays(handle.arrays)["worlds"]
    if handle.kind == "ic":
        return [ICRealization(graph, worlds[i]) for i in indices]
    return [LTRealization(graph, worlds[i]) for i in indices]
