"""Argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` with a uniform message
format so user-facing errors read consistently across the library.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_probability(value: float, name: str, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a probability in ``(0, 1]`` (or ``[0, 1]``)."""
    value = float(value)
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        interval = "[0, 1]" if allow_zero else "(0, 1]"
        raise ConfigurationError(f"{name} must lie in {interval}, got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies strictly inside ``(0, 1)``.

    Used for the accuracy parameter ``epsilon`` of TRIM/TRIM-B, which the
    paper requires to be in ``(0, 1)``.
    """
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ConfigurationError(f"{name} must lie in the open interval (0, 1), got {value}")
    return value


def check_optional_positive_int(value: Optional[int], name: str) -> Optional[int]:
    """Validate an optional integer knob: ``None`` passes, else ``>= 1``.

    The shared validator behind every engine-policy knob that may be left
    unset (``mc_batch_size``, ``jobs``, ``max_samples``): the CLI, the
    experiment config, and the execution context all funnel through here so
    a bad value produces the same message no matter which layer catches it.
    """
    if value is None:
        return None
    return check_positive_int(value, name)


def check_jobs(value: Optional[int], name: str = "jobs") -> Optional[int]:
    """Validate a worker-count knob (``None`` = no parallel runtime)."""
    return check_optional_positive_int(value, name)


def check_positive_float(value: Optional[float], name: str) -> Optional[float]:
    """Validate an optional strictly positive float (tolerances)."""
    if value is None:
        return None
    value = float(value)
    if not value > 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_range(
    value: int,
    name: str,
    low: int,
    high: Optional[int] = None,
) -> int:
    """Validate ``low <= value <= high`` (``high=None`` means unbounded)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < low or (high is not None and value > high):
        bound = f"[{low}, {high}]" if high is not None else f"[{low}, inf)"
        raise ConfigurationError(f"{name} must lie in {bound}, got {value}")
    return value
