"""Shared utilities: RNG management, validation helpers, timing, statistics."""

from repro.utils.rng import RandomSource, as_generator, spawn_generators
from repro.utils.timing import Stopwatch, format_seconds
from repro.utils.stats import (
    SummaryStats,
    mean_confidence_interval,
    summarize,
)
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    check_range,
)

__all__ = [
    "RandomSource",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "format_seconds",
    "SummaryStats",
    "mean_confidence_interval",
    "summarize",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "check_range",
]
