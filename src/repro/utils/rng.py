"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (shared stream).  :func:`as_generator`
normalizes all three into a ``Generator``; :func:`spawn_generators` derives
independent child streams for parallel or per-realization use, following
NumPy's recommended ``SeedSequence.spawn`` pattern.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigurationError

# The public alias used in signatures throughout the library.
RandomSource = Union[None, int, np.random.Generator]


def as_generator(seed: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (so a caller can
        thread one stream through many components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(
    seed: RandomSource, count: int
) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence`.

    The picklable half of :func:`spawn_generators`: the parallel runtime
    ships these to worker processes, which build their generators locally,
    so a work unit's stream depends only on its global index — never on
    which worker (or how many workers) ran it.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's own bit generator seed sequence.
        seq = getattr(seed.bit_generator, "seed_seq", None)
        if seq is None or not hasattr(seq, "spawn"):
            raise ConfigurationError(
                "cannot spawn child generators: the provided Generator's bit "
                "generator exposes no SeedSequence (bit_generator.seed_seq); "
                "pass an int seed or a Generator built with "
                "numpy.random.default_rng instead"
            )
        return list(seq.spawn(count))
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_generators(seed: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by the experiment harness to give each sampled realization its own
    stream, so adding or removing realizations does not perturb the others.
    """
    return [np.random.default_rng(s) for s in spawn_seed_sequences(seed, count)]


def random_subset(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(n)`` uniformly at random.

    Thin wrapper over ``Generator.choice`` without replacement; kept as a
    named function because mRR-set root selection is on the hot path and the
    call site reads better as ``random_subset(rng, n, k)``.
    """
    if k > n:
        raise ValueError(f"cannot sample {k} distinct values from range({n})")
    return rng.choice(n, size=k, replace=False)
