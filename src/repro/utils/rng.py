"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (shared stream).  :func:`as_generator`
normalizes all three into a ``Generator``; :func:`spawn_generators` derives
independent child streams for parallel or per-realization use, following
NumPy's recommended ``SeedSequence.spawn`` pattern.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

# The public alias used in signatures throughout the library.
RandomSource = Union[None, int, np.random.Generator]


def as_generator(seed: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (so a caller can
        thread one stream through many components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomSource, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by the experiment harness to give each sampled realization its own
    stream, so adding or removing realizations does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's own bit generator seed sequence.
        seq = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
        return [np.random.default_rng(s) for s in seq]
    seq = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(s) for s in seq]


def random_subset(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(n)`` uniformly at random.

    Thin wrapper over ``Generator.choice`` without replacement; kept as a
    named function because mRR-set root selection is on the hot path and the
    call site reads better as ``random_subset(rng, n, k)``.
    """
    if k > n:
        raise ValueError(f"cannot sample {k} distinct values from range({n})")
    return rng.choice(n, size=k, replace=False)
