"""Lightweight wall-clock timing used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Accumulating stopwatch.

    Can be used either as a context manager around a region::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)

    or via explicit :meth:`start` / :meth:`stop` calls.  Multiple runs
    accumulate, which is what the per-round timing in the harness needs.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running span)."""
        total = self._elapsed
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def start(self) -> Stopwatch:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> Stopwatch:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def format_seconds(seconds: float) -> str:
    """Render a duration compactly: ``950ms``, ``12.3s``, ``4m02s``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
