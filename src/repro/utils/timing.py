"""Wall-clock timing shared by the harness, the runtime, and the service.

Three tools live here, all on one clock:

* :class:`Stopwatch` — accumulating ``perf_counter`` spans (harness);
* :class:`Deadline` — a monotonic point in time that the parallel
  supervisor's chunk-timeout waits and the service layer's per-request
  deadlines both measure against, so "how long may this still take" is
  computed the same way everywhere;
* :func:`backoff_sleep` — the **only** sanctioned blocking sleep in the
  library (lint rule REP007 exempts this module): the supervisor's
  exponential retry backoff routes through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


class Stopwatch:
    """Accumulating stopwatch.

    Can be used either as a context manager around a region::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)

    or via explicit :meth:`start` / :meth:`stop` calls.  Multiple runs
    accumulate, which is what the per-round timing in the harness needs.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running span)."""
        total = self._elapsed
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def start(self) -> Stopwatch:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> Stopwatch:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass(frozen=True)
class Deadline:
    """A point on the monotonic clock that work must finish by.

    Built with :meth:`after`; ``Deadline.after(None)`` is the unbounded
    deadline (never expires, :meth:`remaining` returns ``None`` — exactly
    what ``Future.result(timeout=None)`` and ``asyncio.wait_for(...,
    timeout=None)`` expect), so callers need no ``if timeout is None``
    branches.  Frozen: a deadline is a fact about the past ("this request
    was admitted at T with budget B"), not a mutable timer.
    """

    #: Absolute ``time.monotonic()`` expiry, or ``None`` for unbounded.
    expires_at: Optional[float]

    @classmethod
    def after(cls, seconds: Optional[float]) -> Deadline:
        """The deadline ``seconds`` from now; ``None`` never expires."""
        if seconds is None:
            return cls(expires_at=None)
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise ConfigurationError(
                f"deadline seconds must be a number or None, "
                f"got {type(seconds).__name__}"
            )
        if seconds < 0:
            raise ConfigurationError(
                f"deadline seconds must be >= 0, got {seconds}"
            )
        return cls(expires_at=time.monotonic() + float(seconds))

    @property
    def unbounded(self) -> bool:
        return self.expires_at is None

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0), or ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed (never, when unbounded)."""
        if self.expires_at is None:
            return False
        return time.monotonic() >= self.expires_at


def backoff_sleep(base: float, attempt: int) -> float:
    """Block for the exponential-backoff delay of retry ``attempt``.

    Attempt ``k`` (1-based) sleeps ``base * 2**(k-1)`` seconds; a zero
    ``base`` returns immediately.  Returns the delay actually slept.  This
    is the library's one sanctioned blocking sleep (REP007): retry loops
    call it instead of ``time.sleep`` so every deliberate delay is
    greppable, and async code must never call it (await
    ``asyncio.sleep`` instead).
    """
    if not base >= 0.0:
        raise ConfigurationError(f"backoff base must be >= 0, got {base}")
    if not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 1:
        raise ConfigurationError(
            f"backoff attempt must be an int >= 1, got {attempt!r}"
        )
    delay = base * 2 ** (attempt - 1)
    if delay > 0.0:
        time.sleep(delay)
    return delay


def format_seconds(seconds: float) -> str:
    """Render a duration compactly: ``950ms``, ``12.3s``, ``4m02s``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
