"""Summary statistics for experiment results.

The paper reports averages over 20 sampled realizations; these helpers
compute the mean, spread, and a normal-approximation confidence interval for
such small samples without pulling in SciPy on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Mean/min/max/std summary of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarize a non-empty sequence of numbers."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sequence")
    arr = np.asarray(values, dtype=np.float64)
    # ddof=1 (sample std) when we have more than one observation.
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` via a normal approximation.

    For the 20-realization samples used throughout the experiments a normal
    interval is adequate; callers that need exactness should bootstrap.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    stats = summarize(values)
    if stats.count == 1:
        return stats.mean, stats.mean, stats.mean
    # Two-sided z quantile: invert the error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half_width = z * stats.std / math.sqrt(stats.count)
    return stats.mean, stats.mean - half_width, stats.mean + half_width


def _erfinv(y: float) -> float:
    """Inverse error function via Newton refinement of a rational seed.

    Accurate to ~1e-12 over (-1, 1), which is far more than the reporting
    code needs; implemented locally to keep SciPy out of core dependencies.
    """
    if not -1.0 < y < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1), got {y}")
    if y == 0.0:
        return 0.0
    # Winitzki's approximation as the starting point.
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = math.copysign(math.sqrt(math.sqrt(first * first - ln_term / a) - first), y)
    # Two Newton steps: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2).
    for _ in range(2):
        err = math.erf(x) - y
        x -= err * math.sqrt(math.pi) / 2.0 * math.exp(x * x)
    return x
