"""CELF: lazy-greedy Monte-Carlo influence maximization (Leskovec 2007).

The classic pre-RR-set algorithm, included as the historical reference
implementation the RR-based stack is measured against (the paper's related
work, Section 5, traces the lineage from the Kempe et al. greedy through
CELF to reverse influence sampling).

Two entry points:

* :func:`celf_influence_maximization` — pick ``k`` seeds maximizing the
  Monte-Carlo estimated spread with lazy marginal-gain re-evaluation;
* :func:`celf_seed_minimization` — keep adding CELF seeds until the
  estimated spread reaches ``eta`` (a simple non-adaptive seed-minimization
  baseline that is *much* slower than ATEUC but needs no sampling theory).

Lazy evaluation exploits submodularity: a node's marginal gain can only
shrink as the seed set grows, so a stale upper bound that is already below
the current best pick can be skipped without re-simulation.

Spread estimation runs on the common-random-numbers evaluator by default
(``crn=True``): one shared batch of ``samples`` realizations is drawn up
front, the ``n``-singleton initial pass is a handful of batched labeled
forward sweeps, and every lazy re-evaluation scores against the *same*
worlds — so gain comparisons in the queue see identical noise and a run is
a deterministic function of ``(graph, model, samples, seed)``.  Pass
``crn=False`` for the historical per-cascade loop with fresh noise per
estimate (kept as the benchmark/regression reference; its lazy queue mixes
estimates from different draws, so repeated runs can return different seed
sets).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.diffusion.base import DiffusionModel
from repro.diffusion.montecarlo import (
    DEFAULT_MC_BATCH_SIZE,
    CRNSpreadEvaluator,
    estimate_spread,
)
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.utils.rng import RandomSource, as_generator
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CelfResult:
    """Outcome of a CELF run."""

    seeds: list[int]
    estimated_spread: float
    simulations_run: int
    lazy_skips: int          # re-evaluations avoided by lazy evaluation

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


class _LazyQueue:
    """Max-heap of (stale gain, node, round stamp) entries."""

    def __init__(self) -> None:
        self._heap: list = []

    def push(self, gain: float, node: int, stamp: int) -> None:
        heapq.heappush(self._heap, (-gain, node, stamp))

    def pop(self):
        gain, node, stamp = heapq.heappop(self._heap)
        return -gain, node, stamp

    def __len__(self) -> int:
        return len(self._heap)


def _run_celf(
    graph: DiGraph,
    model: DiffusionModel,
    samples: int,
    seed: RandomSource,
    max_seeds: int,
    stop_at_spread: Optional[float],
    mc_batch_size: Optional[int],
    crn: bool,
    runtime=None,
    context: Optional[ExecutionContext] = None,
) -> CelfResult:
    rng = as_generator(seed)
    queue = _LazyQueue()
    seeds: list[int] = []
    current_spread = 0.0
    simulations = 0
    skips = 0

    if context is not None and mc_batch_size is None:
        mc_batch_size = context.mc_batch_size
    if context is not None and runtime is None:
        runtime = context.runtime
    if crn:
        evaluator = CRNSpreadEvaluator(
            graph, model, n_sims=samples, seed=rng,
            mc_batch_size=mc_batch_size, runtime=runtime,
        )

        def spread_of(candidate_seeds) -> float:
            nonlocal simulations
            simulations += samples
            return evaluator.evaluate(candidate_seeds)

        def singleton_spreads():
            nonlocal simulations
            simulations += samples * graph.n
            return evaluator.evaluate_many([[v] for v in range(graph.n)])
    else:

        def spread_of(candidate_seeds) -> float:
            nonlocal simulations
            simulations += samples
            return estimate_spread(
                graph,
                model,
                candidate_seeds,
                samples=samples,
                seed=rng,
                mc_batch_size=mc_batch_size or DEFAULT_MC_BATCH_SIZE,
            ).mean

        def singleton_spreads():
            return [spread_of([v]) for v in range(graph.n)]

    try:
        # Initial pass: every node's singleton spread (one batched CRN sweep).
        for v, spread in enumerate(singleton_spreads()):
            queue.push(float(spread), v, 0)

        while len(seeds) < max_seeds and len(queue):
            gain, node, stamp = queue.pop()
            if stamp == len(seeds):
                # Fresh evaluation for the current seed set: commit the pick.
                seeds.append(node)
                current_spread += gain
                skips += len(queue)  # everything left was never re-evaluated
                if stop_at_spread is not None and current_spread >= stop_at_spread:
                    break
            else:
                # Stale: re-evaluate against the current seed set, re-queue.
                fresh_gain = max(0.0, spread_of(seeds + [node]) - current_spread)
                queue.push(fresh_gain, node, len(seeds))
    finally:
        if crn:
            # Release the evaluator's shared-memory worlds (if a runtime
            # published them) as soon as the selection loop is done.
            evaluator.close()
    return CelfResult(
        seeds=seeds,
        estimated_spread=current_spread,
        simulations_run=simulations,
        lazy_skips=skips,
    )


def celf_influence_maximization(
    graph: DiGraph,
    model: DiffusionModel,
    k: int,
    samples: int = 200,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    crn: bool = True,
    runtime=None,
    context: Optional[ExecutionContext] = None,
) -> CelfResult:
    """Select ``k`` seeds by lazy greedy over Monte-Carlo spreads.

    With the default ``crn=True``, two runs with the same integer ``seed``
    return identical seed sets (the estimator noise is pinned up front).
    ``context`` supplies the engine policy (``mc_batch_size``, parallel
    runtime); the explicit ``mc_batch_size`` / ``runtime`` arguments
    override it.  ``mc_batch_size`` bounds the cascades per vectorized
    engine call on either path (``None`` = engine default); the runtime
    shards the CRN sweeps across worker processes without changing any
    estimate (evaluation replays pre-sampled noise).
    """
    check_positive_int(k, "k")
    check_positive_int(samples, "samples")
    if mc_batch_size is not None:
        check_positive_int(mc_batch_size, "mc_batch_size")
    if k > graph.n:
        raise ConfigurationError(f"k={k} exceeds node count {graph.n}")
    return _run_celf(
        graph,
        model,
        samples,
        seed,
        max_seeds=k,
        stop_at_spread=None,
        mc_batch_size=mc_batch_size,
        crn=crn,
        runtime=runtime,
        context=context,
    )


def celf_seed_minimization(
    graph: DiGraph,
    model: DiffusionModel,
    eta: int,
    samples: int = 200,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    crn: bool = True,
    runtime=None,
    context: Optional[ExecutionContext] = None,
) -> CelfResult:
    """Add lazy-greedy seeds until the estimated spread reaches ``eta``.

    Non-adaptive, like ATEUC, but estimator-agnostic and therefore a good
    cross-check: on graphs where both run, their seed counts should agree
    within estimation noise.  ``context`` supplies the engine policy, with
    the explicit arguments as overrides (see
    :func:`celf_influence_maximization`).
    """
    check_positive_int(eta, "eta")
    check_positive_int(samples, "samples")
    if mc_batch_size is not None:
        check_positive_int(mc_batch_size, "mc_batch_size")
    if eta > graph.n:
        raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
    return _run_celf(
        graph,
        model,
        samples,
        seed,
        max_seeds=graph.n,
        stop_at_spread=float(eta),
        mc_batch_size=mc_batch_size,
        crn=crn,
        runtime=runtime,
        context=context,
    )


@dataclass(frozen=True)
class CelfMinimizationRun:
    """Harness-facing outcome of a timed CELF seed-minimization run.

    Mirrors the fields the experiment harness reads off
    :class:`~repro.baselines.ateuc.NonAdaptiveRunResult`; like ATEUC,
    feasibility on a concrete realization is not guaranteed.
    """

    policy_name: str
    eta: int
    seeds: list[int]
    estimated_spread: float
    simulations_run: int
    seconds: float

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


class CELFMinimizer:
    """Roster adapter: non-adaptive CELF seed minimization for the harness.

    Wraps :func:`celf_seed_minimization` behind the same ``run(graph, eta,
    seed)`` shape as :class:`~repro.baselines.ateuc.ATEUC`, so sweeps can
    put the historical Monte-Carlo baseline next to the RR-based roster.
    """

    name = "CELF"

    def __init__(
        self,
        model: DiffusionModel,
        samples: int = 200,
        mc_batch_size=UNSET,
        jobs=UNSET,
        runtime=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_positive_int(samples, "samples")
        # Either hand in a context (the harness passes the sweep's, whose
        # runtime it owns) or legacy knobs that build a private one; CRN
        # evaluation is bit-identical either way.
        self.context, self._owns_context = resolve_context(
            context,
            "CELFMinimizer",
            runtime=runtime,
            mc_batch_size=mc_batch_size,
            jobs=jobs,
        )
        self.model = model
        self.samples = samples

    @property
    def mc_batch_size(self) -> Optional[int]:
        return self.context.mc_batch_size

    @property
    def runtime(self):
        return self.context.runtime

    def close(self) -> None:
        """Release the private context's runtime, if this minimizer owns one.

        A context handed in by the caller (the harness) is left alone —
        its owner closes it.  Safe to call repeatedly.
        """
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> CELFMinimizer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self, graph: DiGraph, eta: int, seed: RandomSource = None
    ) -> CelfMinimizationRun:
        timer = Stopwatch()
        with timer:
            result = celf_seed_minimization(
                graph,
                self.model,
                eta,
                samples=self.samples,
                seed=seed,
                context=self.context,
            )
        return CelfMinimizationRun(
            policy_name=self.name,
            eta=eta,
            seeds=result.seeds,
            estimated_spread=result.estimated_spread,
            simulations_run=result.simulations_run,
            seconds=timer.elapsed,
        )
