"""OPIM-style influence maximization on RR sets (Tang et al. 2018).

Two roles in this repository:

* :class:`OpimNodeSelector` — the per-round engine of the AdaptIM baseline:
  pick the single node with the (approximately) maximum *untruncated*
  expected marginal spread, with the same doubling/confidence-bound skeleton
  as TRIM but on vanilla single-root RR sets.  The paper (Section 6.2)
  explains why this needs far more samples than TRIM in late rounds:
  the RR count is proportional to ``n_i / OPT'_i`` versus TRIM's
  ``eta_i / OPT_i``.
* :func:`opim_influence_maximization` — a standalone k-seed IM solver with
  the classic ``(1 - 1/e)(1 - eps)`` coverage certificate, provided as a
  library feature (and used by tests as an RR-set integration check).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.policy import SeedSelector, Selection, SelectionDiagnostics
from repro.core.trim import TrimParameters
from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.graph.residual import ResidualGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.sampling.bounds import (
    coverage_lower_bound,
    coverage_upper_bound,
    log_binomial,
)
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.sampling.rr import RRCollection
from repro.utils.rng import RandomSource, as_generator
from repro.utils.validation import check_fraction, check_positive_int


class OpimNodeSelector(SeedSelector):
    """Single-node selection maximizing the *untruncated* marginal spread.

    Structurally identical to TRIM — a vanilla RR set is an mRR set with one
    root — so the derived constants reuse :class:`TrimParameters` with the
    truncation threshold forced to ``n_i`` (no truncation).  This is exactly
    the design difference the paper evaluates: same machinery, wrong
    objective for seed minimization.
    """

    def __init__(
        self,
        model: DiffusionModel,
        epsilon: float = 0.5,
        max_samples: Optional[int] = None,
        sample_batch_size=UNSET,
        runtime=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_fraction(epsilon, "epsilon")
        self.context, self._owns_context = resolve_context(
            context,
            "OpimNodeSelector",
            runtime=runtime,
            sample_batch_size=sample_batch_size,
        )
        self.model = model
        self.epsilon = epsilon
        # Context supplies the sampling cap unless given explicitly.
        self.max_samples = (
            max_samples if max_samples is not None else self.context.max_samples
        )
        self.name = "AdaptIM"
        self.batch_size = 1

    @property
    def sample_batch_size(self) -> int:
        return self.context.sample_batch_size

    @property
    def runtime(self):
        return self.context.runtime

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        n = residual.n
        if n == 1:
            return Selection(nodes=[0], diagnostics=SelectionDiagnostics(estimated_gain=1.0))

        # eta := n disables truncation; root count collapses to 1 (RR sets).
        params = TrimParameters(n, n, self.epsilon, self.max_samples)
        pool = RRCollection(
            residual.graph,
            self.model,
            seed=rng,
            context=self.context,
        )
        pool.grow_to(params.theta_0)

        best_node = 0
        certified = 0.0
        iterations_used = params.iterations
        for t in range(params.iterations):
            best_node, coverage = pool.index.argmax_node()
            lower = coverage_lower_bound(coverage, params.a1)
            upper = coverage_upper_bound(coverage, params.a2)
            certified = lower / upper if upper > 0 else 0.0
            if certified >= 1.0 - params.eps_hat or t == params.iterations - 1:
                iterations_used = t + 1
                break
            pool.grow_to(params.pool_size_at(t + 1))

        gain = pool.estimated_node_spread(best_node)
        return Selection(
            nodes=[int(best_node)],
            diagnostics=SelectionDiagnostics(
                samples_generated=len(pool),
                iterations=iterations_used,
                certified_ratio=certified,
                estimated_gain=gain,
            ),
        )


@dataclass(frozen=True)
class InfluenceMaximizationResult:
    """Outcome of the standalone k-seed IM solver."""

    seeds: list[int]
    estimated_spread: float
    samples: int
    certified_ratio: float


def resolve_sampling_policy(
    max_samples: Optional[int],
    sample_batch_size: Optional[int],
    context: Optional[ExecutionContext],
) -> tuple[Optional[int], int]:
    """Effective ``(max_samples, sample_batch_size)`` for one solver call.

    Explicit arguments win; otherwise the context's knobs apply; otherwise
    the engine defaults.  Shared by the standalone IMM/OPIM solvers, which
    predate :class:`ExecutionContext` but follow the same explicit-override
    hybrid as the Monte Carlo estimators.
    """
    if max_samples is None and context is not None:
        max_samples = context.max_samples
    if sample_batch_size is None:
        sample_batch_size = (
            context.sample_batch_size if context is not None else None
        ) or DEFAULT_BATCH_SIZE
    check_positive_int(sample_batch_size, "sample_batch_size")
    return max_samples, sample_batch_size


def opim_influence_maximization(
    graph: DiGraph,
    model: DiffusionModel,
    k: int,
    epsilon: float = 0.5,
    seed: RandomSource = None,
    max_samples: Optional[int] = None,
    sample_batch_size: Optional[int] = None,
    context: Optional[ExecutionContext] = None,
) -> InfluenceMaximizationResult:
    """Select ``k`` seeds maximizing expected spread, OPIM-C style.

    Greedy max coverage over a doubling RR pool with Lemma A.2 certificates;
    stops when the greedy batch is certified
    ``(1 - 1/e)(1 - eps)``-optimal among size-``k`` sets.  Explicit
    ``max_samples`` / ``sample_batch_size`` override the ``context``.
    """
    check_positive_int(k, "k")
    check_fraction(epsilon, "epsilon")
    max_samples, sample_batch_size = resolve_sampling_policy(
        max_samples, sample_batch_size, context
    )
    if k > graph.n:
        raise ConfigurationError(f"k={k} exceeds node count {graph.n}")
    rng = as_generator(seed)

    rho = 1.0 - 1.0 / math.e
    delta = 1.0 / graph.n
    log_inv_delta = math.log(6.0 / delta)
    log_choose = log_binomial(graph.n, k)
    root_sum = math.sqrt(log_inv_delta) + math.sqrt((log_choose + log_inv_delta) / rho)
    theta_max = 2.0 * graph.n * root_sum * root_sum / (k * epsilon ** 2)
    if max_samples is not None:
        theta_max = min(theta_max, float(max_samples))
    theta_0 = max(1, int(math.ceil(theta_max * k * epsilon ** 2 / graph.n)))
    iterations = max(1, int(math.ceil(math.log2(theta_max / theta_0))) + 1)
    log_3t_delta = math.log(3.0 * iterations / delta)
    a1 = log_3t_delta + log_choose
    a2 = log_3t_delta

    pool = RRCollection(graph, model, seed=rng, batch_size=sample_batch_size)
    pool.grow_to(theta_0)
    seeds: list[int] = []
    certified = 0.0
    for t in range(iterations):
        greedy = pool.index.greedy_max_coverage(k)
        seeds = greedy.nodes
        lower = coverage_lower_bound(greedy.covered, a1)
        upper = coverage_upper_bound(greedy.covered / rho, a2)
        certified = lower / upper if upper > 0 else 0.0
        if certified >= rho * (1.0 - epsilon) or t == iterations - 1:
            break
        pool.grow_to(int(min(theta_0 * (2 ** (t + 1)), math.ceil(theta_max))))

    return InfluenceMaximizationResult(
        seeds=[int(v) for v in seeds],
        estimated_spread=pool.estimated_spread(seeds),
        samples=len(pool),
        certified_ratio=certified,
    )
