"""IMM: Influence Maximization via Martingales (Tang et al., SIGMOD 2015).

The second big RR-set-based IM algorithm referenced by the paper (its [40]),
included alongside OPIM for library completeness and as an independent
cross-check of the RR machinery.  Where OPIM doubles a single pool until a
confidence certificate holds, IMM runs two phases:

1. **Parameter estimation** — a geometric search over guesses ``x`` of the
   optimal spread: for each guess, generate enough RR sets to test whether
   greedy coverage certifies spread ``>= n / 2^x``; the first success pins
   a lower bound ``LB`` on ``OPT``.
2. **Node selection** — generate ``theta(LB)`` RR sets (the martingale
   bound) and return the greedy cover.

The returned set is a ``(1 - 1/e - eps)``-approximation with probability
``1 - 1/n`` under the paper's analysis; our implementation follows the
published pseudocode with the standard ``eps' = sqrt(2) eps`` split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.baselines.opim import InfluenceMaximizationResult, resolve_sampling_policy
from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.runtime.context import ExecutionContext
from repro.sampling.bounds import log_binomial
from repro.sampling.rr import RRCollection
from repro.utils.rng import RandomSource, as_generator
from repro.utils.validation import check_fraction, check_positive_int

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class ImmDiagnostics:
    """Phase-level accounting for an IMM run."""

    lower_bound: float        # certified LB on OPT from phase 1
    phase1_samples: int
    phase2_samples: int
    geometric_rounds: int


def imm_influence_maximization(
    graph: DiGraph,
    model: DiffusionModel,
    k: int,
    epsilon: float = 0.5,
    seed: RandomSource = None,
    max_samples: Optional[int] = None,
    sample_batch_size: Optional[int] = None,
    context: Optional[ExecutionContext] = None,
) -> InfluenceMaximizationResult:
    """Select ``k`` seeds with IMM's two-phase sampling schedule.

    Returns the same result type as
    :func:`repro.baselines.opim.opim_influence_maximization`, so callers
    can swap solvers freely; IMM's phase diagnostics are attached to the
    certified ratio slot as the fraction ``LB / estimated_spread`` (a
    quality indicator in [0, 1]).  Explicit ``max_samples`` /
    ``sample_batch_size`` override the ``context``.
    """
    check_positive_int(k, "k")
    check_fraction(epsilon, "epsilon")
    max_samples, sample_batch_size = resolve_sampling_policy(
        max_samples, sample_batch_size, context
    )
    if k > graph.n:
        raise ConfigurationError(f"k={k} exceeds node count {graph.n}")
    rng = as_generator(seed)
    n = graph.n

    eps_prime = math.sqrt(2.0) * epsilon
    log_choose = log_binomial(n, k)
    log_n = math.log(max(n, 2))

    pool = RRCollection(graph, model, seed=rng, batch_size=sample_batch_size)
    lower_bound = 1.0

    # Phase 1: geometric search for a lower bound on OPT.
    max_rounds = max(1, int(math.ceil(math.log2(n))) - 1)
    for i in range(1, max_rounds + 1):
        x = n / (2.0 ** i)
        lambda_prime = (
            (2.0 + 2.0 * eps_prime / 3.0)
            * (log_choose + log_n + math.log(max(math.log2(n), 2.0)))
            * n
            / (eps_prime ** 2)
        )
        theta_i = int(math.ceil(lambda_prime / x))
        if max_samples is not None:
            theta_i = min(theta_i, max_samples)
        pool.grow_to(theta_i)
        greedy = pool.index.greedy_max_coverage(k)
        estimated = n * greedy.covered / len(pool)
        if estimated >= (1.0 + eps_prime) * x:
            lower_bound = estimated / (1.0 + eps_prime)
            break
        if max_samples is not None and theta_i >= max_samples:
            lower_bound = max(1.0, estimated / (1.0 + eps_prime))
            break
    else:
        lower_bound = max(1.0, k * 1.0)

    # Phase 2: the martingale sample bound at the certified LB.
    alpha = math.sqrt(log_n + math.log(2.0))
    beta = math.sqrt(_ONE_MINUS_INV_E * (log_choose + log_n + math.log(2.0)))
    lambda_star = (
        2.0 * n * ((_ONE_MINUS_INV_E * alpha + beta) ** 2) / (epsilon ** 2)
    )
    theta = int(math.ceil(lambda_star / lower_bound))
    if max_samples is not None:
        theta = min(theta, max_samples)
    pool.grow_to(theta)

    greedy = pool.index.greedy_max_coverage(k)
    estimated = n * greedy.covered / len(pool)
    quality = min(1.0, lower_bound / estimated) if estimated > 0 else 0.0
    return InfluenceMaximizationResult(
        seeds=[int(v) for v in greedy.nodes],
        estimated_spread=estimated,
        samples=len(pool),
        certified_ratio=quality,
    )


def imm_diagnostics(
    graph: DiGraph,
    model: DiffusionModel,
    k: int,
    epsilon: float = 0.5,
    seed: RandomSource = None,
    max_samples: Optional[int] = None,
    sample_batch_size: Optional[int] = None,
    context: Optional[ExecutionContext] = None,
) -> ImmDiagnostics:
    """Run phase 1 only and report the schedule IMM would use.

    Useful for teaching/benchmarks: shows how the geometric search narrows
    in on OPT and how large the phase-2 pool would be.
    """
    check_positive_int(k, "k")
    check_fraction(epsilon, "epsilon")
    max_samples, sample_batch_size = resolve_sampling_policy(
        max_samples, sample_batch_size, context
    )
    rng = as_generator(seed)
    n = graph.n
    eps_prime = math.sqrt(2.0) * epsilon
    log_choose = log_binomial(n, k)
    log_n = math.log(max(n, 2))

    pool = RRCollection(graph, model, seed=rng, batch_size=sample_batch_size)
    lower_bound = 1.0
    rounds = 0
    max_rounds = max(1, int(math.ceil(math.log2(n))) - 1)
    for i in range(1, max_rounds + 1):
        rounds = i
        x = n / (2.0 ** i)
        lambda_prime = (
            (2.0 + 2.0 * eps_prime / 3.0)
            * (log_choose + log_n + math.log(max(math.log2(n), 2.0)))
            * n
            / (eps_prime ** 2)
        )
        theta_i = int(math.ceil(lambda_prime / x))
        if max_samples is not None:
            theta_i = min(theta_i, max_samples)
        pool.grow_to(theta_i)
        greedy = pool.index.greedy_max_coverage(k)
        estimated = n * greedy.covered / len(pool)
        if estimated >= (1.0 + eps_prime) * x:
            lower_bound = estimated / (1.0 + eps_prime)
            break
        if max_samples is not None and theta_i >= max_samples:
            break
    phase1 = len(pool)
    alpha = math.sqrt(log_n + math.log(2.0))
    beta = math.sqrt(_ONE_MINUS_INV_E * (log_choose + log_n + math.log(2.0)))
    lambda_star = 2.0 * n * ((_ONE_MINUS_INV_E * alpha + beta) ** 2) / (epsilon ** 2)
    theta2 = int(math.ceil(lambda_star / max(lower_bound, 1.0)))
    if max_samples is not None:
        theta2 = min(theta2, max_samples)
    return ImmDiagnostics(
        lower_bound=lower_bound,
        phase1_samples=phase1,
        phase2_samples=theta2,
        geometric_rounds=rounds,
    )
