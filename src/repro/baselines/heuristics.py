"""Cheap heuristic baselines.

Not part of the paper's headline comparison, but indispensable for sanity
checks and for users who want a zero-theory reference point:

* adaptive highest-degree seeding (:class:`DegreeSelector`),
* adaptive uniform-random seeding (re-exported from ``core.policy``),
* non-adaptive degree-ordered seed minimization with Monte-Carlo
  verification (:func:`degree_seed_minimization`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.policy import RandomNodeSelector, SeedSelector, Selection, SelectionDiagnostics
from repro.diffusion.base import DiffusionModel
from repro.diffusion.montecarlo import estimate_spread
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.graph.residual import ResidualGraph
from repro.utils.rng import RandomSource, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "DegreeSelector",
    "RandomNodeSelector",
    "degree_seed_minimization",
    "DegreeMinimizationResult",
]


class DegreeSelector(SeedSelector):
    """Adaptive heuristic: seed the highest out-degree inactive node.

    Degree is recomputed on the residual graph each round, so the heuristic
    does benefit from adaptivity — it just ignores propagation
    probabilities and multi-hop structure.
    """

    name = "degree"

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        degrees = residual.graph.out_degrees()
        node = int(degrees.argmax())
        return Selection(
            nodes=[node],
            diagnostics=SelectionDiagnostics(estimated_gain=float(degrees[node])),
        )


@dataclass(frozen=True)
class DegreeMinimizationResult:
    """Outcome of the non-adaptive degree heuristic."""

    seeds: list[int]
    estimated_spread: float
    eta: int

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


def degree_seed_minimization(
    graph: DiGraph,
    model: DiffusionModel,
    eta: int,
    samples: int = 200,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    context=None,
) -> DegreeMinimizationResult:
    """Add nodes in decreasing out-degree until MC spread reaches ``eta``.

    The simplest non-adaptive seed-minimization strategy; used in tests as
    a floor that ATEUC must beat (or at least match) on seed count.  Each
    verification estimate runs on the batched forward engine,
    ``mc_batch_size`` cascades per vectorized call.
    """
    check_positive_int(eta, "eta")
    check_positive_int(samples, "samples")
    if mc_batch_size is not None:
        check_positive_int(mc_batch_size, "mc_batch_size")
    if eta > graph.n:
        raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
    rng = as_generator(seed)
    order = np.argsort(-graph.out_degrees(), kind="stable")
    seeds: list[int] = []
    estimate = 0.0
    for node in order:
        seeds.append(int(node))
        estimate = estimate_spread(
            graph, model, seeds, samples=samples, seed=rng,
            mc_batch_size=mc_batch_size, context=context,
        ).mean
        if estimate >= eta:
            break
    return DegreeMinimizationResult(seeds=seeds, estimated_spread=estimate, eta=eta)
