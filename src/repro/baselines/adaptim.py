"""AdaptIM: the adaptive influence-maximization comparator (paper Sec. 6.1).

Derived from Han et al.'s AdaptIM-1 [23], modified (as the paper's authors
did) to run until the seed-minimization stop condition: it iteratively runs
a non-adaptive IM step — pick the node with the maximum expected *marginal
influence spread* on the residual graph — observes, and repeats until the
threshold ``eta`` is reached.

Crucial contrast with ASTI: the objective is the vanilla spread, not the
truncated spread.  Empirically it selects nearly as few seeds as ASTI but
needs vastly more RR samples in late rounds (its sample count scales with
``n_i / OPT'_i`` rather than ``eta_i / OPT_i``), which is exactly the
efficiency gap Figures 5 and 7 show.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional, Union

from repro.baselines.opim import OpimNodeSelector
from repro.core.asti import (
    AdaptiveRunResult,
    run_adaptive_policy,
    run_adaptive_policy_batch,
)
from repro.diffusion.base import DiffusionModel
from repro.diffusion.realization import Realization
from repro.graph.digraph import DiGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.utils.rng import RandomSource
from repro.utils.validation import check_fraction


class AdaptIM:
    """Facade mirroring :class:`repro.core.asti.ASTI` for the comparator."""

    name = "AdaptIM"

    def __init__(
        self,
        model: DiffusionModel,
        epsilon: float = 0.5,
        max_samples: Optional[int] = None,
        sample_batch_size=UNSET,
        jobs=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_fraction(epsilon, "epsilon")
        # Same context semantics as ASTI: jobs=None keeps the historical
        # single-stream route, >= 1 switches to chunk-seeded parallel pool
        # growth (worker-count invariant); legacy kwargs build a private
        # context via the deprecation shim.
        self.context, self._owns_context = resolve_context(
            context,
            "AdaptIM",
            sample_batch_size=sample_batch_size,
            jobs=jobs,
        )
        self.model = model
        self.epsilon = epsilon
        self.selector = OpimNodeSelector(
            model,
            epsilon=epsilon,
            max_samples=max_samples,
            context=self.context,
        )

    @property
    def jobs(self) -> Optional[int]:
        return self.context.jobs

    def close(self) -> None:
        """Release the private context's runtime (no-op without ``jobs``)."""
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> AdaptIM:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        graph: DiGraph,
        eta: int,
        realization: Optional[Realization] = None,
        seed: RandomSource = None,
        max_rounds: Optional[int] = None,
    ) -> AdaptiveRunResult:
        """Adaptive loop with the untruncated per-round objective."""
        return run_adaptive_policy(
            graph, eta, self.model, self.selector, realization, seed,
            max_rounds, kernel=self.context.kernel_backend,
        )

    def run_batch(
        self,
        graph: DiGraph,
        eta: int,
        realizations: Sequence[Realization],
        seeds: Union[RandomSource, Sequence[RandomSource]] = None,
        max_rounds: Optional[int] = None,
    ) -> list[AdaptiveRunResult]:
        """Batched engine entry; the OPIM selector has no pool carry-over,
        so sessions share only the round-synchronous observation sweep."""
        return run_adaptive_policy_batch(
            graph, eta, self.model, self.selector, realizations, seeds,
            max_rounds, kernel=self.context.kernel_backend,
        )
