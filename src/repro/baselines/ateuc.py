"""ATEUC: non-adaptive seed minimization (Han et al. 2017, paper's [22]).

The state-of-the-art *non-adaptive* comparator of the evaluation.  ATEUC
selects one seed set up front such that the **expected** spread reaches
``eta``; it never observes the cascade, so on individual realizations it can
undershoot (the paper's Table 3 marks these N/A) or badly overshoot
(Figure 8).

Algorithm sketch (following the description in the paper's Sections 5-6 and
the structure of [22]):

* grow a pool of RR sets; greedy-cover nodes until the *certified lower
  bound* of the estimated spread ``n * Lambda / |R|`` reaches ``eta`` — this
  candidate ``S_u`` is a feasible-in-expectation solution and upper-bounds
  the optimal seed count (up to estimation error);
* the shortest greedy prefix covering ``(1 - 1/e)`` of the coverage worth
  ``eta`` lower-bounds the optimal count ``|S_l|``: greedy with ``|OPT|``
  picks covers at least ``1 - 1/e`` of what OPT covers, and OPT covers
  ``eta`` in expectation;
* accept when ``|S_u| <= gamma * |S_l|`` (gamma = 2 in [22]); otherwise
  double the pool and repeat.

The early-accept dynamics explain the running-time pattern in Figure 5:
the larger ``eta``, the sooner ``|S_u| <= 2 |S_l|`` holds, so ATEUC gets
*faster* as the target grows — opposite to the adaptive algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.sampling.bounds import coverage_lower_bound
from repro.sampling.rr import RRCollection
from repro.utils.rng import RandomSource, as_generator
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class NonAdaptiveRunResult:
    """Outcome of a non-adaptive seed-minimization run.

    Unlike :class:`~repro.core.asti.AdaptiveRunResult`, feasibility is *not*
    guaranteed: evaluate ``seeds`` against a concrete realization to learn
    whether the target was actually met.
    """

    policy_name: str
    eta: int
    seeds: list[int]
    estimated_spread: float
    lower_bound_count: int      # |S_l|: certified lower bound on OPT's size
    samples: int
    seconds: float

    @property
    def seed_count(self) -> int:
        return len(self.seeds)


class ATEUC:
    """Non-adaptive seed minimization with upper/lower candidate sets.

    Parameters
    ----------
    model:
        Diffusion model (IC or LT).
    gamma:
        Acceptance ratio for ``|S_u| <= gamma * |S_l|`` (default 2, as
        recommended in [22]).
    theta_initial, max_doublings:
        Pool schedule.  The defaults (512 sets, 6 doublings = 32K sets max)
        keep pure-Python runs bounded while preserving the doubling
        structure; when the budget runs out the best-effort candidate is
        returned, mirroring how [22]'s worst case is "prohibitively large"
        (paper Section 5) yet the algorithm is anytime.
    """

    name = "ATEUC"

    def __init__(
        self,
        model: DiffusionModel,
        gamma: float = 2.0,
        theta_initial: int = 512,
        max_doublings: int = 6,
        sample_batch_size=UNSET,
        runtime=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_positive_int(theta_initial, "theta_initial")
        check_positive_int(max_doublings, "max_doublings")
        if gamma < 1.0:
            raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
        self.context, self._owns_context = resolve_context(
            context,
            "ATEUC",
            runtime=runtime,
            sample_batch_size=sample_batch_size,
        )
        self.model = model
        self.gamma = gamma
        self.theta_initial = theta_initial
        self.max_doublings = max_doublings

    @property
    def sample_batch_size(self) -> int:
        return self.context.sample_batch_size

    @property
    def runtime(self):
        return self.context.runtime

    def close(self) -> None:
        """Release the private context (no-op for a caller-owned one)."""
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> ATEUC:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        graph: DiGraph,
        eta: int,
        seed: RandomSource = None,
    ) -> NonAdaptiveRunResult:
        """Select a seed set whose certified expected spread reaches ``eta``."""
        check_positive_int(eta, "eta")
        if eta > graph.n:
            raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
        rng = as_generator(seed)
        pool = RRCollection(
            graph,
            self.model,
            seed=rng,
            context=self.context,
        )
        timer = Stopwatch()

        # Union-bounded confidence parameter across nodes and doublings.
        a = math.log(3.0 * (self.max_doublings + 1) * graph.n)

        upper_candidate: list[int] = []
        lower_count = 1
        estimated = 0.0
        with timer:
            theta = self.theta_initial
            for _ in range(self.max_doublings + 1):
                pool.grow_to(theta)
                upper_candidate, lower_count, estimated, certified = (
                    self._candidates(pool, graph.n, eta, a)
                )
                if certified and len(upper_candidate) <= self.gamma * lower_count:
                    break
                theta *= 2
        return NonAdaptiveRunResult(
            policy_name=self.name,
            eta=eta,
            seeds=upper_candidate,
            estimated_spread=estimated,
            lower_bound_count=lower_count,
            samples=len(pool),
            seconds=timer.elapsed,
        )

    def _candidates(
        self, pool: RRCollection, n: int, eta: int, a: float
    ) -> tuple[list[int], int, float, bool]:
        """One greedy sweep producing ``(S_u, |S_l|, estimate, certified)``.

        A single greedy max-coverage pass yields both candidates: ``S_u`` is
        the prefix whose *lower-bounded* spread reaches ``eta``; ``|S_l|``
        is the length of the prefix whose coverage first reaches
        ``(1 - 1/e)`` of the coverage worth ``eta``.
        """
        theta = len(pool.index)
        scale = n / theta
        target_cover = eta / theta * theta / scale  # == eta / scale
        # The LB needs slack ~ sqrt(2 a x) + O(a) beyond the target; sweep
        # far enough that the certified prefix exists when it can.
        slack = math.sqrt(2.0 * a * target_cover) + 2.0 * a
        greedy = pool.index.greedy_max_coverage(
            n, stop_at_coverage=int(math.ceil(target_cover + slack)) + 1
        )

        upper_candidate: list[int] = []
        lower_count = 0
        covered = 0
        estimated = 0.0
        certified = False
        for idx, gain in enumerate(greedy.marginal_gains):
            covered += gain
            if lower_count == 0 and covered >= _ONE_MINUS_INV_E * target_cover:
                lower_count = idx + 1
            if not certified and coverage_lower_bound(covered, a) >= target_cover:
                upper_candidate = [int(v) for v in greedy.nodes[: idx + 1]]
                estimated = covered * scale
                certified = True
                break
        if not certified:
            # Budgeted best effort: fall back to the point-estimate prefix,
            # or the whole sweep when even that is out of reach.
            covered = 0
            for idx, gain in enumerate(greedy.marginal_gains):
                covered += gain
                if covered >= target_cover:
                    upper_candidate = [int(v) for v in greedy.nodes[: idx + 1]]
                    estimated = covered * scale
                    break
            else:
                upper_candidate = [int(v) for v in greedy.nodes]
                estimated = covered * scale
        if lower_count == 0:
            lower_count = max(1, len(upper_candidate))
        return upper_candidate, lower_count, estimated, certified
