"""Baseline algorithms from the paper's evaluation and sanity heuristics."""

from repro.baselines.adaptim import AdaptIM
from repro.baselines.celf import (
    CelfResult,
    celf_influence_maximization,
    celf_seed_minimization,
)
from repro.baselines.ateuc import ATEUC, NonAdaptiveRunResult
from repro.baselines.heuristics import (
    DegreeMinimizationResult,
    DegreeSelector,
    degree_seed_minimization,
)
from repro.baselines.imm import (
    ImmDiagnostics,
    imm_diagnostics,
    imm_influence_maximization,
)
from repro.baselines.opim import (
    InfluenceMaximizationResult,
    OpimNodeSelector,
    opim_influence_maximization,
)
from repro.baselines.oracle import ExactOracleSelector, MonteCarloOracleSelector

__all__ = [
    "AdaptIM",
    "CelfResult",
    "celf_influence_maximization",
    "celf_seed_minimization",
    "ATEUC",
    "NonAdaptiveRunResult",
    "DegreeSelector",
    "DegreeMinimizationResult",
    "degree_seed_minimization",
    "ImmDiagnostics",
    "imm_diagnostics",
    "imm_influence_maximization",
    "OpimNodeSelector",
    "opim_influence_maximization",
    "InfluenceMaximizationResult",
    "ExactOracleSelector",
    "MonteCarloOracleSelector",
]
