"""Oracle greedy policies: the Golovin-Krause idealization (paper Sec. 2.4).

The theory of adaptive seed minimization assumes an oracle reporting the
exact expected marginal truncated spread ``Delta(v | S)``.  On tiny graphs
we *have* that oracle (exhaustive realization enumeration,
:mod:`repro.diffusion.exact`); on small graphs Monte Carlo approximates it.
The resulting selectors serve as correctness anchors:

* TRIM's picks should match the exact oracle on the paper's Example 2.3;
* the truncated oracle should outperform the untruncated oracle in expected
  seed count — the phenomenon that motivates the whole paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import SeedSelector, Selection, SelectionDiagnostics
from repro.diffusion.base import DiffusionModel
from repro.diffusion.exact import (
    exact_expected_spread,
    exact_expected_truncated_spread,
)
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.graph.residual import ResidualGraph
from repro.utils.validation import check_positive_int


class ExactOracleSelector(SeedSelector):
    """Argmax of the *exact* expected marginal truncated spread.

    Enumerates the full realization space of the residual graph each round,
    so it is limited to graphs with ~20 edges (IC) — test-sized instances.
    Set ``truncated=False`` to get the vanilla-spread oracle (the flawed
    objective of Section 2.4, kept for the comparison tests).
    """

    def __init__(self, model: DiffusionModel, truncated: bool = True):
        self.model = model
        self.truncated = truncated
        self.name = "oracle-exact" if truncated else "oracle-exact-vanilla"

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        eta = min(residual.shortfall, residual.n)
        best_node, best_value = 0, -1.0
        for v in range(residual.n):
            if self.truncated:
                value = exact_expected_truncated_spread(
                    residual.graph, self.model, [v], eta
                )
            else:
                value = exact_expected_spread(residual.graph, self.model, [v])
            if value > best_value:
                best_node, best_value = v, value
        return Selection(
            nodes=[best_node],
            diagnostics=SelectionDiagnostics(estimated_gain=best_value),
        )


class MonteCarloOracleSelector(SeedSelector):
    """Argmax of a Monte-Carlo estimate of the marginal truncated spread.

    The practical stand-in for the exact oracle on graphs of a few hundred
    nodes.  Each round scores *all* singleton candidates against one shared
    batch of ``samples`` realizations (common random numbers, see
    :class:`~repro.diffusion.montecarlo.CRNSpreadEvaluator`), so the round
    runs as a few batched labeled forward sweeps instead of ``n * samples``
    per-cascade loops — and the argmax compares candidates on identical
    noise.  Still quadratic-ish across rounds, i.e. strictly a validation
    tool — which is precisely the point the paper makes about oracle-based
    approaches being impractical.
    """

    def __init__(self, model: DiffusionModel, samples: int = 200, truncated: bool = True):
        check_positive_int(samples, "samples")
        self.model = model
        self.samples = samples
        self.truncated = truncated
        self.name = "oracle-mc" if truncated else "oracle-mc-vanilla"

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        eta = min(residual.shortfall, residual.n)
        evaluator = CRNSpreadEvaluator(
            residual.graph, self.model, n_sims=self.samples, seed=rng
        )
        values = evaluator.evaluate_many(
            [[v] for v in range(residual.n)],
            eta=eta if self.truncated else None,
        )
        best_node = int(values.argmax())  # first max, like the old scan
        return Selection(
            nodes=[best_node],
            diagnostics=SelectionDiagnostics(estimated_gain=float(values[best_node])),
        )
