"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError``, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class NodeNotFoundError(GraphError):
    """Raised when a node identifier is outside the graph's node range."""

    def __init__(self, node: int, n: int):
        self.node = node
        self.n = n
        super().__init__(f"node {node} is out of range for a graph with {n} nodes")


class EdgeError(GraphError):
    """Raised when an edge is malformed (bad endpoints or probability)."""


class ConfigurationError(ReproError):
    """Raised when user-supplied parameters are inconsistent or out of range."""


class DiffusionError(ReproError):
    """Raised when a diffusion model is used incorrectly."""


class SamplingError(ReproError):
    """Raised when sampling (RR / mRR set generation) is misconfigured."""


class BudgetExhaustedError(ReproError):
    """Raised when an algorithm exceeds an explicit resource budget.

    TRIM and friends are anytime algorithms with provable sample bounds, but
    pure-Python runs may want a hard cap on the number of generated sets;
    exceeding that cap (when ``strict=True``) raises this error.
    """


class InfeasibleTargetError(ReproError):
    """Raised when the influence target ``eta`` cannot be met.

    This happens when the realized reachable set of *all* nodes combined is
    smaller than the remaining target, e.g. ``eta > n`` or a disconnected
    realization with an unreachable shortfall.
    """

    def __init__(self, eta: int, achievable: int):
        self.eta = eta
        self.achievable = achievable
        super().__init__(
            f"target eta={eta} cannot be met: at most {achievable} nodes "
            f"are activatable under the observed realization"
        )
