"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError``, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class NodeNotFoundError(GraphError):
    """Raised when a node identifier is outside the graph's node range."""

    def __init__(self, node: int, n: int):
        self.node = node
        self.n = n
        super().__init__(f"node {node} is out of range for a graph with {n} nodes")


class EdgeError(GraphError):
    """Raised when an edge is malformed (bad endpoints or probability)."""


class ConfigurationError(ReproError):
    """Raised when user-supplied parameters are inconsistent or out of range."""


class DiffusionError(ReproError):
    """Raised when a diffusion model is used incorrectly."""


class ResourceError(ReproError):
    """Raised when an operation would exceed an explicit resource limit.

    The shared-memory layer raises this *before* handing a request to the
    operating system: a publication larger than the configured segment
    budget (or than the space left on the shm filesystem) fails here with
    the offending sizes spelled out, instead of surfacing as an opaque
    ``OSError`` from ``multiprocessing.shared_memory``.
    """


class WorkerPoolError(ReproError):
    """Raised when supervised parallel dispatch exhausts its fault policy.

    The parallel runtime's supervisor retries transient chunk failures,
    rebuilds the worker pool after crashes, and (policy permitting)
    degrades to in-process execution.  Once every recovery avenue allowed
    by the :class:`~repro.parallel.runtime.FaultPolicy` is spent, this
    error reports the chunk and the failure history.
    """


class TransientWorkerError(WorkerPoolError):
    """A chunk failure worth retrying on the same (or a rebuilt) pool.

    Chunk kernels may raise this for failures that are expected to clear
    on a retry (lost attachments, interrupted IO); the dispatch supervisor
    catches it and re-runs the chunk within the policy's retry budget
    instead of failing the whole fan-out.  Any other exception from a
    chunk is treated as deterministic and propagates immediately.
    """


class ServiceError(ReproError):
    """Base class for the always-on service layer's request failures.

    Every subclass carries a stable wire ``code`` (see
    :mod:`repro.service.protocol`): the server converts these into typed
    NDJSON error replies instead of dropping the connection.
    """

    #: Stable machine-readable error code used in wire replies.
    code = "internal"


class ServiceOverloadError(ServiceError):
    """Raised when admission control sheds a request.

    The bounded queue is full (``max_in_flight`` running plus
    ``max_queue`` waiting); the server answers with a typed ``overloaded``
    reply — the connection stays open and the client may retry.
    """

    code = "overloaded"


class DeadlineExceededError(ServiceError):
    """Raised when a request's monotonic deadline passes.

    ``stage`` records where the budget ran out: ``"queued"`` (expired
    before compute started — nothing ran) or ``"running"`` (compute was
    abandoned mid-flight; its thread finishes in the background but its
    result is discarded).
    """

    code = "deadline_exceeded"

    def __init__(self, stage: str, budget_ms: float):
        self.stage = stage
        self.budget_ms = budget_ms
        super().__init__(
            f"deadline of {budget_ms:.0f}ms exceeded while {stage}"
        )


class SamplingError(ReproError):
    """Raised when sampling (RR / mRR set generation) is misconfigured."""


class BudgetExhaustedError(ReproError):
    """Raised when an algorithm exceeds an explicit resource budget.

    TRIM and friends are anytime algorithms with provable sample bounds, but
    pure-Python runs may want a hard cap on the number of generated sets;
    exceeding that cap (when ``strict=True``) raises this error.
    """


class InfeasibleTargetError(ReproError):
    """Raised when the influence target ``eta`` cannot be met.

    This happens when the realized reachable set of *all* nodes combined is
    smaller than the remaining target, e.g. ``eta > n`` or a disconnected
    realization with an unreachable shortfall.
    """

    def __init__(self, eta: int, achievable: int):
        self.eta = eta
        self.achievable = achievable
        super().__init__(
            f"target eta={eta} cannot be met: at most {achievable} nodes "
            f"are activatable under the observed realization"
        )
