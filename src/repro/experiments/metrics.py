"""Derived metrics for the paper's tables.

Mostly Table 3: the improvement ratio of ASTI over ATEUC in seed count,
with the N/A convention for thresholds where ATEUC's fixed seed set fails
to reach ``eta`` on at least one sampled realization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.experiments.harness import AlgorithmOutcome


def improvement_ratio(baseline_count: float, improved_count: float) -> float:
    """How many *more* seeds the baseline needs, relative to the improved.

    Matches the paper's phrasing "ATEUC selects X% more nodes than ASTI":
    ``(baseline - improved) / improved``.
    """
    if improved_count <= 0:
        raise ConfigurationError(
            f"improved seed count must be positive, got {improved_count}"
        )
    return (baseline_count - improved_count) / improved_count


@dataclass(frozen=True)
class Table3Cell:
    """One cell of Table 3: a ratio or the N/A feasibility marker."""

    eta_fraction: float
    ratio: Optional[float]      # None encodes N/A
    baseline_feasible: bool

    def rendered(self) -> str:
        if self.ratio is None:
            return "N/A"
        return f"{self.ratio * 100:.1f}%"


def table3_cell(
    eta_fraction: float,
    ateuc: AlgorithmOutcome,
    asti: AlgorithmOutcome,
) -> Table3Cell:
    """Build a Table 3 cell from the two algorithms' outcomes.

    The paper reports N/A whenever ATEUC misses the threshold on *any* of
    the sampled realizations ("ATEUC does not meet the threshold for some
    realizations"), because the seed-count comparison would then be against
    an infeasible solution.
    """
    if not ateuc.always_feasible:
        return Table3Cell(eta_fraction, None, baseline_feasible=False)
    return Table3Cell(
        eta_fraction,
        improvement_ratio(ateuc.mean_seed_count, asti.mean_seed_count),
        baseline_feasible=True,
    )


def overshoot_fraction(spread: float, eta: int) -> float:
    """Relative overshoot of a realized spread past the target.

    Section 6.4 flags runs whose spread exceeds the requirement by more
    than 50% as over-qualified.
    """
    if eta < 1:
        raise ConfigurationError(f"eta must be >= 1, got {eta}")
    return max(0.0, spread / eta - 1.0)


def speedup(reference_seconds: float, candidate_seconds: float) -> float:
    """``reference / candidate``: >1 means the candidate is faster."""
    if candidate_seconds <= 0:
        raise ConfigurationError(
            f"candidate time must be positive, got {candidate_seconds}"
        )
    return reference_seconds / candidate_seconds
