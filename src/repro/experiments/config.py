"""Experiment configuration objects.

One :class:`ExperimentConfig` pins everything a sweep needs: the dataset,
the diffusion model, the threshold fractions, the algorithm roster, the
number of ground-truth realizations, and the accuracy/budget knobs.  Two
presets are provided:

* :func:`paper_config` — the paper's setting (20 realizations,
  ``epsilon = 0.5``, the dataset's published eta sweep);
* :func:`quick_config` — a shrunk profile for tests and CI-scale
  benchmarks (fewer realizations, smaller graphs, sample caps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence
from typing import Optional

from repro.diffusion.base import DiffusionModel
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.errors import ConfigurationError
from repro.experiments import datasets
from repro.kernels import KERNEL_BACKENDS
from repro.runtime.context import GRAPH_STORAGE_POLICIES, ExecutionContext
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.utils.validation import (
    check_fraction,
    check_optional_positive_int,
    check_positive_float,
    check_positive_int,
)

#: The paper's full roster (Section 6.1).
PAPER_ALGORITHMS: tuple[str, ...] = (
    "ASTI", "ASTI-2", "ASTI-4", "ASTI-8", "AdaptIM", "ATEUC"
)

#: Roster labels understood by the harness: the paper roster plus the
#: historical CELF Monte-Carlo baseline (non-adaptive, CRN-evaluated).
KNOWN_ALGORITHMS = PAPER_ALGORITHMS + ("CELF",)


@dataclass(frozen=True)
class ExperimentConfig:
    """A fully pinned experiment: dataset x model x sweep x roster."""

    dataset: str
    model_name: str = "IC"                       # "IC" or "LT"
    eta_fractions: Sequence[float] = (0.05, 0.10)
    algorithms: Sequence[str] = ("ASTI", "ATEUC")
    realizations: int = 20
    epsilon: float = 0.5
    graph_n: Optional[int] = None                # None = dataset default
    max_samples: Optional[int] = None            # per-round mRR/RR cap
    sample_batch_size: int = DEFAULT_BATCH_SIZE  # engine sets per vectorized call
    mc_batch_size: Optional[int] = None          # forward cascades per engine call
                                                 # (None = engine default)
    mc_tolerance: Optional[float] = None         # MC early-stop CI half-width
    reuse_pool: bool = True                      # carry mRR pools across rounds
    jobs: int = 1                                # harness worker processes
                                                 # (1 = in-process; results are
                                                 # identical for any value)
    graph_storage: str = "adaptive"              # CSR layout: "adaptive"|"wide"
    kernel_backend: str = "auto"                 # labeled-BFS backend
                                                 # ("auto"|"numpy"|"numba"|
                                                 # "python"); bit-identical
    chunk_timeout: Optional[float] = None        # seconds before a dispatched
                                                 # chunk is declared hung
    max_retries: int = 2                         # transient-failure retries
                                                 # per chunk
    on_pool_failure: str = "degrade"             # budget exhaustion: "degrade"
                                                 # (in-process, bit-identical)
                                                 # or "raise"
    pool_store: Optional[str] = None             # persistent artifact store
                                                 # directory (None = no store)
    plan: str = "manual"                         # knob selection: "manual"
                                                 # (this config's fields) or
                                                 # "auto" (execution planner)
    calibration: Optional[str] = None            # calibration JSON for
                                                 # plan="auto" (None = static
                                                 # heuristic fallback)
    seed: int = 0
    label: str = field(default="")

    def __post_init__(self) -> None:
        datasets.get_spec(self.dataset)  # validates the name
        if self.model_name not in ("IC", "LT"):
            raise ConfigurationError(
                f"model_name must be 'IC' or 'LT', got {self.model_name!r}"
            )
        check_positive_int(self.realizations, "realizations")
        # The engine knobs share one validator set with the CLI and the
        # execution context, so every layer rejects a bad value with the
        # same message.
        check_positive_int(self.sample_batch_size, "sample_batch_size")
        check_positive_int(self.jobs, "jobs")
        check_optional_positive_int(self.mc_batch_size, "mc_batch_size")
        check_positive_float(self.mc_tolerance, "mc_tolerance")
        if self.graph_storage not in GRAPH_STORAGE_POLICIES:
            raise ConfigurationError(
                f"graph_storage must be one of {GRAPH_STORAGE_POLICIES}, "
                f"got {self.graph_storage!r}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.plan not in ("manual", "auto"):
            raise ConfigurationError(
                f"plan must be 'manual' or 'auto', got {self.plan!r}"
            )
        if self.pool_store is not None and not str(self.pool_store).strip():
            # Path("") means the current directory — an empty --pool-store
            # would silently scatter artifacts into the working tree.
            raise ConfigurationError(
                "pool_store must be a directory path, got an empty string"
            )
        self.fault_policy()  # validates the supervision knobs
        check_fraction(self.epsilon, "epsilon")
        for fraction in self.eta_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"eta fractions must be in (0, 1], got {fraction}"
                )
        unknown = set(self.algorithms) - set(KNOWN_ALGORITHMS)
        if unknown:
            raise ConfigurationError(
                f"unknown algorithms {sorted(unknown)}; known: {KNOWN_ALGORITHMS}"
            )

    def make_model(self) -> DiffusionModel:
        """Instantiate the configured diffusion model."""
        return IndependentCascade() if self.model_name == "IC" else LinearThreshold()

    def fault_policy(self):
        """The :class:`~repro.parallel.runtime.FaultPolicy` these knobs pin.

        Built (and thereby validated) from the config's supervision fields;
        fields not surfaced here (backoff, rebuild budget, segment budget)
        keep their policy defaults.
        """
        from repro.parallel.runtime import FaultPolicy

        return FaultPolicy(
            chunk_timeout=self.chunk_timeout,
            max_retries=self.max_retries,
            on_pool_failure=self.on_pool_failure,
        )

    def make_pool_store(self):
        """The :class:`~repro.store.PoolStore` this config names (or None)."""
        if self.pool_store is None:
            return None
        from repro.store import PoolStore

        return PoolStore(self.pool_store)

    def to_context(self, graph=None) -> ExecutionContext:
        """The execution context this config describes — the single source
        of truth for engine policy in a sweep.

        :func:`repro.experiments.harness.run_sweep` builds exactly one
        context per sweep from this method and owns its lifecycle (the
        parallel runtime spawns once for all eta points); every engine
        below receives it as the one ``context=`` argument.

        With ``plan="auto"`` and a ``graph`` to inspect, the performance
        knobs (``sample_batch_size``, ``mc_batch_size``, ``jobs``,
        ``kernel_backend``) come from the execution planner
        (:mod:`repro.runtime.planner`, fed by ``calibration``) instead of
        this config's fields; correctness policy (tolerances, pool reuse,
        storage, fault policy) always comes from the config.
        """
        store = self.make_pool_store()
        if self.plan == "auto" and graph is not None:
            return ExecutionContext.from_plan(
                graph,
                self.model_name,
                calibration=self.calibration,
                mc_tolerance=self.mc_tolerance,
                reuse_pool=self.reuse_pool,
                max_samples=self.max_samples,
                graph_storage=self.graph_storage,
                fault_policy=self.fault_policy(),
                pool_store=store,
            )
        return ExecutionContext(
            sample_batch_size=self.sample_batch_size,
            mc_batch_size=self.mc_batch_size,
            mc_tolerance=self.mc_tolerance,
            reuse_pool=self.reuse_pool,
            jobs=self.jobs,
            max_samples=self.max_samples,
            graph_storage=self.graph_storage,
            kernel_backend=self.kernel_backend,
            fault_policy=self.fault_policy(),
            pool_store=store,
        )

    def build_graph(self):
        """Materialize the configured dataset graph."""
        return datasets.load_dataset(self.dataset, n=self.graph_n, seed=self.seed)

    def eta_values(self, n: int) -> tuple[int, ...]:
        """Absolute thresholds for a graph of ``n`` nodes (min 1)."""
        return tuple(max(1, int(round(fraction * n))) for fraction in self.eta_fractions)

    def scaled(self, **changes) -> ExperimentConfig:
        """Return a copy with fields replaced (convenience wrapper)."""
        return replace(self, **changes)


def paper_config(dataset: str, model_name: str = "IC") -> ExperimentConfig:
    """The paper's Section 6.1 setting for ``dataset``."""
    return ExperimentConfig(
        dataset=dataset,
        model_name=model_name,
        eta_fractions=datasets.eta_fractions_for(dataset),
        algorithms=PAPER_ALGORITHMS,
        realizations=20,
        epsilon=0.5,
        label=f"paper:{dataset}:{model_name}",
    )


def quick_config(
    dataset: str = "nethept-sim",
    model_name: str = "IC",
    graph_n: int = 400,
    realizations: int = 3,
    algorithms: Sequence[str] = ("ASTI", "ASTI-4", "AdaptIM", "ATEUC"),
    eta_fractions: Sequence[float] = (0.05, 0.15),
    max_samples: Optional[int] = 20_000,
    seed: int = 0,
) -> ExperimentConfig:
    """A minutes-not-hours profile for tests and smoke benchmarks."""
    return ExperimentConfig(
        dataset=dataset,
        model_name=model_name,
        eta_fractions=tuple(eta_fractions),
        algorithms=tuple(algorithms),
        realizations=realizations,
        epsilon=0.5,
        graph_n=graph_n,
        max_samples=max_samples,
        seed=seed,
        label=f"quick:{dataset}:{model_name}",
    )
