"""Plain-text rendering of experiment artifacts.

The benchmarks regenerate each paper table/figure as rows and series; these
helpers render them as aligned ASCII so ``pytest benchmarks/ -s`` output
reads like the paper's artifacts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned table with a header rule."""
    materialized: list[list[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render figure-style data: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            row.append(f"{float(series[name][i]):.{precision}f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_histogram(
    counts: dict[int, float],
    title: str = "",
    max_rows: int = 12,
    bar_width: int = 40,
) -> str:
    """Log-binned bar rendering of a degree distribution (Figure 3 style)."""
    if not counts:
        return title or "(empty histogram)"
    # Log-spaced bins: 1, 2, 4, 8, ... capture the power-law tail compactly.
    bins: dict[int, float] = {}
    for degree, fraction in counts.items():
        b = 1
        while b * 2 <= max(degree, 1):
            b *= 2
        bins[b] = bins.get(b, 0.0) + fraction
    rows = sorted(bins.items())[:max_rows]
    peak = max(f for _, f in rows)
    lines = [title] if title else []
    for bin_start, fraction in rows:
        bar = "#" * max(1, int(round(bar_width * fraction / peak)))
        lines.append(f"deg~{bin_start:>6}  {fraction:8.5f}  {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
