"""Experiment harness: datasets, configs, sweeps, metrics, reporting."""

from repro.experiments.config import (
    ExperimentConfig,
    KNOWN_ALGORITHMS,
    PAPER_ALGORITHMS,
    paper_config,
    quick_config,
)
from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    LARGE_ETA_FRACTIONS,
    SMALL_ETA_FRACTIONS,
    dataset_names,
    eta_fractions_for,
    get_spec,
    load_dataset,
)
from repro.experiments.harness import (
    AlgorithmOutcome,
    RunObservation,
    SweepResult,
    build_algorithm,
    run_eta_point,
    run_sweep,
    sample_shared_realizations,
)
from repro.experiments.metrics import (
    Table3Cell,
    improvement_ratio,
    overshoot_fraction,
    speedup,
    table3_cell,
)
from repro.experiments.campaign import CampaignResult, CampaignScale, run_campaign
from repro.experiments.export import (
    sweep_to_rows,
    sweep_to_summary,
    write_sweep_csv,
    write_sweep_json,
)
from repro.experiments.plotting import ascii_line_plot
from repro.experiments import figures, report

__all__ = [
    "ExperimentConfig",
    "KNOWN_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "paper_config",
    "quick_config",
    "DATASETS",
    "DatasetSpec",
    "LARGE_ETA_FRACTIONS",
    "SMALL_ETA_FRACTIONS",
    "dataset_names",
    "eta_fractions_for",
    "get_spec",
    "load_dataset",
    "AlgorithmOutcome",
    "RunObservation",
    "SweepResult",
    "build_algorithm",
    "run_eta_point",
    "run_sweep",
    "sample_shared_realizations",
    "Table3Cell",
    "improvement_ratio",
    "overshoot_fraction",
    "speedup",
    "table3_cell",
    "CampaignResult",
    "CampaignScale",
    "run_campaign",
    "sweep_to_rows",
    "sweep_to_summary",
    "write_sweep_csv",
    "write_sweep_json",
    "ascii_line_plot",
    "figures",
    "report",
]
