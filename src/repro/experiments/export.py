"""Export experiment results to CSV and JSON.

The harness objects (:class:`~repro.experiments.harness.SweepResult`,
:class:`~repro.experiments.harness.AlgorithmOutcome`) are in-memory Python;
these functions serialize them so external plotting tools can regenerate
the paper's figures from the exact measured numbers (the benchmarks print
ASCII, but a paper-grade reproduction wants the raw points).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.experiments.harness import SweepResult

PathLike = Union[str, Path]

#: Column order of the per-run CSV rows.
RUN_COLUMNS = (
    "dataset",
    "model",
    "eta",
    "algorithm",
    "realization",
    "seed_count",
    "spread",
    "achieved",
    "seconds",
)


def sweep_to_rows(sweep: SweepResult) -> list[dict[str, object]]:
    """Flatten a sweep into one dict per (eta, algorithm, realization)."""
    rows: list[dict[str, object]] = []
    for eta in sweep.eta_values:
        for algorithm, outcome in sweep.outcomes[eta].items():
            for run in outcome.runs:
                rows.append(
                    {
                        "dataset": sweep.config.dataset,
                        "model": sweep.config.model_name,
                        "eta": eta,
                        "algorithm": algorithm,
                        "realization": run.realization_index,
                        "seed_count": run.seed_count,
                        "spread": run.spread,
                        "achieved": run.achieved,
                        "seconds": run.seconds,
                    }
                )
    return rows


def write_sweep_csv(sweep: SweepResult, path: PathLike) -> int:
    """Write the flattened per-run rows as CSV; returns the row count."""
    rows = sweep_to_rows(sweep)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(RUN_COLUMNS))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def sweep_to_summary(sweep: SweepResult) -> dict[str, object]:
    """A JSON-ready aggregate: mean metrics per (eta, algorithm)."""
    points = []
    for eta in sweep.eta_values:
        for algorithm, outcome in sweep.outcomes[eta].items():
            points.append(
                {
                    "eta": eta,
                    "algorithm": algorithm,
                    "mean_seed_count": outcome.mean_seed_count,
                    "mean_spread": outcome.mean_spread,
                    "mean_seconds": outcome.mean_seconds,
                    "feasibility_rate": outcome.feasibility_rate,
                    "runs": len(outcome.runs),
                }
            )
    return {
        "dataset": sweep.config.dataset,
        "model": sweep.config.model_name,
        "eta_fractions": list(sweep.config.eta_fractions),
        "realizations": sweep.config.realizations,
        "epsilon": sweep.config.epsilon,
        "points": points,
    }


def write_sweep_json(sweep: SweepResult, path: PathLike, indent: int = 2) -> None:
    """Write the aggregate summary as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sweep_to_summary(sweep), handle, indent=indent)
        handle.write("\n")


def read_sweep_json(path: PathLike) -> dict[str, object]:
    """Load a summary previously written by :func:`write_sweep_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
