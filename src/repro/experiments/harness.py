"""The multi-realization comparison harness.

Reproduces the paper's measurement protocol (Section 6): sample a fixed set
of ground-truth realizations per dataset (the paper uses 20), run every
algorithm against the *same* realizations, and report averages.

Adaptive algorithms (ASTI variants, AdaptIM) run once per realization.
Non-adaptive ATEUC selects its seed set once per ``(graph, eta)`` and is
then *evaluated* on each realization — which is where the N/A entries of
Table 3 come from: a fixed set can undershoot ``eta`` on some worlds.

With ``jobs > 1`` (``ExperimentConfig.jobs`` / ``run_eta_point``'s
``runtime``) the independent realizations shard across the parallel
runtime's worker processes over the shared-memory graph and stacked
live-edge worlds: adaptive sessions run in contiguous blocks through the
same ``run_batch`` engine, non-adaptive evaluation replays the selected
set per world in parallel, and CELF's CRN sweeps fan out inside the
selection itself.  Every session keeps the per-realization stream spawned
from the harness seed, so seed counts, spreads, and marginal series are
bit-identical for any worker count (including the in-process ``jobs=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.baselines.adaptim import AdaptIM
from repro.baselines.ateuc import ATEUC
from repro.baselines.celf import CELFMinimizer
from repro.core.asti import ASTI
from repro.diffusion.base import DiffusionModel
from repro.diffusion.realization import Realization
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.graph.digraph import DiGraph
from repro.parallel.shm import realizations_shareable
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.utils.rng import spawn_generators, spawn_seed_sequences
from repro.utils.stats import summarize

#: Roster entries that select one seed set up front and are then merely
#: *evaluated* on each ground-truth realization.
NON_ADAPTIVE_ALGORITHMS = ("ATEUC", "CELF")

#: Monte-Carlo cascades per estimate for the CELF roster entry; modest on
#: purpose — CELF is the historical baseline, not a headline competitor.
CELF_HARNESS_SAMPLES = 100


@dataclass(frozen=True)
class RunObservation:
    """One algorithm on one ground-truth realization."""

    realization_index: int
    seed_count: int
    spread: int
    achieved: bool
    seconds: float
    marginal_spreads: tuple[int, ...] = ()


@dataclass
class AlgorithmOutcome:
    """All runs of one algorithm at one ``(graph, eta)`` point."""

    algorithm: str
    eta: int
    runs: list[RunObservation] = field(default_factory=list)

    @property
    def mean_seed_count(self) -> float:
        return summarize([r.seed_count for r in self.runs]).mean

    @property
    def mean_spread(self) -> float:
        return summarize([r.spread for r in self.runs]).mean

    @property
    def mean_seconds(self) -> float:
        return summarize([r.seconds for r in self.runs]).mean

    @property
    def feasibility_rate(self) -> float:
        """Fraction of realizations on which ``eta`` was actually reached."""
        return sum(r.achieved for r in self.runs) / len(self.runs)

    @property
    def always_feasible(self) -> bool:
        return all(r.achieved for r in self.runs)


def build_algorithm(
    label: str,
    model: DiffusionModel,
    epsilon: float,
    max_samples: Optional[int],
    sample_batch_size=UNSET,
    mc_batch_size=UNSET,
    reuse_pool=UNSET,
    runtime=UNSET,
    context: Optional[ExecutionContext] = None,
):
    """Instantiate a roster entry from its label.

    The entry consumes the engine policy from ``context`` (legacy per-knob
    kwargs still resolve through the deprecation shim).  Only the CELF
    entry sees the context's parallel runtime (its CRN sweeps are worker-
    count invariant); the adaptive entries and ATEUC parallelize at the
    realization level instead, so handing their pool growth a runtime here
    would change their sampling streams relative to a ``jobs=1`` run —
    they receive ``context.sequential()``.
    """
    context, _ = resolve_context(
        context,
        "build_algorithm",
        runtime=runtime,
        sample_batch_size=sample_batch_size,
        mc_batch_size=mc_batch_size,
        reuse_pool=reuse_pool,
    )
    sequential = context.sequential()
    if label == "ASTI":
        return ASTI(
            model,
            epsilon=epsilon,
            batch_size=1,
            max_samples=max_samples,
            context=sequential,
        )
    if label.startswith("ASTI-"):
        batch = int(label.split("-", 1)[1])
        return ASTI(
            model,
            epsilon=epsilon,
            batch_size=batch,
            max_samples=max_samples,
            context=sequential,
        )
    if label == "AdaptIM":
        return AdaptIM(
            model,
            epsilon=epsilon,
            max_samples=max_samples,
            context=sequential,
        )
    if label == "ATEUC":
        return ATEUC(model, context=sequential)
    if label == "CELF":
        return CELFMinimizer(
            model,
            samples=CELF_HARNESS_SAMPLES,
            context=context,
        )
    raise ConfigurationError(f"unknown algorithm label {label!r}")


def sample_shared_realizations(
    graph: DiGraph,
    model: DiffusionModel,
    count: int,
    seed: int,
    context: Optional[ExecutionContext] = None,
) -> list[Realization]:
    """The shared ground-truth worlds every algorithm is scored against.

    With a ``context`` carrying a :class:`~repro.store.PoolStore`, the
    stacked worlds are cached on disk keyed by (graph fingerprint, model,
    count, seed) — each stream is freshly spawned from ``seed``, so the
    integer seed *is* the complete randomness recipe and a hit reconstructs
    the exact realization objects.
    """
    store = context.pool_store if context is not None else None
    store_key = None
    if store is not None:
        from repro.diffusion.realization import ICRealization, LTRealization
        from repro.store import artifact_key, graph_fingerprint, model_key

        store_key = artifact_key(
            "worlds",
            {
                "graph": graph_fingerprint(graph),
                "model": model_key(model),
                "count": int(count),
                "seed": int(seed),
            },
        )
        cached = store.load(store_key)
        if cached is not None:
            arrays, meta = cached
            kind = meta.get("world_kind")
            worlds = arrays.get("worlds")
            if worlds is not None and len(worlds) == count:
                if kind == "ic":
                    context.tally("pool_store_world_hits")
                    return [ICRealization(graph, row) for row in worlds]
                if kind == "lt":
                    context.tally("pool_store_world_hits")
                    return [LTRealization(graph, row) for row in worlds]
    streams = spawn_generators(seed, count)
    realizations = [model.sample_realization(graph, rng) for rng in streams]
    if store_key is not None and realizations:
        from repro.diffusion.realization import ICRealization, LTRealization

        first = realizations[0]
        if isinstance(first, ICRealization):
            store.save(
                store_key,
                {"worlds": np.stack([r.live_edges for r in realizations])},
                {"world_kind": "ic"},
            )
        elif isinstance(first, LTRealization):
            store.save(
                store_key,
                {"worlds": np.stack([r.chosen_source for r in realizations])},
                {"world_kind": "lt"},
            )
    return realizations


def run_eta_point(
    graph: DiGraph,
    model: DiffusionModel,
    eta: int,
    algorithms: Sequence[str],
    realizations: list[Realization],
    epsilon: float = 0.5,
    max_samples: Optional[int] = None,
    seed: int = 0,
    sample_batch_size=UNSET,
    mc_batch_size=UNSET,
    reuse_pool=UNSET,
    runtime=UNSET,
    context: Optional[ExecutionContext] = None,
) -> dict[str, "AlgorithmOutcome"]:
    """Compare ``algorithms`` at a single threshold ``eta``.

    The engine policy comes from ``context`` (legacy per-knob kwargs keep
    working through the deprecation shim).  With a multi-worker runtime on
    the context, each algorithm's independent realizations run as
    contiguous shards on the worker pool; results are bit-identical to
    running without one.
    """
    context, _ = resolve_context(
        context,
        "run_eta_point",
        runtime=runtime,
        sample_batch_size=sample_batch_size,
        mc_batch_size=mc_batch_size,
        reuse_pool=reuse_pool,
    )
    outcomes: dict[str, AlgorithmOutcome] = {}
    for label in algorithms:
        spec = dict(
            label=label,
            model=model,
            epsilon=epsilon,
            max_samples=max_samples,
        )
        outcome = AlgorithmOutcome(algorithm=label, eta=eta)
        if label in NON_ADAPTIVE_ALGORITHMS:
            algorithm = build_algorithm(**spec, context=context)
            _run_non_adaptive(
                algorithm, graph, eta, realizations, seed, outcome,
                context.runtime,
            )
        else:
            # Worker shards rebuild the algorithm from the spec, so the
            # pickled context must already be the runtime-free sequential
            # one (a context never ships its runtime across processes).
            spec["context"] = context.sequential()
            _run_adaptive(
                spec, graph, eta, realizations, seed, outcome, context.runtime
            )
        outcomes[label] = outcome
    return outcomes


def _shards(count: int, shard_count: int) -> list[np.ndarray]:
    """Contiguous realization-index blocks, one per dispatched task."""
    return np.array_split(np.arange(count), min(shard_count, count))


def _use_workers(runtime, realizations) -> bool:
    return (
        runtime is not None
        and runtime.parallel
        and len(realizations) > 1
        and realizations_shareable(realizations)
    )


def _run_adaptive(
    spec, graph, eta, realizations, seed, outcome, runtime=None
) -> None:
    # Each realization gets an independent sampling stream derived from the
    # harness seed, so reruns are bit-identical — identical between the
    # batched engine and the sequential fallback (which consume the same
    # per-session streams in the same per-session order), and identical
    # across worker counts (shard boundaries never move a session's stream).
    seqs = spawn_seed_sequences(seed + 1, len(realizations))
    if _use_workers(runtime, realizations):
        from repro.parallel.tasks import worker_adaptive_shard

        graph_handle = runtime.publish_graph(graph)
        worlds_handle = runtime.publish_realizations(realizations)
        shard_results = runtime.map_ordered(
            worker_adaptive_shard,
            [
                (
                    graph_handle,
                    worlds_handle,
                    shard.tolist(),
                    spec,
                    eta,
                    [seqs[i] for i in shard],
                )
                for shard in _shards(len(realizations), runtime.jobs)
            ],
        )
        rows = [row for shard in shard_results for row in shard]
    else:
        from repro.parallel.tasks import adaptive_shard

        rows = adaptive_shard(graph, realizations, spec, eta, seqs)
    for index, (seed_count, spread, seconds, marginals) in enumerate(rows):
        outcome.runs.append(
            RunObservation(
                realization_index=index,
                seed_count=seed_count,
                spread=spread,
                achieved=spread >= eta,
                seconds=seconds,
                marginal_spreads=marginals,
            )
        )


def _run_non_adaptive(
    algorithm, graph, eta, realizations, seed, outcome, runtime=None
) -> None:
    # One selection, evaluated on every world (evaluation shards across the
    # runtime's workers; each world's replay is deterministic either way).
    result = algorithm.run(graph, eta, seed=seed + 2)
    if _use_workers(runtime, realizations):
        from repro.parallel.tasks import worker_spread_shard

        graph_handle = runtime.publish_graph(graph)
        worlds_handle = runtime.publish_realizations(realizations)
        shard_spreads = runtime.map_ordered(
            worker_spread_shard,
            [
                (graph_handle, worlds_handle, shard.tolist(), result.seeds)
                for shard in _shards(len(realizations), runtime.jobs)
            ],
        )
        spreads = [s for shard in shard_spreads for s in shard]
    else:
        spreads = [phi.spread(result.seeds) for phi in realizations]
    for index, spread in enumerate(spreads):
        outcome.runs.append(
            RunObservation(
                realization_index=index,
                seed_count=result.seed_count,
                spread=spread,
                achieved=spread >= eta,
                seconds=result.seconds,
            )
        )


@dataclass
class SweepResult:
    """A full threshold sweep: ``outcomes[eta][algorithm]``."""

    config: ExperimentConfig
    eta_values: tuple[int, ...]
    outcomes: dict[int, dict[str, AlgorithmOutcome]]

    def series(self, algorithm: str, metric: str) -> list[float]:
        """Extract a per-threshold series for one algorithm.

        ``metric`` is one of ``"seeds"``, ``"seconds"``, ``"spread"``,
        ``"feasibility"`` — matching Figures 4/5, 6/7, 9, and Table 3's
        N/A marks respectively.
        """
        getter = {
            "seeds": lambda o: o.mean_seed_count,
            "seconds": lambda o: o.mean_seconds,
            "spread": lambda o: o.mean_spread,
            "feasibility": lambda o: o.feasibility_rate,
        }
        try:
            extract = getter[metric]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {metric!r}; expected one of {sorted(getter)}"
            ) from None
        return [extract(self.outcomes[eta][algorithm]) for eta in self.eta_values]


def run_sweep(config: ExperimentConfig) -> SweepResult:
    """Run the full paper-style sweep described by ``config``.

    ``config.to_context()`` is the single source of truth for engine
    policy: one :class:`~repro.runtime.context.ExecutionContext` is built
    here, owns the sweep's parallel runtime (worker processes spawn once
    for every eta point, the graph maps into shared memory once), records
    the graph's storage decision in its diagnostics, and is closed when
    the sweep finishes.  The sweep's numbers are bit-identical for any
    ``jobs`` value.
    """
    model = config.make_model()
    outcomes: dict[int, dict[str, AlgorithmOutcome]] = {}
    # The graph is built before the context so ``plan="auto"`` configs can
    # hand its statistics to the execution planner.
    built_graph = config.build_graph()
    with config.to_context(graph=built_graph) as context:
        graph = context.apply_storage(built_graph)
        context.note_graph(graph)
        realizations = sample_shared_realizations(
            graph, model, config.realizations, seed=config.seed + 10,
            context=context,
        )
        eta_values = config.eta_values(graph.n)
        for eta in eta_values:
            outcomes[eta] = run_eta_point(
                graph,
                model,
                eta,
                config.algorithms,
                realizations,
                epsilon=config.epsilon,
                max_samples=config.max_samples,
                seed=config.seed,
                context=context,
            )
        # Snapshot the kernel decisions (backend resolutions, per-driver
        # call counts, JIT time) after the last eta point so the sweep's
        # diagnostics describe the whole run, next to note_graph above.
        context.note_kernels()
        # And the supervisor's recovery activity: a sweep that survived
        # worker crashes reports the same results as a clean one, so the
        # fault_* counters are the only place the recovery shows.
        context.note_faults()
        # And the persistent store's hit/miss/eviction activity: a warm
        # run is bit-identical to a cold one, so these counters are the
        # only place the reuse shows.
        context.note_store()
    return SweepResult(config=config, eta_values=eta_values, outcomes=outcomes)
