"""One driver per paper artifact (Tables 2-3, Figures 3-10).

Each function regenerates the data behind an artifact and returns it in a
structured form; the corresponding module under ``benchmarks/`` times it,
prints it via :mod:`repro.experiments.report`, and asserts the qualitative
shape the paper reports.  Every driver takes size knobs so tests can run it
in seconds while a patient user can push toward paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.core.asti import ASTI
from repro.baselines.ateuc import ATEUC
from repro.experiments import datasets
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    SweepResult,
    run_sweep,
    sample_shared_realizations,
)
from repro.experiments.metrics import Table3Cell, table3_cell
from repro.graph import analysis
from repro.utils.validation import check_positive_int

# ----------------------------------------------------------------------
# Table 2 / Figure 3: dataset statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """A dataset summary next to the paper's published numbers."""

    dataset: str
    paper_name: str
    n: int
    m: int
    average_degree: float
    lwcc_size: int
    paper_n: int
    paper_m: int


def table2(
    names: Sequence[str] = None,
    n_override: Optional[dict[str, int]] = None,
    seed: int = 0,
) -> list[Table2Row]:
    """Regenerate Table 2 for the synthetic stand-in datasets."""
    names = list(names) if names is not None else datasets.dataset_names()
    rows: list[Table2Row] = []
    for name in names:
        spec = datasets.get_spec(name)
        n = (n_override or {}).get(name)
        graph = spec.build(n=n, seed=seed)
        summary = analysis.summarize_graph(graph, name=name)
        rows.append(
            Table2Row(
                dataset=name,
                paper_name=spec.paper_name,
                n=summary.n,
                m=summary.m,
                average_degree=summary.average_degree,
                lwcc_size=summary.lwcc_size,
                paper_n=spec.paper_n,
                paper_m=spec.paper_m,
            )
        )
    return rows


def figure3(
    names: Sequence[str] = None,
    n_override: Optional[dict[str, int]] = None,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Degree distributions (fraction of nodes per degree) per dataset."""
    names = list(names) if names is not None else datasets.dataset_names()
    distributions: dict[str, dict[int, float]] = {}
    for name in names:
        n = (n_override or {}).get(name)
        graph = datasets.load_dataset(name, n=n, seed=seed)
        distributions[name] = analysis.degree_distribution(graph, direction="total")
    return distributions


# ----------------------------------------------------------------------
# Figures 4-7 and 9: the threshold sweeps
# ----------------------------------------------------------------------

# repro-lint: disable=REP006 -- declarative entry point mirroring ExperimentConfig's field
def threshold_sweep(
    dataset: str = "nethept-sim",
    model_name: str = "IC",
    graph_n: Optional[int] = None,
    realizations: int = 20,
    algorithms: Sequence[str] = ("ASTI", "ASTI-2", "ASTI-4", "ASTI-8", "AdaptIM", "ATEUC"),
    eta_fractions: Optional[Sequence[float]] = None,
    max_samples: Optional[int] = None,
    seed: int = 0,
) -> SweepResult:
    """The sweep feeding Figures 4/5 (IC) and 6/7 (LT) and Figure 9.

    A single run produces seeds, times, and spreads per (eta, algorithm), so
    the three figure families share it.
    """
    config = ExperimentConfig(
        dataset=dataset,
        model_name=model_name,
        eta_fractions=tuple(
            eta_fractions
            if eta_fractions is not None
            else datasets.eta_fractions_for(dataset)
        ),
        algorithms=tuple(algorithms),
        realizations=realizations,
        graph_n=graph_n,
        max_samples=max_samples,
        seed=seed,
        label=f"sweep:{dataset}:{model_name}",
    )
    return run_sweep(config)


def figure4(**kwargs) -> SweepResult:
    """Seeds vs threshold under IC."""
    kwargs.setdefault("model_name", "IC")
    return threshold_sweep(**kwargs)


def figure6(**kwargs) -> SweepResult:
    """Seeds vs threshold under LT."""
    kwargs.setdefault("model_name", "LT")
    return threshold_sweep(**kwargs)


# Figures 5/7 (times) and 9 (spread) read the same SweepResult through
# ``SweepResult.series(algorithm, "seconds" | "spread")``; no separate run.
figure5 = figure4
figure7 = figure6
figure9 = figure4


# ----------------------------------------------------------------------
# Table 3: improvement ratio of ASTI over ATEUC
# ----------------------------------------------------------------------

def table3(
    sweep: SweepResult,
    baseline: str = "ATEUC",
    improved: str = "ASTI",
) -> list[Table3Cell]:
    """Improvement-ratio cells (with N/A feasibility marks) from a sweep."""
    cells: list[Table3Cell] = []
    for fraction, eta in zip(sweep.config.eta_fractions, sweep.eta_values):
        outcomes = sweep.outcomes[eta]
        cells.append(table3_cell(fraction, outcomes[baseline], outcomes[improved]))
    return cells


# ----------------------------------------------------------------------
# Figure 8: per-realization spread distribution, ASTI vs ATEUC
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure8Result:
    """Per-realization spreads on one dataset/model at one threshold."""

    dataset: str
    model_name: str
    eta: int
    asti_spreads: tuple[int, ...]
    ateuc_spreads: tuple[int, ...]

    @property
    def ateuc_failures(self) -> int:
        """Realizations on which ATEUC's fixed seed set misses eta."""
        return sum(1 for s in self.ateuc_spreads if s < self.eta)

    @property
    def asti_failures(self) -> int:
        """Always 0 by construction; reported for the comparison table."""
        return sum(1 for s in self.asti_spreads if s < self.eta)


# repro-lint: disable=REP006 -- declarative entry point mirroring ExperimentConfig's field
def figure8(
    dataset: str = "nethept-sim",
    model_name: str = "IC",
    graph_n: Optional[int] = None,
    realizations: int = 20,
    eta_fraction: float = 0.01,
    max_samples: Optional[int] = None,
    seed: int = 0,
) -> Figure8Result:
    """Spread per realization for ASTI and ATEUC (paper uses NetHEPT)."""
    check_positive_int(realizations, "realizations")
    config = ExperimentConfig(
        dataset=dataset,
        model_name=model_name,
        eta_fractions=(eta_fraction,),
        algorithms=("ASTI", "ATEUC"),
        realizations=realizations,
        graph_n=graph_n,
        max_samples=max_samples,
        seed=seed,
    )
    sweep = run_sweep(config)
    eta = sweep.eta_values[0]
    outcomes = sweep.outcomes[eta]
    return Figure8Result(
        dataset=dataset,
        model_name=model_name,
        eta=eta,
        asti_spreads=tuple(r.spread for r in outcomes["ASTI"].runs),
        ateuc_spreads=tuple(r.spread for r in outcomes["ATEUC"].runs),
    )


# ----------------------------------------------------------------------
# Figure 10: marginal truncated spread by seed index
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure10Result:
    """Marginal spread of each successive ASTI seed, per realization."""

    dataset: str
    model_name: str
    eta: int
    per_realization: tuple[tuple[int, ...], ...]

    def mean_by_index(self) -> list[float]:
        """Average marginal spread at each seed index (ragged-aware)."""
        longest = max((len(seq) for seq in self.per_realization), default=0)
        means: list[float] = []
        for i in range(longest):
            values = [seq[i] for seq in self.per_realization if len(seq) > i]
            means.append(sum(values) / len(values))
        return means


# repro-lint: disable=REP006 -- declarative entry point mirroring ExperimentConfig's field
def figure10(
    dataset: str = "nethept-sim",
    model_name: str = "IC",
    graph_n: Optional[int] = None,
    realizations: int = 20,
    eta_fraction: float = 0.2,
    max_samples: Optional[int] = None,
    seed: int = 0,
) -> Figure10Result:
    """Record ASTI's per-seed marginal spreads at the largest threshold."""
    graph = datasets.load_dataset(dataset, n=graph_n, seed=seed)
    config = ExperimentConfig(dataset=dataset, model_name=model_name)
    model = config.make_model()
    eta = max(1, int(round(eta_fraction * graph.n)))
    worlds = sample_shared_realizations(graph, model, realizations, seed=seed + 10)
    asti = ASTI(model, epsilon=0.5, max_samples=max_samples)
    series: list[tuple[int, ...]] = []
    for index, phi in enumerate(worlds):
        result = asti.run(graph, eta, realization=phi, seed=seed + 100 + index)
        series.append(tuple(result.marginal_spreads))
    return Figure10Result(
        dataset=dataset,
        model_name=model_name,
        eta=eta,
        per_realization=tuple(series),
    )
