"""ASCII line charts for figure-style series.

The paper's Figures 4-10 are line charts; the report module renders their
data as tables, and this module renders them as terminal plots so a
benchmark run visually resembles the artifact it reproduces::

    seeds
    9.33 |                                            A
         |
         |                          A
    2.00 | a A
         +--------------------------------------------
           0.02                     0.06         0.12

Pure string manipulation, no plotting dependencies; log-scale support for
the running-time figures whose y-axes span decades.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

_DEFAULT_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def ascii_line_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render one or more series as a character plot.

    Each series gets a marker letter (legend at the bottom); coinciding
    points show the later series' marker.  ``log_y`` switches the y-axis
    to base-10 log scale, clamping non-positive values to the smallest
    positive one.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("plot must be at least 16x4 characters")
    points = len(x_values)
    for name, values in series.items():
        if len(values) != points:
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, x has {points}"
            )
    if points == 0:
        raise ConfigurationError("need at least one x value")

    flat = [float(v) for values in series.values() for v in values]
    positive = [v for v in flat if v > 0]
    if log_y:
        floor = min(positive) if positive else 1e-9
        transform = lambda v: math.log10(max(v, floor))  # noqa: E731
    else:
        transform = float
    y_min = min(transform(v) for v in flat)
    y_max = max(transform(v) for v in flat)
    y_span = (y_max - y_min) or 1.0
    x_min = float(min(x_values))
    x_span = (float(max(x_values)) - x_min) or 1.0

    grid: list[list[str]] = [[" "] * width for _ in range(height)]
    for series_index, (_name, values) in enumerate(series.items()):
        marker = _DEFAULT_MARKERS[series_index % len(_DEFAULT_MARKERS)]
        for x, y in zip(x_values, values):
            col = int(round((float(x) - x_min) / x_span * (width - 1)))
            row = int(round((transform(y) - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    top_label = _format_axis_value(y_max, log_y)
    bottom_label = _format_axis_value(y_min, log_y)
    label_width = max(len(top_label), len(bottom_label))
    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width
        + "  "
        + str(x_values[0])
        + str(x_values[-1]).rjust(width - len(str(x_values[0])) - 1)
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{_DEFAULT_MARKERS[i % len(_DEFAULT_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def _format_axis_value(value: float, log_y: bool) -> str:
    if log_y:
        return f"1e{value:.1f}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"
