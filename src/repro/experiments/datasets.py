"""The dataset registry.

The paper evaluates on four SNAP graphs (Table 2):

=============  =======  ======  ==========  =========  ==========
Dataset        n        m       type        avg. deg.  LWCC size
=============  =======  ======  ==========  =========  ==========
NetHEPT        15.2K    31.4K   undirected  4.18       6.80K
Epinions       132K     841K    directed    13.4       119K
Youtube        1.13M    2.99M   undirected  5.29       1.13M
LiveJournal    4.85M    69.0M   directed    28.5       4.84M
=============  =======  ======  ==========  =========  ==========

Those graphs are unavailable offline, and pure-Python RR sampling at
millions of nodes is infeasible, so the registry builds *synthetic
stand-ins* with matched shape statistics — same directedness, similar
average degree, power-law degree tail (Figure 3), and the paper's LWCC
fraction (NetHEPT is only 45% connected; the social networks are ~100%) —
scaled down by roughly three orders of magnitude.

Two calibrations keep the scaled graphs in the paper's *operating regime*
(both documented in DESIGN.md):

* **Fragmentation** — nodes outside the LWCC sit in 2-4 node components,
  so reaching a large ``eta`` requires seeding many components, as on real
  NetHEPT.
* **Damped weighted cascade** — ``p(u, v) = gamma / indeg(v)`` with a
  per-dataset ``gamma``.  Plain weighted cascade (``gamma = 1``) is
  super-critical on a small dense core: one seed would reach 10-20% of the
  graph and every seed-count figure would degenerate to 1-5 seeds.  The
  damping restores the paper's per-seed spread *fraction* (a seed reaches
  ~1-2% of nodes) so Figures 4-10 exercise the same multi-round dynamics.
  ``gamma <= 1`` remains a valid LT weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.graph import generators, weighting
from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator, spawn_generators
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in."""

    name: str
    paper_name: str
    paper_n: int
    paper_m: int
    directed: bool
    default_n: int
    target_avg_degree: float
    lwcc_fraction: float
    damping: float
    core_builder: Callable[[int, float, RandomSource], DiGraph]

    def build(self, n: int = None, seed: RandomSource = 0) -> DiGraph:
        """Materialize the dataset with damped weighted-cascade weights.

        ``n`` overrides the default size (tests and benchmarks shrink the
        graphs); ``seed`` defaults to 0 so every run sees the same graph
        unless the caller opts into variation.
        """
        size = self.default_n if n is None else n
        check_positive_int(size, "n")
        core_rng, fragment_rng = spawn_generators(as_generator(seed), 2)
        core_n = max(2, int(round(self.lwcc_fraction * size)))
        core = self.core_builder(core_n, self.target_avg_degree, core_rng)
        topology = generators.attach_fragments(
            core, size, seed=fragment_rng, directed=self.directed
        )
        return weighting.scaled_cascade(topology, self.damping)


def _collaboration(n: int, avg_degree: float, seed: RandomSource) -> DiGraph:
    """Undirected preferential attachment — NetHEPT/Youtube-like cores."""
    # Each undirected edge contributes 2 to the total degree.
    per_node = max(1, round(avg_degree / 2))
    return generators.preferential_attachment(n, per_node, seed=seed, directed=False)


def _directed_social(n: int, avg_degree: float, seed: RandomSource) -> DiGraph:
    """Directed Chung-Lu power law — Epinions/LiveJournal-like cores."""
    return generators.chung_lu_power_law(
        n, avg_degree, exponent=2.3, seed=seed, directed=True
    )


_SPECS: list[DatasetSpec] = [
    DatasetSpec(
        name="nethept-sim",
        paper_name="NetHEPT",
        paper_n=15_200,
        paper_m=31_400,
        directed=False,
        default_n=1_200,
        target_avg_degree=4.18,
        lwcc_fraction=0.45,     # paper: LWCC 6.80K of 15.2K
        damping=0.6,
        core_builder=_collaboration,
    ),
    DatasetSpec(
        name="epinions-sim",
        paper_name="Epinions",
        paper_n=132_000,
        paper_m=841_000,
        directed=True,
        default_n=2_000,
        target_avg_degree=13.4,
        lwcc_fraction=0.90,     # paper: LWCC 119K of 132K
        damping=0.5,
        core_builder=_directed_social,
    ),
    DatasetSpec(
        name="youtube-sim",
        paper_name="Youtube",
        paper_n=1_130_000,
        paper_m=2_990_000,
        directed=False,
        default_n=2_400,
        target_avg_degree=5.29,
        lwcc_fraction=1.0,      # paper: LWCC ~ n
        damping=0.5,
        core_builder=_collaboration,
    ),
    DatasetSpec(
        name="livejournal-sim",
        paper_name="LiveJournal",
        paper_n=4_850_000,
        paper_m=69_000_000,
        directed=True,
        default_n=2_800,
        target_avg_degree=20.0,  # paper: 28.5; tempered for pure Python
        lwcc_fraction=1.0,       # paper: LWCC ~ n
        damping=0.5,
        core_builder=_directed_social,
    ),
]

DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

#: The paper's large-eta sweep (NetHEPT / Epinions / Youtube, Section 6.1).
LARGE_ETA_FRACTIONS = (0.01, 0.05, 0.10, 0.15, 0.20)

#: The tailored small-eta sweep used for LiveJournal.
SMALL_ETA_FRACTIONS = (0.01, 0.02, 0.03, 0.04, 0.05)


def dataset_names() -> list[str]:
    """Registered dataset names in paper order."""
    return [spec.name for spec in _SPECS]


def get_spec(name: str) -> DatasetSpec:
    """Look up a spec; raises with the available names on a miss."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def load_dataset(name: str, n: int = None, seed: RandomSource = 0) -> DiGraph:
    """Build a registered dataset graph (damped weighted cascade applied)."""
    return get_spec(name).build(n=n, seed=seed)


def eta_fractions_for(name: str):
    """The paper's threshold sweep for a dataset (Section 6.1)."""
    return SMALL_ETA_FRACTIONS if name == "livejournal-sim" else LARGE_ETA_FRACTIONS
