"""Full measurement campaigns: every dataset x model x figure in one call.

:func:`run_campaign` drives the complete paper reproduction — the sweeps
behind Figures 4-7 and 9, Table 3's ratio cells, and Figure 8's feasibility
counts — across a configurable dataset/model grid, and renders a Markdown
report of paper-expected vs. measured shapes.  ``EXPERIMENTS.md`` at the
repository root is a (hand-annotated) product of this runner.

Scale is controlled by one :class:`CampaignScale` object so "CI smoke",
"laptop evening", and "as close to paper as pure Python gets" are each a
single preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.experiments import datasets
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import table3
from repro.experiments.harness import SweepResult, run_sweep
from repro.experiments.report import format_series, format_table
from repro.utils.timing import Stopwatch, format_seconds


@dataclass(frozen=True)
class CampaignScale:
    """Knobs trading fidelity for wall-clock."""

    graph_n: Optional[int]          # None = dataset defaults
    realizations: int
    eta_fractions: Optional[tuple[float, ...]]  # None = paper sweep
    max_samples: Optional[int]
    algorithms: tuple[str, ...] = ("ASTI", "ASTI-4", "ASTI-8", "AdaptIM", "ATEUC")

    @classmethod
    def smoke(cls) -> CampaignScale:
        """Seconds-per-cell: CI and tests."""
        return cls(
            graph_n=220,
            realizations=2,
            eta_fractions=(0.03, 0.1),
            max_samples=8_000,
            algorithms=("ASTI", "ASTI-4", "ATEUC"),
        )

    @classmethod
    def laptop(cls) -> CampaignScale:
        """Minutes-per-cell: a faithful relative comparison."""
        return cls(
            graph_n=None,
            realizations=10,
            eta_fractions=None,
            max_samples=60_000,
        )


@dataclass
class CampaignResult:
    """All sweeps of a campaign, keyed by (dataset, model)."""

    scale: CampaignScale
    sweeps: dict[tuple[str, str], SweepResult] = field(default_factory=dict)
    seconds: float = 0.0

    def markdown_report(self) -> str:
        """Render the campaign as a Markdown document."""
        lines: list[str] = ["# Campaign report", ""]
        lines.append(
            f"_{len(self.sweeps)} sweeps, {format_seconds(self.seconds)} total._"
        )
        for (dataset, model), sweep in self.sweeps.items():
            lines.append("")
            lines.append(f"## {dataset} / {model}")
            fractions = list(sweep.config.eta_fractions)
            for metric, label in (
                ("seeds", "Seeds (Figures 4/6)"),
                ("seconds", "Seconds (Figures 5/7)"),
                ("spread", "Spread (Figure 9)"),
            ):
                series = {
                    alg: sweep.series(alg, metric)
                    for alg in sweep.config.algorithms
                }
                lines.append("")
                lines.append("```")
                lines.append(
                    format_series("eta/n", fractions, series, title=label, precision=3)
                )
                lines.append("```")
            cells = table3(sweep) if "ATEUC" in sweep.config.algorithms else []
            if cells:
                lines.append("")
                lines.append("```")
                lines.append(
                    format_table(
                        ["eta/n", "ASTI improvement over ATEUC"],
                        [[c.eta_fraction, c.rendered()] for c in cells],
                        title="Table 3 cells",
                    )
                )
                lines.append("```")
        return "\n".join(lines) + "\n"


def run_campaign(
    dataset_names: Sequence[str] = ("nethept-sim",),
    models: Sequence[str] = ("IC", "LT"),
    scale: CampaignScale = None,
    seed: int = 0,
) -> CampaignResult:
    """Run every (dataset, model) sweep in the grid."""
    scale = scale if scale is not None else CampaignScale.smoke()
    result = CampaignResult(scale=scale)
    timer = Stopwatch()
    with timer:
        for dataset in dataset_names:
            fractions = (
                scale.eta_fractions
                if scale.eta_fractions is not None
                else datasets.eta_fractions_for(dataset)
            )
            for model in models:
                config = ExperimentConfig(
                    dataset=dataset,
                    model_name=model,
                    eta_fractions=fractions,
                    algorithms=scale.algorithms,
                    realizations=scale.realizations,
                    graph_n=scale.graph_n,
                    max_samples=scale.max_samples,
                    seed=seed,
                    label=f"campaign:{dataset}:{model}",
                )
                result.sweeps[(dataset, model)] = run_sweep(config)
    result.seconds = timer.elapsed
    return result
