"""Command-line interface.

Exposes the library's main workflows without writing Python::

    repro datasets                               # Table 2 for the stand-ins
    repro solve --dataset nethept-sim --eta 120  # one adaptive run
    repro sweep --dataset nethept-sim --model IC --out-csv runs.csv
    repro estimate --dataset nethept-sim --eta 50 --seeds 0,3,7
    repro serve --port 7411 --jobs 4              # the always-on service

Every subcommand accepts ``--seed`` for bit-reproducible runs and prints
plain text suitable for piping into files or diffing across machines.
Ctrl-C exits with status 130 after tearing down worker pools and shared
memory (``serve`` first drains its in-flight requests).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import Optional

from repro._version import __version__
from repro.core.asti import ASTI
from repro.diffusion.montecarlo import (
    DEFAULT_MC_BATCH_SIZE,
    estimate_truncated_spread,
)
from repro.errors import ConfigurationError, ReproError
from repro.experiments import datasets
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import write_sweep_csv, write_sweep_json
from repro.experiments.harness import run_sweep
from repro.experiments.report import format_series, format_table
from repro.graph import analysis
from repro.graph.io import read_edge_list
from repro.kernels import KERNEL_BACKENDS
from repro.parallel.runtime import POOL_FAILURE_MODES, FaultPolicy
from repro.runtime.context import ExecutionContext
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.sampling.mrr import estimate_truncated_spread_mrr
from repro.service.cache import DEFAULT_CACHE_BYTES


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree; split out so tests can probe it."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive seed minimization (SIGMOD 2019) toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    ds = commands.add_parser("datasets", help="summarize the stand-in datasets")
    ds.add_argument("--n", type=int, default=None, help="override node count")
    ds.add_argument("--seed", type=int, default=0)

    solve = commands.add_parser("solve", help="run one adaptive ASM instance")
    _add_graph_arguments(solve)
    solve.add_argument("--eta", type=int, required=True, help="influence target")
    solve.add_argument("--model", choices=("IC", "LT"), default="IC")
    solve.add_argument("--batch-size", type=int, default=1)
    solve.add_argument(
        "--sample-batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="(m)RR sets generated per vectorized engine call",
    )
    solve.add_argument(
        "--no-reuse-pool",
        dest="reuse_pool",
        action="store_false",
        help="rebuild the mRR pool from scratch every adaptive round "
        "instead of carrying re-validated sets across rounds",
    )
    solve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for mRR pool generation (omit for the "
        "historical single-stream path; any explicit value gives results "
        "that are identical for every worker count)",
    )
    _add_kernel_argument(solve)
    _add_store_arguments(solve)
    _add_fault_arguments(solve)
    solve.add_argument("--epsilon", type=float, default=0.5)
    solve.add_argument("--max-samples", type=int, default=None)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--quiet", action="store_true", help="suppress round log")

    sweep = commands.add_parser("sweep", help="run a paper-style threshold sweep")
    sweep.add_argument("--dataset", required=True, choices=datasets.dataset_names())
    sweep.add_argument("--model", choices=("IC", "LT"), default="IC")
    sweep.add_argument("--n", type=int, default=None)
    sweep.add_argument(
        "--fractions",
        default=None,
        help="comma-separated eta/n values (default: the dataset's paper sweep)",
    )
    sweep.add_argument(
        "--algorithms",
        default="ASTI,ASTI-4,ATEUC",
        help="comma-separated roster",
    )
    sweep.add_argument("--realizations", type=int, default=5)
    sweep.add_argument("--max-samples", type=int, default=None)
    sweep.add_argument(
        "--sample-batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="(m)RR sets generated per vectorized engine call",
    )
    sweep.add_argument(
        "--mc-batch-size",
        type=int,
        default=None,
        help="forward cascades per vectorized engine call for MC-based "
        "roster entries like CELF (default: engine-chosen)",
    )
    sweep.add_argument(
        "--mc-tolerance",
        type=float,
        default=None,
        help="stop MC-based estimates early once their 95%% CI half-width "
        "drops below this many nodes",
    )
    sweep.add_argument(
        "--no-reuse-pool",
        dest="reuse_pool",
        action="store_false",
        help="rebuild every adaptive round's mRR pool from scratch "
        "(paper-exact; the default carries re-validated sets across rounds)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes sharing the sweep's realizations (results "
        "are identical for any value; 1 = in-process)",
    )
    _add_kernel_argument(sweep)
    _add_store_arguments(sweep)
    _add_fault_arguments(sweep)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--out-csv", default=None, help="write per-run rows")
    sweep.add_argument("--out-json", default=None, help="write aggregate summary")

    estimate = commands.add_parser(
        "estimate", help="estimate a seed set's truncated spread"
    )
    _add_graph_arguments(estimate)
    estimate.add_argument("--eta", type=int, required=True)
    estimate.add_argument("--model", choices=("IC", "LT"), default="IC")
    estimate.add_argument(
        "--seeds", required=True, help="comma-separated seed node ids"
    )
    estimate.add_argument("--theta", type=int, default=4000, help="mRR sets")
    estimate.add_argument("--mc-samples", type=int, default=0,
                          help="also run this many Monte-Carlo cascades")
    estimate.add_argument(
        "--mc-batch-size",
        type=int,
        default=DEFAULT_MC_BATCH_SIZE,
        help="forward cascades per vectorized engine call",
    )
    estimate.add_argument(
        "--mc-tolerance",
        type=float,
        default=None,
        help="stop the Monte-Carlo cross-check early once its 95%% CI "
        "half-width drops below this many nodes",
    )
    estimate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for mRR pool generation (omit for the "
        "historical single-stream path)",
    )
    _add_kernel_argument(estimate)
    _add_store_arguments(estimate)
    _add_fault_arguments(estimate)
    estimate.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve",
        help="run the always-on seed-selection service (NDJSON over TCP "
        "or stdio; see repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral port, announced on startup)",
    )
    serve.add_argument(
        "--stdio", action="store_true",
        help="serve one NDJSON session on stdin/stdout instead of TCP",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes shared across requests (1 = in-process; "
        "responses are bit-identical for any value)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=4,
        help="requests computing concurrently; more wait in the queue",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="admitted requests allowed to wait beyond --max-in-flight; "
        "past that a request gets a typed 'overloaded' reply",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES,
        help="LRU byte budget for cached graphs and warm mRR pools",
    )
    serve.add_argument(
        "--quarantine-seconds", type=float, default=30.0,
        help="cooldown before rebuilding a worker pool that exhausted "
        "its fault budgets (requests run in-process meanwhile)",
    )
    serve.add_argument(
        "--pool-store", default=None, metavar="PATH",
        help="persistent artifact store directory: warm mRR pools load "
        "from it on boot and spill back to it on drain, surviving "
        "restarts (omit to keep the cache memory-only)",
    )
    _add_kernel_argument(serve)
    _add_fault_arguments(serve)
    return parser


def _add_kernel_argument(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKENDS,
        default="auto",
        help="per-level labeled-BFS kernels: 'auto' uses the compiled "
        "backend when numba is installed and the graph is large enough, "
        "'numba' requires it, 'numpy' pins the vectorized reference "
        "(outputs are bit-identical across backends)",
    )


def _add_store_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--pool-store",
        default=None,
        metavar="PATH",
        help="persistent artifact store directory: (m)RR pools and CRN "
        "realization batches are cached there keyed by their exact "
        "generation recipe, so repeated runs skip regeneration with "
        "bit-identical results (omit to disable)",
    )
    sub.add_argument(
        "--plan",
        choices=("manual", "auto"),
        default="manual",
        help="'auto' lets the execution planner pick sample-batch-size, "
        "mc-batch-size, jobs, and kernel-backend from the graph's "
        "statistics and --calibration data (explicit knob flags are "
        "ignored); 'manual' (default) uses the flags as given",
    )
    sub.add_argument(
        "--calibration",
        default=None,
        metavar="PATH",
        help="calibration JSON for --plan auto (emit one with "
        "examples/context_tuning.py --out); without it the planner "
        "falls back to a conservative static heuristic",
    )


def _add_fault_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="seconds the parallel supervisor waits on one dispatched "
        "chunk before declaring its worker hung and rebuilding the pool "
        "(default: wait forever); only meaningful with --jobs >= 2",
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="transient-failure retries per chunk before the "
        "--on-pool-failure behavior applies",
    )
    sub.add_argument(
        "--on-pool-failure",
        choices=POOL_FAILURE_MODES,
        default="degrade",
        help="once a chunk's retry/rebuild budgets are spent: 'degrade' "
        "finishes the surviving chunks in-process (results stay "
        "bit-identical to a clean run), 'raise' fails the command",
    )


def _add_graph_arguments(sub: argparse.ArgumentParser) -> None:
    source = sub.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=datasets.dataset_names())
    source.add_argument("--edge-list", help="path to a 'u v p' edge list file")
    sub.add_argument("--n", type=int, default=None, help="dataset size override")


def _load_graph(args):
    if args.dataset:
        return datasets.load_dataset(args.dataset, n=args.n, seed=args.seed)
    return read_edge_list(args.edge_list)


def _make_model(name: str):
    from repro.diffusion.ic import IndependentCascade
    from repro.diffusion.lt import LinearThreshold

    return IndependentCascade() if name == "IC" else LinearThreshold()


def _store_from_args(args):
    path = getattr(args, "pool_store", None)
    if path is None:
        return None
    if not str(path).strip():
        # Path("") is the current directory — refuse rather than scatter
        # store artifacts into the working tree.
        raise ConfigurationError(
            "--pool-store requires a directory path, got an empty string"
        )
    from repro.store import PoolStore

    return PoolStore(path)


def _context_from_args(args, graph=None) -> ExecutionContext:
    """One :class:`ExecutionContext` per CLI invocation.

    All engine knobs funnel through the context's shared validators, so a
    bad ``--jobs`` or ``--sample-batch-size`` is rejected with exactly the
    same message the library raises (``repro.utils.validation``).

    With ``--plan auto`` and a loaded ``graph``, the performance knobs come
    from the execution planner instead of the flags (fed by
    ``--calibration`` when given); recovery policy always comes from the
    flags.
    """
    store = _store_from_args(args)
    fault_policy = FaultPolicy(
        chunk_timeout=getattr(args, "chunk_timeout", None),
        max_retries=getattr(args, "max_retries", 2),
        on_pool_failure=getattr(args, "on_pool_failure", "degrade"),
    )
    if getattr(args, "plan", "manual") == "auto" and graph is not None:
        return ExecutionContext.from_plan(
            graph,
            getattr(args, "model", "IC"),
            calibration=getattr(args, "calibration", None),
            mc_tolerance=getattr(args, "mc_tolerance", None),
            reuse_pool=getattr(args, "reuse_pool", True),
            fault_policy=fault_policy,
            pool_store=store,
        )
    return ExecutionContext(
        sample_batch_size=getattr(args, "sample_batch_size", DEFAULT_BATCH_SIZE),
        mc_batch_size=getattr(args, "mc_batch_size", None),
        mc_tolerance=getattr(args, "mc_tolerance", None),
        reuse_pool=getattr(args, "reuse_pool", True),
        jobs=getattr(args, "jobs", None),
        kernel_backend=getattr(args, "kernel_backend", "auto"),
        fault_policy=fault_policy,
        pool_store=store,
    )


def _parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_float_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_datasets(args, out) -> int:
    rows = []
    for name in datasets.dataset_names():
        graph = datasets.load_dataset(name, n=args.n, seed=args.seed)
        summary = analysis.summarize_graph(graph, name=name)
        spec = datasets.get_spec(name)
        rows.append(
            [
                name,
                spec.paper_name,
                summary.n,
                summary.m,
                round(summary.average_degree, 2),
                summary.lwcc_size,
            ]
        )
    print(
        format_table(
            ["dataset", "paper", "n", "m", "avg deg", "LWCC"],
            rows,
            title="Stand-in datasets (Table 2 analogue)",
        ),
        file=out,
    )
    return 0


def _cmd_solve(args, out) -> int:
    graph = _load_graph(args)
    model = _make_model(args.model)
    with _context_from_args(args, graph=graph) as context, ASTI(
        model,
        epsilon=args.epsilon,
        batch_size=args.batch_size,
        max_samples=args.max_samples,
        context=context,
    ) as algorithm:
        result = algorithm.run(graph, args.eta, seed=args.seed)
    print(
        f"{result.policy_name}: {result.seed_count} seeds -> "
        f"{result.spread} influenced (target {args.eta}) "
        f"in {result.seconds:.2f}s over {len(result.rounds)} rounds",
        file=out,
    )
    if not args.quiet:
        for record in result.rounds:
            obs = record.observation
            seeds = ",".join(str(s) for s in obs.seeds)
            carried = (
                f" + {record.samples_carried} carried"
                if record.samples_carried
                else ""
            )
            print(
                f"  round {obs.round_index}: seeds [{seeds}] "
                f"+{obs.marginal_spread} influenced "
                f"({record.samples_generated} fresh{carried} mRR sets, "
                f"{record.seconds:.2f}s)",
                file=out,
            )
    return 0


def _cmd_sweep(args, out) -> int:
    fractions = (
        tuple(_parse_float_list(args.fractions))
        if args.fractions
        else datasets.eta_fractions_for(args.dataset)
    )
    config = ExperimentConfig(
        dataset=args.dataset,
        model_name=args.model,
        eta_fractions=fractions,
        algorithms=tuple(part.strip() for part in args.algorithms.split(",")),
        realizations=args.realizations,
        graph_n=args.n,
        max_samples=args.max_samples,
        sample_batch_size=args.sample_batch_size,
        mc_batch_size=args.mc_batch_size,
        mc_tolerance=args.mc_tolerance,
        reuse_pool=args.reuse_pool,
        jobs=args.jobs,
        kernel_backend=args.kernel_backend,
        chunk_timeout=args.chunk_timeout,
        max_retries=args.max_retries,
        on_pool_failure=args.on_pool_failure,
        pool_store=args.pool_store,
        plan=args.plan,
        calibration=args.calibration,
        seed=args.seed,
    )
    sweep = run_sweep(config)
    for metric, title in (
        ("seeds", "mean seed count"),
        ("seconds", "mean seconds"),
        ("feasibility", "feasibility rate"),
    ):
        series = {alg: sweep.series(alg, metric) for alg in config.algorithms}
        print(
            format_series(
                "eta/n",
                list(fractions),
                series,
                title=f"{args.dataset} / {args.model}: {title}",
                precision=3,
            ),
            file=out,
        )
        print(file=out)
    if args.out_csv:
        count = write_sweep_csv(sweep, args.out_csv)
        print(f"wrote {count} rows to {args.out_csv}", file=out)
    if args.out_json:
        write_sweep_json(sweep, args.out_json)
        print(f"wrote summary to {args.out_json}", file=out)
    return 0


def _cmd_estimate(args, out) -> int:
    graph = _load_graph(args)
    model = _make_model(args.model)
    seeds = _parse_int_list(args.seeds)
    with _context_from_args(args, graph=graph) as context:
        return _estimate_with_context(args, out, graph, model, seeds, context)


def _estimate_with_context(args, out, graph, model, seeds, context) -> int:
    mrr = estimate_truncated_spread_mrr(
        graph,
        model,
        seeds,
        args.eta,
        theta=args.theta,
        seed=args.seed,
        context=context,
    )
    print(
        f"mRR estimate of E[Gamma(S)] with eta={args.eta}, "
        f"theta={args.theta}: {mrr:.3f}",
        file=out,
    )
    print(
        "(Theorem 3.3: the truth lies in "
        f"[{mrr:.3f}, {mrr / (1 - 2.718281828 ** -1):.3f}] up to sampling noise)",
        file=out,
    )
    if args.mc_samples > 0:
        mc = estimate_truncated_spread(
            graph,
            model,
            seeds,
            args.eta,
            samples=args.mc_samples,
            seed=args.seed,
            context=context,
        )
        print(
            f"Monte-Carlo cross-check ({mc.samples} cascades): "
            f"{mc.mean:.3f} +/- {1.96 * mc.std_error:.3f}",
            file=out,
        )
    return 0


def _cmd_serve(args, out) -> int:
    from repro.service.server import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        jobs=args.jobs,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        cache_bytes=args.cache_bytes,
        quarantine_seconds=args.quarantine_seconds,
        kernel_backend=args.kernel_backend,
        pool_store=args.pool_store,
        fault_policy=FaultPolicy(
            chunk_timeout=args.chunk_timeout,
            max_retries=args.max_retries,
            on_pool_failure=args.on_pool_failure,
        ),
    )
    # In stdio mode stdout carries the NDJSON replies, so the startup
    # banner must go to stderr; in TCP mode it goes to ``out`` where a
    # parent process can parse the announced port.
    log = sys.stderr if args.stdio else out
    return run_service(config, log=log)


_COMMANDS = {
    "datasets": _cmd_datasets,
    "solve": _cmd_solve,
    "sweep": _cmd_sweep,
    "estimate": _cmd_estimate,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except KeyboardInterrupt:
        # Ctrl-C: the command's context managers / the service's drain
        # path have already released worker pools and shared memory on
        # the way out; exit with the conventional SIGINT status, no
        # traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
