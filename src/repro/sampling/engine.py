"""The batched (m)RR-set generation engine.

Every pool consumer in the library — TRIM, TRIM-B, AdaptIM's OPIM selector,
IMM, OPIM, ATEUC — grows its pool through :class:`BatchSampler`, which
requests ``batch_size`` reverse samples per call to
:meth:`~repro.diffusion.base.DiffusionModel.reverse_sample_batch` and hands
the CSR-packed result straight to
:meth:`~repro.sampling.coverage.CoverageIndex.add_batch`.  A ``grow_to``
that previously paid per-set Python dispatch thousands of times per round
now runs ``ceil(missing / batch_size)`` engine calls, each a handful of
vectorized NumPy operations over all samples at once.

Root selection is a strategy object so the same engine serves both set
families:

* :class:`UniformRootDrawer` — one uniform root per sample (vanilla RR
  sets, Borgs et al. 2014);
* :class:`RandomizedRoundingRootDrawer` — the paper's Theorem 3.3 root
  count ``k in {k_low, k_low + 1}`` with ``E[k] = n / eta``, drawn and
  deduplicated for a whole batch at a time (mRR sets, Definition 3.2).

The one-at-a-time ``RRSampler.sample`` / ``MRRSampler.sample`` paths remain
as the distributional reference that the batch-equivalence tests check
against.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError, SamplingError
from repro.graph.digraph import DiGraph
from repro.sampling.coverage import CoverageIndex
from repro.store.keys import (
    artifact_key,
    generator_state,
    graph_fingerprint,
    model_key,
    restore_generator_state,
    rng_state_token,
)
from repro.utils.rng import RandomSource, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mrr imports engine)
    from repro.parallel.runtime import ParallelRuntime
    from repro.runtime.context import ExecutionContext
    from repro.sampling.mrr import RootCountRule

#: Default number of reverse samples generated per engine call.  Large
#: enough to amortize NumPy dispatch over the whole batch; the price is a
#: pooled ``batch * n`` boolean visitation bitset per sampler (one byte
#: per bit — 256 MB at n = 1M), so memory-constrained callers on very
#: large graphs should dial this down via the ``sample_batch_size`` knobs
#: (the bitset is allocated lazily with ``np.zeros``, i.e. copy-on-write
#: zero pages, and is reused across all calls of one sampler).
DEFAULT_BATCH_SIZE = 256


class RootDrawer(abc.ABC):
    """Strategy producing the root sets for a batch of reverse samples."""

    @abc.abstractmethod
    def draw(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Roots for ``count`` samples as a CSR ``(roots, indptr)`` pair.

        Each sample's roots must be distinct node ids; ``indptr`` has
        length ``count + 1`` and starts at 0.
        """


class UniformRootDrawer(RootDrawer):
    """One uniformly random root per sample — vanilla RR sets."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"need n >= 1, got {n}")
        self.n = int(n)

    def draw(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        roots = rng.integers(self.n, size=count, dtype=np.int64)
        return roots, np.arange(count + 1, dtype=np.int64)


class RandomizedRoundingRootDrawer(RootDrawer):
    """Multi-root sets with the paper's randomized-rounding count rule.

    Root counts are drawn for the whole batch in one Bernoulli draw; the
    distinct roots of all samples sharing a count ``k`` are then sampled
    together — by vectorized rejection when ``k`` is small relative to
    ``n`` (collisions are rare, the occasional colliding row is redrawn),
    or by row-wise permutation when ``k`` is a sizable fraction of ``n``.
    """

    def __init__(self, rule: RootCountRule):
        self.rule = rule
        self.n = int(rule.n)

    def draw(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        ks = np.full(count, self.rule.k_low, dtype=np.int64)
        if self.rule.fraction > 0.0:
            ks += rng.random(count) < self.rule.fraction
        np.clip(ks, 1, self.n, out=ks)

        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(ks, out=indptr[1:])
        roots = np.empty(indptr[-1], dtype=np.int64)
        for k in np.unique(ks):
            rows = np.flatnonzero(ks == k)
            block = self._distinct_rows(rng, len(rows), int(k))
            positions = indptr[rows, None] + np.arange(k, dtype=np.int64)
            roots[positions.ravel()] = block.ravel()
        return roots, indptr

    #: Workspace budget (elements) for the argpartition path; bounds the
    #: per-chunk ``(rows, n)`` scratch to ~32 MB of float64 keys.
    _WORKSPACE_ELEMENTS = 4_000_000

    def _distinct_rows(
        self, rng: np.random.Generator, rows: int, k: int
    ) -> np.ndarray:
        """``rows`` independent uniform k-subsets of ``range(n)``.

        Two regimes, split by the birthday bound:

        * ``k(k-1) <= 2n`` — whole-row rejection: a with-replacement draw
          is kept only if all entries are distinct (per-row acceptance
          ``~exp(-k(k-1)/2n) >= ~1/e``, so only rejected rows are redrawn
          and the loop finishes in a handful of shrinking rounds), which
          conditions on distinctness and is exactly uniform over
          k-subsets.  Rejection must NOT be used beyond this band: for
          ``k >> sqrt(n)`` the acceptance probability vanishes and the
          loop effectively never terminates.
        * otherwise — the positions of the ``k`` smallest of ``n`` iid
          uniform keys per row are a uniform k-subset; one vectorized
          ``argpartition`` per chunk, with chunks sized to keep the
          ``(chunk, n)`` key matrix inside a fixed workspace budget.
        """
        if k == 1:
            return rng.integers(self.n, size=(rows, 1), dtype=np.int64)
        if k * (k - 1) <= 2 * self.n:
            block = rng.integers(self.n, size=(rows, k), dtype=np.int64)
            suspect = np.arange(rows)  # rows not yet known collision-free
            while len(suspect):
                ordered = np.sort(block[suspect], axis=1)
                bad = suspect[(ordered[:, 1:] == ordered[:, :-1]).any(axis=1)]
                if len(bad):
                    block[bad] = rng.integers(
                        self.n, size=(len(bad), k), dtype=np.int64
                    )
                suspect = bad
            return block
        block = np.empty((rows, k), dtype=np.int64)
        chunk = max(1, self._WORKSPACE_ELEMENTS // self.n)
        for start in range(0, rows, chunk):
            stop = min(start + chunk, rows)
            keys = rng.random((stop - start, self.n))
            block[start:stop] = np.argpartition(keys, k - 1, axis=1)[:, :k]
        return block


class BatchSampler:
    """Grows an (m)RR pool ``batch_size`` sets per vectorized engine call.

    Parameters
    ----------
    graph:
        The (residual) graph to sample in.
    model:
        Diffusion model providing
        :meth:`~repro.diffusion.base.DiffusionModel.reverse_sample_batch`.
    roots:
        Root-selection strategy (uniform single root for RR pools, the
        randomized-rounding rule for mRR pools).
    seed:
        Random source; pass the caller's generator to share one stream.
    batch_size:
        Samples per engine call.  Larger batches amortize dispatch further
        but grow the per-call ``batch * n`` visitation bitset.
    runtime:
        Optional :class:`~repro.parallel.runtime.ParallelRuntime`.  When
        set, :meth:`fill` switches to the chunk-seeded parallel scheme:
        every engine call's chunk draws from its own child stream (spawned
        from a root :class:`~numpy.random.SeedSequence` by global chunk
        index), and chunks are sharded across the runtime's workers.  The
        resulting pool is bit-identical for **any** worker count — a
        ``jobs=1`` runtime runs the same chunks in-process — but differs
        from the default single-stream path, which remains the reference
        when ``runtime`` is ``None``.
    context:
        Optional :class:`~repro.runtime.context.ExecutionContext` supplying
        the defaults for ``batch_size`` (``context.sample_batch_size``) and
        ``runtime`` (``context.runtime``).  Explicit ``batch_size`` /
        ``runtime`` arguments override the context — this is the low-level
        escape hatch, so no deprecation applies here.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        roots: RootDrawer,
        seed: RandomSource = None,
        batch_size: Optional[int] = None,
        runtime: Optional[ParallelRuntime] = None,
        context: Optional[ExecutionContext] = None,
    ):
        if graph.n < 1:
            raise SamplingError("cannot sample reverse sets on an empty graph")
        if batch_size is None:
            batch_size = (
                context.sample_batch_size if context is not None
                else DEFAULT_BATCH_SIZE
            )
        if runtime is None and context is not None:
            runtime = context.runtime
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.graph = graph
        self.model = model
        self.roots = roots
        self.batch_size = int(batch_size)
        # Per-level BFS backend knob (see repro.kernels); pools are
        # bit-identical across backends, so this is pure policy.
        self._kernel = (
            context.kernel_backend if context is not None else "auto"
        )
        self._rng = as_generator(seed)
        self._runtime = runtime
        # Persistent artifact store (see repro.store): consulted before
        # regenerating a fill.  Disabled for unseeded samplers — their
        # stream is OS entropy, so no future run could ever hit the
        # entries they would write.
        self._store = (
            context.pool_store
            if context is not None and seed is not None
            else None
        )
        self._context = context
        self._recipe_fields: Optional[dict[str, object]] = None
        # Chunk-indexed seeding root: one draw from the caller's stream
        # fixes every future chunk's stream up front (SeedSequence.spawn
        # tracks how many children were already spawned, so the k-th chunk
        # of the sampler's lifetime gets the k-th child no matter how the
        # fill calls are sliced or sharded).
        self._chunk_root = (
            np.random.SeedSequence(int(self._rng.integers(np.iinfo(np.int64).max)))
            if runtime is not None
            else None
        )
        # Pooled visitation bitset, allocated lazily at batch_size * n and
        # restored to all-False by the BFS driver after every call — the
        # batched analogue of the scalar samplers' pooled scratch.
        self._scratch: np.ndarray = None

    def sample_batch(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``count`` reverse samples in one engine call.

        Returns the CSR-packed ``(members, indptr)`` pair produced by the
        model's multi-source labeled reverse BFS.
        """
        members, indptr, _ = self._sample_batch_counted(count)
        return members, indptr

    def _sample_batch_counted(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`sample_batch` plus the per-sample root counts.

        The root counts feed the adaptive engine's cross-round pool
        carry-over, which re-validates retained mRR sets against the next
        round's root-count rule.
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.zeros(1, dtype=np.int64), empty
        self._ensure_scratch(count)
        roots, roots_indptr = self.roots.draw(self._rng, count)
        members, indptr = self.model.reverse_sample_batch(
            self.graph, roots, roots_indptr, self._rng, self._scratch,
            kernel=self._kernel,
        )
        return members, indptr, np.diff(roots_indptr)

    def _ensure_scratch(self, count: int) -> np.ndarray:
        if self._scratch is None or len(self._scratch) < count * self.graph.n:
            self._scratch = np.zeros(
                max(count, self.batch_size) * self.graph.n, dtype=bool
            )
        return self._scratch

    def fill(self, index: CoverageIndex, count: int) -> np.ndarray:
        """Append ``count`` fresh sets to ``index``, batch by batch.

        The Python-level loop runs once per *batch*, never per set.
        Returns the per-set root counts in generation order (all ones for
        single-root RR pools).

        With a :class:`~repro.parallel.runtime.ParallelRuntime` attached,
        the batches become independent chunk work units sharded across the
        runtime's workers and merged back in chunk order (see
        :meth:`grow_to` and the constructor's ``runtime`` note).
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        if self._runtime is not None:
            return self._fill_parallel(index, count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        store_key = None
        if self._store is not None:
            # Single-stream path: the fill consumes the caller's shared
            # stream, so the recipe keys on the generator's exact state
            # going in, and a hit restores the recorded state coming out —
            # every downstream draw is bit-identical to regenerating.
            store_key = artifact_key(
                "pool",
                {
                    **self._recipe(),
                    "mode": "stream",
                    "count": int(count),
                    "state": rng_state_token(self._rng),
                },
            )
            cached = self._store.load(store_key)
            if cached is not None:
                arrays, meta = cached
                if restore_generator_state(self._rng, meta.get("rng_state")):
                    index.add_batch(arrays["members"], arrays["indptr"])
                    self._tally("pool_store_pool_hits")
                    return arrays["root_counts"]
        remaining = count
        batches = []
        while remaining > 0:
            step = min(remaining, self.batch_size)
            members, indptr, root_counts = self._sample_batch_counted(step)
            index.add_batch(members, indptr)
            batches.append((members, indptr, root_counts))
            remaining -= step
        if store_key is not None:
            members, indptr = _merge_csr_batches(batches)
            self._store.save(
                store_key,
                {
                    "members": members,
                    "indptr": indptr,
                    "root_counts": np.concatenate([b[2] for b in batches]),
                },
                {"rng_state": generator_state(self._rng)},
            )
        return np.concatenate([b[2] for b in batches])

    def grow_to(self, index: CoverageIndex, theta: int) -> np.ndarray:
        """Top ``index`` up to at least ``theta`` sets; see :meth:`fill`."""
        return self.fill(index, max(0, int(theta) - len(index)))

    def _fill_parallel(self, index: CoverageIndex, count: int) -> np.ndarray:
        """Chunk-seeded fill: deterministic for any worker count.

        The count splits into the same ``min(remaining, batch_size)``
        chunks as the sequential loop; chunk ``k`` (globally indexed over
        the sampler's lifetime) draws from the ``k``-th child of the
        sampler's root seed sequence, runs
        :func:`repro.parallel.tasks.sample_chunk` — in-process for a
        ``jobs=1`` runtime, on the worker pool otherwise — and the
        CSR-packed results merge into ``index`` in chunk order.
        """
        from repro.parallel.tasks import sample_chunk, worker_sample_chunk

        chunks: list[int] = []
        remaining = count
        while remaining > 0:
            step = min(remaining, self.batch_size)
            chunks.append(step)
            remaining -= step
        if not chunks:
            return np.empty(0, dtype=np.int64)
        store_key = None
        if self._store is not None:
            # Chunk-seeded path: every chunk's stream is fixed by the root
            # SeedSequence's entropy and the global spawn offset, so those
            # two values (plus the chunk decomposition) *are* the exact
            # randomness recipe — no generator state to capture.  A hit
            # spawns (and discards) the same children to keep the offset
            # aligned for subsequent fills.
            store_key = artifact_key(
                "pool",
                {
                    **self._recipe(),
                    "mode": "chunks",
                    "entropy": str(self._chunk_root.entropy),
                    "spawn_offset": int(self._chunk_root.n_children_spawned),
                    "chunks": chunks,
                },
            )
            cached = self._store.load(store_key)
            if cached is not None:
                arrays, _ = cached
                self._chunk_root.spawn(len(chunks))
                index.add_batch(arrays["members"], arrays["indptr"])
                self._tally("pool_store_pool_hits")
                return arrays["root_counts"]
        seqs = self._chunk_root.spawn(len(chunks))
        if not self._runtime.parallel:
            results = [
                sample_chunk(
                    self.graph,
                    self.model,
                    self.roots,
                    step,
                    seq,
                    self._ensure_scratch(step),
                    kernel=self._kernel,
                )
                for step, seq in zip(chunks, seqs)
            ]
        else:
            graph_handle = self._runtime.publish_graph(self.graph)
            results = self._runtime.map_ordered(
                worker_sample_chunk,
                [
                    (graph_handle, self.model, self.roots, step, seq,
                     self._kernel)
                    for step, seq in zip(chunks, seqs)
                ],
            )
        collected = []
        for members, indptr, root_counts in results:
            index.add_batch(members, indptr)
            collected.append(root_counts)
        if store_key is not None:
            members, indptr = _merge_csr_batches(list(results))
            self._store.save(
                store_key,
                {
                    "members": members,
                    "indptr": indptr,
                    "root_counts": np.concatenate(collected),
                },
                {},
            )
        return np.concatenate(collected)

    # ------------------------------------------------------------------
    # Persistent-store plumbing
    # ------------------------------------------------------------------

    def _recipe(self) -> dict[str, object]:
        """The generation-recipe fields shared by every fill of this sampler."""
        if self._recipe_fields is None:
            self._recipe_fields = {
                "graph": graph_fingerprint(self.graph),
                "model": model_key(self.model),
                "roots": _roots_token(self.roots),
                "batch_size": self.batch_size,
            }
        return self._recipe_fields

    def _tally(self, name: str) -> None:
        if self._context is not None:
            self._context.tally(name)


def _roots_token(roots: RootDrawer) -> str:
    """A root-drawer's identity for the store's generation-recipe key."""
    if isinstance(roots, RandomizedRoundingRootDrawer):
        rule = roots.rule
        return (
            f"rounding(n={roots.n},k_low={rule.k_low},"
            f"fraction={rule.fraction!r})"
        )
    if isinstance(roots, UniformRootDrawer):
        return f"uniform(n={roots.n})"
    # Unknown drawers key on their type: never a wrong hit, at worst a
    # collision between two instances of the same (parameterless) class —
    # which the RNG-state / seed-recipe component still disambiguates.
    return f"{type(roots).__module__}.{type(roots).__qualname__}"


def _merge_csr_batches(
    batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-batch ``(members, indptr, _)`` CSR pieces."""
    members = np.concatenate([batch[0] for batch in batches])
    total_sets = sum(len(batch[1]) - 1 for batch in batches)
    indptr = np.zeros(total_sets + 1, dtype=np.int64)
    position, offset = 1, 0
    for _members, batch_indptr, _ in batches:
        size = len(batch_indptr) - 1
        indptr[position:position + size] = batch_indptr[1:] + offset
        position += size
        offset += int(batch_indptr[-1])
    return members, indptr


def rr_batch_sampler(
    graph: DiGraph,
    model: DiffusionModel,
    seed: RandomSource = None,
    batch_size: Optional[int] = None,
    runtime: Optional[ParallelRuntime] = None,
    context: Optional[ExecutionContext] = None,
) -> BatchSampler:
    """Engine for single-root RR pools."""
    return BatchSampler(
        graph, model, UniformRootDrawer(graph.n), seed, batch_size, runtime,
        context,
    )


def mrr_batch_sampler(
    graph: DiGraph,
    model: DiffusionModel,
    rule: RootCountRule,
    seed: RandomSource = None,
    batch_size: Optional[int] = None,
    runtime: Optional[ParallelRuntime] = None,
    context: Optional[ExecutionContext] = None,
) -> BatchSampler:
    """Engine for multi-root mRR pools under a root-count rule."""
    return BatchSampler(
        graph, model, RandomizedRoundingRootDrawer(rule), seed, batch_size,
        runtime, context,
    )
