"""Sampling substrate: RR sets, mRR sets, coverage, concentration bounds."""

from repro.sampling.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    coverage_lower_bound,
    coverage_upper_bound,
    log_binomial,
)
from repro.sampling.coverage import CoverageIndex, GreedyCoverResult
from repro.sampling.engine import (
    DEFAULT_BATCH_SIZE,
    BatchSampler,
    RandomizedRoundingRootDrawer,
    RootDrawer,
    UniformRootDrawer,
    mrr_batch_sampler,
    rr_batch_sampler,
)
from repro.sampling.rr import RRCollection, RRSampler
from repro.sampling.mrr import (
    CarriedMRRPool,
    CarryDiagnostics,
    MRRCollection,
    MRRSampler,
    RootCountRule,
    build_round_pool,
    estimate_truncated_spread_mrr,
)
from repro.sampling.estimators import (
    EstimatorGuarantee,
    MRR_FIXED_CEIL,
    MRR_FIXED_FLOOR,
    MRR_RANDOMIZED_ROUNDING,
    mrr_truncated_estimate,
    rr_spread_estimate,
    rr_truncated_bias_factor,
)

__all__ = [
    "coverage_lower_bound",
    "coverage_upper_bound",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "log_binomial",
    "CoverageIndex",
    "GreedyCoverResult",
    "DEFAULT_BATCH_SIZE",
    "BatchSampler",
    "RootDrawer",
    "UniformRootDrawer",
    "RandomizedRoundingRootDrawer",
    "rr_batch_sampler",
    "mrr_batch_sampler",
    "RRSampler",
    "RRCollection",
    "MRRSampler",
    "CarriedMRRPool",
    "CarryDiagnostics",
    "MRRCollection",
    "RootCountRule",
    "build_round_pool",
    "estimate_truncated_spread_mrr",
    "EstimatorGuarantee",
    "MRR_RANDOMIZED_ROUNDING",
    "MRR_FIXED_FLOOR",
    "MRR_FIXED_CEIL",
    "rr_spread_estimate",
    "mrr_truncated_estimate",
    "rr_truncated_bias_factor",
]
