"""Single-root reverse reachable (RR) sets (Borgs et al. 2014).

A random RR set is the set of nodes that reach one uniformly random root in
a random realization.  It is the unbiased estimator behind modern influence
maximization: ``E[I(S)] = n * Pr[R intersects S]``.

The paper shows RR sets are *biased* for the truncated objective (Section
3.2) — that analysis is reproduced in our tests — but the IM baselines
(OPIM / AdaptIM / ATEUC) still run on them, so we provide a first-class
implementation here.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.errors import SamplingError
from repro.graph.digraph import DiGraph
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import rr_batch_sampler
from repro.utils.rng import RandomSource, as_generator


class RRSampler:
    """Generates single-root RR sets for a fixed graph and model."""

    def __init__(self, graph: DiGraph, model: DiffusionModel, seed: RandomSource = None):
        if graph.n < 1:
            raise SamplingError("cannot sample RR sets on an empty graph")
        self.graph = graph
        self.model = model
        self._rng = as_generator(seed)
        self._scratch = np.zeros(graph.n, dtype=bool)

    def sample(self) -> np.ndarray:
        """One random RR set: the nodes reaching a uniform random root."""
        root = np.asarray([self._rng.integers(self.graph.n)], dtype=np.int64)
        return self.model.reverse_sample(self.graph, root, self._rng, self._scratch)

    def sample_into(self, index: CoverageIndex, count: int) -> None:
        """Append ``count`` fresh RR sets to a coverage index."""
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        for _ in range(count):
            index.add(self.sample())


class RRCollection:
    """A coverage index plus the batched engine that fills it.

    Convenience wrapper used by the baselines: supports OPIM-style doubling
    (``grow_to``) and converts coverage counts into spread estimates.  Pool
    growth runs through the vectorized
    :class:`~repro.sampling.engine.BatchSampler`; the single-set
    :class:`RRSampler` remains available as the distributional reference.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        seed: RandomSource = None,
        batch_size: Optional[int] = None,
        runtime=None,
        context=None,
    ):
        rng = as_generator(seed)
        self.sampler = RRSampler(graph, model, rng)
        self.engine = rr_batch_sampler(
            graph, model, rng, batch_size, runtime, context
        )
        self.index = CoverageIndex(graph.n)

    @property
    def graph(self) -> DiGraph:
        return self.sampler.graph

    def __len__(self) -> int:
        return len(self.index)

    def grow_to(self, theta: int) -> None:
        """Ensure the pool holds at least ``theta`` sets (batched)."""
        missing = theta - len(self.index)
        if missing > 0:
            self.engine.fill(self.index, missing)

    def estimated_spread(self, seeds: Sequence[int]) -> float:
        """``E[I(S)] ~ n * Lambda_R(S) / |R|`` (unbiased)."""
        if len(self.index) == 0:
            raise SamplingError("no RR sets generated yet")
        coverage = self.index.coverage_of_set(seeds)
        return self.graph.n * coverage / len(self.index)

    def estimated_node_spread(self, node: int) -> float:
        """Single-node version using the O(1) coverage counter."""
        if len(self.index) == 0:
            raise SamplingError("no RR sets generated yet")
        return self.graph.n * self.index.coverage_of(node) / len(self.index)
