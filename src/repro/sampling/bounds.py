"""Martingale concentration bounds (paper Appendix A).

TRIM and TRIM-B certify solution quality with two bounds on the *expected*
coverage of a node (set) given its *observed* coverage over a pool of
(m)RR sets.  These are Lemma A.2 of the paper (originally from the OPIM-C
analysis of Tang et al. 2018):

* with probability at least ``1 - e^-a``::

      E[Lambda] >= (sqrt(Lambda + 2a/9) - sqrt(a/2))^2 - a/18     (lower)

* with probability at least ``1 - e^-a``::

      E[Lambda] <= (sqrt(Lambda + a/2) + sqrt(a/2))^2             (upper)

where ``Lambda`` is the observed coverage count and ``a`` the log-confidence
parameter.  Lemma A.1 (the Chernoff-style two-sided tail) is included for
sample-size computations and for the tests that check the bounds hold
empirically.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def coverage_lower_bound(observed_coverage: float, a: float) -> float:
    """Lemma A.2, Eq. (18): high-probability lower bound on ``E[Lambda]``.

    Matches TRIM's Line 9 with ``a = a_1``.  The bound can dip below zero
    for tiny coverages; callers compare ratios so we clamp at 0.
    """
    _check_args(observed_coverage, a)
    root = math.sqrt(observed_coverage + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    return max(0.0, root * root - a / 18.0)


def coverage_upper_bound(observed_coverage: float, a: float) -> float:
    """Lemma A.2, Eq. (19): high-probability upper bound on ``E[Lambda]``.

    Matches TRIM's Line 10 with ``a = a_2`` (and TRIM-B's Line 10 after the
    caller divides the observed coverage by ``rho_b``).
    """
    _check_args(observed_coverage, a)
    root = math.sqrt(observed_coverage + a / 2.0) + math.sqrt(a / 2.0)
    return root * root


def chernoff_upper_tail(mean: float, deviation: float, samples: int) -> float:
    """Lemma A.1, Eq. (16): ``Pr[X_bar > E + lambda]`` bound.

    ``mean`` and ``deviation`` are per-sample quantities in ``[0, 1]``.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if deviation < 0:
        raise ConfigurationError(f"deviation must be >= 0, got {deviation}")
    if deviation == 0:
        return 1.0
    exponent = -(deviation * deviation * samples) / (2.0 * mean + 2.0 * deviation / 3.0)
    return math.exp(exponent)


def chernoff_lower_tail(mean: float, deviation: float, samples: int) -> float:
    """Lemma A.1, Eq. (17): ``Pr[X_bar < E - lambda]`` bound."""
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if deviation < 0:
        raise ConfigurationError(f"deviation must be >= 0, got {deviation}")
    if deviation == 0:
        return 1.0
    if mean <= 0:
        return 0.0
    return math.exp(-(deviation * deviation * samples) / (2.0 * mean))


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma; used by TRIM-B's union bound over size-b sets."""
    if k < 0 or n < 0 or k > n:
        raise ConfigurationError(f"need 0 <= k <= n, got n={n}, k={k}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def _check_args(observed_coverage: float, a: float) -> None:
    if observed_coverage < 0:
        raise ConfigurationError(
            f"coverage must be non-negative, got {observed_coverage}"
        )
    if a <= 0:
        raise ConfigurationError(f"confidence parameter a must be > 0, got {a}")
