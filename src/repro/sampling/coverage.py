"""Coverage bookkeeping over a pool of (m)RR sets.

Both TRIM's single-node selection (``argmax_v Lambda_R(v)``) and TRIM-B's
greedy maximum coverage operate on the same structure: a pool of node sets
plus a per-node count of how many sets each node appears in.

:class:`CoverageIndex` stores the pool as **packed CSR arrays** — one flat
``members`` vector and an ``indptr`` of set boundaries — so whole batches of
sets arriving from the :class:`~repro.sampling.engine.BatchSampler` are
absorbed with a handful of vectorized NumPy operations (:meth:`add_batch`),
coverage queries reduce over the flat vector, and the greedy
maximum-coverage routine with its ``1 - (1 - 1/b)^b`` guarantee (Vazirani
2003; the ``Greedy(R)`` of the paper's Algorithm 3) updates marginal gains
one *set batch* at a time instead of one element at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, SamplingError
from repro.graph.digraph import csr_index_dtype, gather_csr_rows

_INITIAL_MEMBER_CAPACITY = 1024
_INITIAL_SET_CAPACITY = 256


@dataclass(frozen=True)
class GreedyCoverResult:
    """Outcome of greedy maximum coverage."""

    nodes: list[int]
    covered: int          # number of sets covered by `nodes`
    marginal_gains: list[int]  # sets newly covered by each pick, in order


class _SetsView:
    """Read-only sequence view over the CSR-packed sets.

    Each item is a NumPy slice of the flat members array — no copies, but
    callers must treat the slices as read-only.
    """

    __slots__ = ("_index",)

    def __init__(self, index: CoverageIndex):
        self._index = index

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, set_id):
        if isinstance(set_id, slice):
            return [self[i] for i in range(*set_id.indices(len(self)))]
        if set_id < 0:
            set_id += len(self._index)
        if not 0 <= set_id < len(self._index):
            raise IndexError(set_id)
        indptr = self._index._indptr
        return self._index._members[indptr[set_id] : indptr[set_id + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for set_id in range(len(self._index)):
            yield self[set_id]


class CoverageIndex:
    """A growable CSR-packed pool of node sets with per-node coverage counts."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"need n >= 1, got {n}")
        self.n = int(n)
        # Members are node ids < n, so the packed pool stores them at the
        # graph's adaptive index width (int32 in practice) — pools are the
        # dominant memory consumer of a TRIM round, and halving the flat
        # members vector halves it.  The indptr tracks cumulative pool
        # size, which can exceed int32 on huge pools, so it stays int64.
        self._member_dtype = csr_index_dtype(self.n, 0)
        self._members = np.empty(_INITIAL_MEMBER_CAPACITY, dtype=self._member_dtype)
        self._indptr = np.zeros(_INITIAL_SET_CAPACITY + 1, dtype=np.int64)
        self._num_sets = 0
        self._counts = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Pool growth
    # ------------------------------------------------------------------

    def add(self, members: np.ndarray) -> None:
        """Add one set (an array of distinct node ids)."""
        members = np.asarray(members, dtype=np.int64)
        self.add_batch(
            members, np.asarray([0, len(members)], dtype=np.int64)
        )

    def add_batch(
        self, members: np.ndarray, indptr: np.ndarray, validate: bool = True
    ) -> None:
        """Bulk-append a CSR batch of sets.

        ``members`` concatenates the new sets' node ids; ``indptr`` (length
        ``batch + 1``, starting at 0) delimits them.  Equivalent to calling
        :meth:`add` once per set, but the packed copy and the coverage-count
        update are single vectorized operations regardless of batch size.

        ``validate=False`` skips the bounds / non-empty / duplicate checks
        for batches that provably satisfy the invariants already — the
        adaptive engine's pool carry-over re-adopts sets that lived in a
        coverage index the round before, and the duplicate check's full
        sort is pure overhead there.
        """
        # Keep the incoming integer dtype: parallel sample chunks already
        # arrive at the compact member width, and forcing int64 here would
        # add a transient 2x copy per chunk on the pool-growth hot path.
        # Validation below promotes to int64 where the arithmetic needs it;
        # the packed-store assignment downcasts values already checked < n.
        members = np.asarray(members)
        if members.dtype.kind != "i":
            members = members.astype(np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if len(indptr) < 2 or indptr[0] != 0 or indptr[-1] != len(members):
            raise SamplingError(
                "indptr must start at 0 and end at len(members)"
            )
        sizes = np.diff(indptr)
        if validate:
            if (sizes <= 0).any():
                # An empty reverse sample cannot happen (roots are members),
                # but guard anyway: an empty set covers nothing and breaks
                # argmax invariants silently.
                raise SamplingError("cannot add an empty set to the coverage index")
            if len(members) and (members.min() < 0 or members.max() >= self.n):
                raise SamplingError("set contains node ids outside the graph")
            # A node repeated inside one set would inflate its coverage count
            # relative to coverage_of_set; reject rather than corrupt silently.
            # Keying members by their set id makes the duplicate check one sort.
            set_of_member = np.repeat(
                np.arange(len(sizes), dtype=np.int64), sizes
            )
            keyed = np.sort(set_of_member * self.n + members)
            if len(keyed) > 1 and (keyed[1:] == keyed[:-1]).any():
                raise SamplingError("a set contains duplicate node ids")

        batch = len(indptr) - 1
        used = self._indptr[self._num_sets]
        self._members = _ensure_capacity(self._members, used + len(members))
        self._indptr = _ensure_capacity(self._indptr, self._num_sets + batch + 1)
        self._members[used : used + len(members)] = members
        self._indptr[self._num_sets + 1 : self._num_sets + batch + 1] = (
            used + indptr[1:]
        )
        self._num_sets += batch
        if len(members) * 8 < self.n:
            # Small update (e.g. the single-set reference path): touch only
            # the members instead of paying an O(n) bincount per call.
            np.add.at(self._counts, members, 1)
        else:
            self._counts += np.bincount(members, minlength=self.n)

    def __len__(self) -> int:
        """Number of sets in the pool (``|R|`` in the paper)."""
        return self._num_sets

    @property
    def sets(self) -> Sequence[np.ndarray]:
        """Read-only view of the stored sets (CSR slices, no copies)."""
        return _SetsView(self)

    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(members, indptr)`` CSR arrays (read-only views)."""
        used = self._indptr[self._num_sets]
        return self._members[:used], self._indptr[: self._num_sets + 1]

    def total_size(self) -> int:
        """Sum of set sizes; proportional to greedy-cover cost."""
        return int(self._indptr[self._num_sets])

    # ------------------------------------------------------------------
    # Single-node coverage (TRIM)
    # ------------------------------------------------------------------

    def coverage_of(self, node: int) -> int:
        """``Lambda_R(v)``: number of sets containing ``node``."""
        if not 0 <= node < self.n:
            raise SamplingError(f"node {node} out of range for n={self.n}")
        return int(self._counts[node])

    def coverage_counts(self) -> np.ndarray:
        """A copy of the full per-node coverage vector."""
        return self._counts.copy()

    def argmax_node(self) -> tuple[int, int]:
        """The node maximizing ``Lambda_R(v)`` and its coverage.

        Ties break toward the smallest node id (NumPy argmax convention),
        which keeps runs reproducible.
        """
        if self._num_sets == 0:
            raise SamplingError("coverage index is empty; generate sets first")
        v = int(self._counts.argmax())
        return v, int(self._counts[v])

    def coverage_of_set(self, nodes: Sequence[int]) -> int:
        """``Lambda_R(S)``: number of sets hit by *any* node in ``S``."""
        node_mask = np.zeros(self.n, dtype=bool)
        for v in nodes:
            if not 0 <= v < self.n:
                raise SamplingError(f"node {v} out of range for n={self.n}")
            node_mask[v] = True
        if self._num_sets == 0 or not node_mask.any():
            return 0
        members, indptr = self.packed()
        hits = node_mask[members]
        # Sets are never empty, so indptr is strictly increasing and the
        # segment reduction is well defined.
        return int(np.logical_or.reduceat(hits, indptr[:-1]).sum())

    # ------------------------------------------------------------------
    # Greedy maximum coverage (TRIM-B / ATEUC)
    # ------------------------------------------------------------------

    def greedy_max_coverage(
        self, budget: int, stop_at_coverage: int = None, lazy: bool = True
    ) -> GreedyCoverResult:
        """Pick up to ``budget`` nodes greedily maximizing covered-set count.

        Classic greedy: repeatedly take the node covering the most
        still-uncovered sets.  Guarantees coverage at least
        ``(1 - (1 - 1/budget)^budget) * OPT_budget`` (paper Line 8 of
        Algorithm 3 and Section 4.1).

        When fewer than ``budget`` nodes have positive marginal gain, the
        remaining picks are arbitrary unused nodes with zero gain — TRIM-B
        requires a size-``b`` batch regardless.

        ``stop_at_coverage`` ends the sweep as soon as that many sets are
        covered (seed-minimization callers such as ATEUC use this: they want
        the shortest prefix reaching a coverage target, not a fixed-size
        batch).

        Two exactly equivalent execution strategies:

        * ``lazy=True`` (default) — a CELF-style priority queue over stale
          gains.  Marginal gains are monotone non-increasing as coverage
          grows, so a popped entry whose recomputed gain still tops the
          queue is the true argmax; only popped nodes ever pay a
          recomputation (one slice of the inverted index), and no pick
          scans all ``n`` gains or touches the covered sets' members.
        * ``lazy=False`` — the eager reference: per pick, a full
          ``gains.argmax()`` scan plus one ``bincount`` gain decrement
          over the members of every newly covered set.

        Both resolve gain ties toward the smallest node id (the documented
        argmax convention — the heap orders equal gains by node id), so
        they return identical picks in identical order; the regression
        test pins this equivalence.
        """
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        if budget > self.n:
            raise ConfigurationError(
                f"budget {budget} exceeds node count {self.n}"
            )
        if lazy:
            return self._greedy_lazy(budget, stop_at_coverage)
        return self._greedy_eager(budget, stop_at_coverage)

    def _greedy_eager(
        self, budget: int, stop_at_coverage: int = None
    ) -> GreedyCoverResult:
        members, set_indptr = self.packed()
        gains = self._counts.copy()
        covered = np.zeros(self._num_sets, dtype=bool)
        node_indptr, node_sets = self._inverted_index()

        selected: list[int] = []
        marginal: list[int] = []
        covered_total = 0
        for _ in range(budget):
            if stop_at_coverage is not None and covered_total >= stop_at_coverage:
                break
            v = int(gains.argmax())
            gain = int(gains[v])
            if gain < 0:  # every node already selected (tiny graphs)
                break
            selected.append(v)
            marginal.append(max(gain, 0))
            if gain > 0:
                candidate_sids = node_sets[node_indptr[v] : node_indptr[v + 1]]
                fresh = candidate_sids[~covered[candidate_sids]]
                covered[fresh] = True
                covered_total += len(fresh)
                touched = members[gather_csr_rows(set_indptr, fresh)]
                gains -= np.bincount(touched, minlength=self.n)
            gains[v] = -1  # never reselect
        return GreedyCoverResult(selected, covered_total, marginal)

    def _greedy_lazy(
        self, budget: int, stop_at_coverage: int = None
    ) -> GreedyCoverResult:
        import heapq

        covered = np.zeros(self._num_sets, dtype=bool)
        node_indptr, node_sets = self._inverted_index()

        # Min-heap on (-gain, node): highest gain first, smallest node id
        # on ties — the same order the eager path's argmax resolves to.
        # Seeding from the maintained coverage counts costs one O(n) pass
        # total, not one per pick.
        heap = [(-int(g), v) for v, g in enumerate(self._counts)]
        heapq.heapify(heap)

        selected: list[int] = []
        marginal: list[int] = []
        covered_total = 0
        while len(selected) < budget and heap:
            if stop_at_coverage is not None and covered_total >= stop_at_coverage:
                break
            stale_gain, v = heapq.heappop(heap)
            sids = node_sets[node_indptr[v] : node_indptr[v + 1]]
            fresh = sids[~covered[sids]]
            gain = len(fresh)
            if gain != -stale_gain:
                # Stale bound (coverage grew since this entry was pushed):
                # re-queue with the current gain.  Submodularity guarantees
                # gain <= -stale_gain, so an up-to-date top entry is the
                # true argmax and can be committed immediately.
                heapq.heappush(heap, (-gain, v))
                continue
            selected.append(v)
            marginal.append(gain)
            if gain > 0:
                covered[fresh] = True
                covered_total += gain
        return GreedyCoverResult(selected, covered_total, marginal)

    def _inverted_index(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style node -> set-id index built on demand."""
        if self._num_sets == 0:
            return np.zeros(self.n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        members, indptr = self.packed()
        sizes = np.diff(indptr)
        set_ids = np.repeat(np.arange(self._num_sets, dtype=np.int64), sizes)
        order = np.argsort(members, kind="stable")
        counts = np.bincount(members, minlength=self.n)
        node_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=node_indptr[1:])
        return node_indptr, set_ids[order]


def _ensure_capacity(array: np.ndarray, needed: int) -> np.ndarray:
    """Amortized-doubling growth for the packed append buffers."""
    if len(array) >= needed:
        return array
    capacity = max(len(array) * 2, needed)
    grown = np.empty(capacity, dtype=array.dtype)
    grown[: len(array)] = array
    return grown


