"""Coverage bookkeeping over a pool of (m)RR sets.

Both TRIM's single-node selection (``argmax_v Lambda_R(v)``) and TRIM-B's
greedy maximum coverage operate on the same structure: a list of node sets
plus a per-node count of how many sets each node appears in.

:class:`CoverageIndex` maintains the counts incrementally as sets are added
(cheap, because each set touches only its members), exposes the argmax, and
implements the standard greedy maximum-coverage routine with its
``1 - (1 - 1/b)^b`` guarantee (Vazirani 2003), which is exactly the
``Greedy(R)`` of the paper's Algorithm 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SamplingError


@dataclass(frozen=True)
class GreedyCoverResult:
    """Outcome of greedy maximum coverage."""

    nodes: List[int]
    covered: int          # number of sets covered by `nodes`
    marginal_gains: List[int]  # sets newly covered by each pick, in order


class CoverageIndex:
    """A growable pool of node sets with per-node coverage counts."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"need n >= 1, got {n}")
        self.n = int(n)
        self._sets: List[np.ndarray] = []
        self._counts = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Pool growth
    # ------------------------------------------------------------------

    def add(self, members: np.ndarray) -> None:
        """Add one set (an array of distinct node ids)."""
        members = np.asarray(members, dtype=np.int64)
        if len(members) == 0:
            # An empty reverse sample cannot happen (roots are members), but
            # guard anyway: an empty set covers nothing and breaks argmax
            # invariants silently.
            raise SamplingError("cannot add an empty set to the coverage index")
        if members.min() < 0 or members.max() >= self.n:
            raise SamplingError("set contains node ids outside the graph")
        self._sets.append(members)
        self._counts[members] += 1

    def __len__(self) -> int:
        """Number of sets in the pool (``|R|`` in the paper)."""
        return len(self._sets)

    @property
    def sets(self) -> Sequence[np.ndarray]:
        """Read-only view of the stored sets."""
        return self._sets

    def total_size(self) -> int:
        """Sum of set sizes; proportional to greedy-cover cost."""
        return int(sum(len(s) for s in self._sets))

    # ------------------------------------------------------------------
    # Single-node coverage (TRIM)
    # ------------------------------------------------------------------

    def coverage_of(self, node: int) -> int:
        """``Lambda_R(v)``: number of sets containing ``node``."""
        if not 0 <= node < self.n:
            raise SamplingError(f"node {node} out of range for n={self.n}")
        return int(self._counts[node])

    def coverage_counts(self) -> np.ndarray:
        """A copy of the full per-node coverage vector."""
        return self._counts.copy()

    def argmax_node(self) -> Tuple[int, int]:
        """The node maximizing ``Lambda_R(v)`` and its coverage.

        Ties break toward the smallest node id (NumPy argmax convention),
        which keeps runs reproducible.
        """
        if len(self._sets) == 0:
            raise SamplingError("coverage index is empty; generate sets first")
        v = int(self._counts.argmax())
        return v, int(self._counts[v])

    def coverage_of_set(self, nodes: Sequence[int]) -> int:
        """``Lambda_R(S)``: number of sets hit by *any* node in ``S``."""
        node_mask = np.zeros(self.n, dtype=bool)
        for v in nodes:
            if not 0 <= v < self.n:
                raise SamplingError(f"node {v} out of range for n={self.n}")
            node_mask[v] = True
        hit = 0
        for members in self._sets:
            if node_mask[members].any():
                hit += 1
        return hit

    # ------------------------------------------------------------------
    # Greedy maximum coverage (TRIM-B / ATEUC)
    # ------------------------------------------------------------------

    def greedy_max_coverage(
        self, budget: int, stop_at_coverage: int = None
    ) -> GreedyCoverResult:
        """Pick up to ``budget`` nodes greedily maximizing covered-set count.

        Classic greedy: repeatedly take the node covering the most
        still-uncovered sets.  Guarantees coverage at least
        ``(1 - (1 - 1/budget)^budget) * OPT_budget`` (paper Line 8 of
        Algorithm 3 and Section 4.1).

        When fewer than ``budget`` nodes have positive marginal gain, the
        remaining picks are arbitrary unused nodes with zero gain — TRIM-B
        requires a size-``b`` batch regardless.

        ``stop_at_coverage`` ends the sweep as soon as that many sets are
        covered (seed-minimization callers such as ATEUC use this: they want
        the shortest prefix reaching a coverage target, not a fixed-size
        batch).
        """
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        if budget > self.n:
            raise ConfigurationError(
                f"budget {budget} exceeds node count {self.n}"
            )
        gains = self._counts.copy()
        covered = np.zeros(len(self._sets), dtype=bool)
        node_indptr, node_sets = self._inverted_index()

        selected: List[int] = []
        marginal: List[int] = []
        covered_total = 0
        for _ in range(budget):
            if stop_at_coverage is not None and covered_total >= stop_at_coverage:
                break
            v = int(gains.argmax())
            gain = int(gains[v])
            if gain < 0:  # every node already selected (tiny graphs)
                break
            selected.append(v)
            marginal.append(max(gain, 0))
            if gain > 0:
                for sid in node_sets[node_indptr[v] : node_indptr[v + 1]]:
                    if not covered[sid]:
                        covered[sid] = True
                        covered_total += 1
                        np.subtract.at(gains, self._sets[sid], 1)
            gains[v] = -1  # never reselect
        return GreedyCoverResult(selected, covered_total, marginal)

    def _inverted_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style node -> set-id index built on demand."""
        if not self._sets:
            return np.zeros(self.n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        lengths = np.fromiter((len(s) for s in self._sets), dtype=np.int64)
        flat_nodes = np.concatenate(self._sets)
        set_ids = np.repeat(np.arange(len(self._sets), dtype=np.int64), lengths)
        order = np.argsort(flat_nodes, kind="stable")
        counts = np.bincount(flat_nodes, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, set_ids[order]
