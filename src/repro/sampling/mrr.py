"""Multi-root reverse reachable (mRR) sets — the paper's Section 3.3.

A random mRR set is the set of nodes that reach *any* of ``k`` uniformly
random roots in a random realization (Definition 3.2).  The associated
binary estimator::

    Gamma~(S) = eta  if S intersects the mRR set, else 0

is a biased-but-bounded estimator of the expected truncated spread
``E[Gamma(S)] = E[min{I(S), eta}]``:

    (1 - 1/e) * E[Gamma(S)]  <=  E[Gamma~(S)]  <=  E[Gamma(S)]

(Theorem 3.3), *provided* the root count ``k`` uses the paper's randomized
rounding: with ``k_low = floor(n/eta)`` and ``r = n/eta - k_low``, draw
``k = k_low + 1`` with probability ``r`` and ``k = k_low`` otherwise, so
that ``E[k] = n / eta`` exactly.  Fixing ``k`` at either integer weakens the
bounds (the Remark after Corollary 3.4; reproduced as an ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError, SamplingError
from repro.graph.digraph import DiGraph
from repro.graph.residual import ResidualGraph
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.utils.rng import RandomSource, as_generator


@dataclass(frozen=True)
class RootCountRule:
    """The randomized-rounding distribution of the root-set size ``k``.

    ``k_low`` and ``k_low + 1`` with ``Pr[k_low + 1] = fraction``; both
    values are clamped to ``[1, n]`` so root sampling without replacement is
    always possible.
    """

    k_low: int
    fraction: float
    n: int

    @classmethod
    def for_target(cls, n: int, eta: int) -> RootCountRule:
        """Build the rule with ``E[k] = n / eta`` (paper Theorem 3.3).

        In round ``i`` callers pass the residual values ``n_i`` and
        ``eta_i`` (Corollary 3.4).
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if not 1 <= eta <= n:
            raise ConfigurationError(f"eta must be in [1, n={n}], got {eta}")
        expectation = n / eta
        k_low = int(expectation)
        fraction = expectation - k_low
        return cls(k_low=k_low, fraction=fraction, n=n)

    @classmethod
    def fixed(cls, k: int, n: int) -> RootCountRule:
        """Degenerate rule that always draws exactly ``k`` roots.

        Used by the rounding ablation and to recover vanilla RR sets
        (``k = 1``).
        """
        if not 1 <= k <= n:
            raise ConfigurationError(f"k must be in [1, n={n}], got {k}")
        return cls(k_low=k, fraction=0.0, n=n)

    @property
    def expectation(self) -> float:
        """``E[k]``."""
        return self.k_low + self.fraction

    def support(self) -> tuple[int, ...]:
        """The root counts this rule can produce, after clamping to [1, n].

        ``(k_low,)`` for a degenerate rule, ``(k_low, k_low + 1)``
        otherwise; adjacent rounds whose supports overlap can carry mRR
        sets across (the adaptive engine's pool-reuse validity check).
        """
        values = {min(max(self.k_low, 1), self.n)}
        if self.fraction > 0.0:
            values.add(min(max(self.k_low + 1, 1), self.n))
        return tuple(sorted(values))

    def draw(self, rng: np.random.Generator) -> int:
        """Sample one root count."""
        k = self.k_low + (1 if rng.random() < self.fraction else 0)
        return min(max(k, 1), self.n)


class MRRSampler:
    """Generates mRR sets on a fixed (residual) graph.

    Parameters
    ----------
    graph:
        The residual graph ``G_i``.
    model:
        Diffusion model providing :meth:`reverse_sample`.
    eta:
        The (residual) truncation target ``eta_i``; determines the root
        count rule unless an explicit ``rule`` is supplied.
    rule:
        Override the root-count distribution (ablations only).
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        eta: int,
        seed: RandomSource = None,
        rule: RootCountRule = None,
    ):
        if graph.n < 1:
            raise SamplingError("cannot sample mRR sets on an empty graph")
        if not 1 <= eta <= graph.n:
            raise SamplingError(
                f"eta must be in [1, n={graph.n}], got {eta}; an infeasible "
                f"shortfall should be caught before sampling"
            )
        self.graph = graph
        self.model = model
        self.eta = int(eta)
        self.rule = rule if rule is not None else RootCountRule.for_target(graph.n, eta)
        self._rng = as_generator(seed)
        self._scratch = np.zeros(graph.n, dtype=bool)

    def sample(self) -> np.ndarray:
        """One random mRR set (array of member node ids, roots included)."""
        k = self.rule.draw(self._rng)
        if k * 8 < self.graph.n:
            # Rejection-free distinct sampling via permutation is O(n); for
            # small k the direct choice without replacement is cheaper.
            roots = self._rng.choice(self.graph.n, size=k, replace=False)
        else:
            roots = self._rng.permutation(self.graph.n)[:k]
        return self.model.reverse_sample(self.graph, roots, self._rng, self._scratch)

    def sample_into(self, index: CoverageIndex, count: int) -> None:
        """Append ``count`` fresh mRR sets to a coverage index."""
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        for _ in range(count):
            index.add(self.sample())


class MRRCollection:
    """Coverage index plus batched engine, with truncated-spread estimation.

    Pool growth runs through the vectorized
    :class:`~repro.sampling.engine.BatchSampler`; the single-set
    :class:`MRRSampler` remains available as the distributional reference.

    Per-set root counts are tracked alongside the index so a round's final
    pool can be exported (:meth:`export_carry`) and re-validated into the
    next round's pool (:meth:`adopt`) by the adaptive engine's cross-round
    carry-over.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        eta: int,
        seed: RandomSource = None,
        rule: RootCountRule = None,
        batch_size: Optional[int] = None,
        runtime=None,
        context=None,
    ):
        rng = as_generator(seed)
        self.sampler = MRRSampler(graph, model, eta, rng, rule)
        self.engine = mrr_batch_sampler(
            graph, model, self.sampler.rule, rng, batch_size, runtime, context
        )
        self.index = CoverageIndex(graph.n)
        self._root_counts = np.empty(0, dtype=np.int64)
        self._adopted = 0

    @property
    def graph(self) -> DiGraph:
        return self.sampler.graph

    @property
    def eta(self) -> int:
        return self.sampler.eta

    def __len__(self) -> int:
        return len(self.index)

    @property
    def root_counts(self) -> np.ndarray:
        """Per-set root counts, aligned with the index (read-only view)."""
        return self._root_counts

    @property
    def adopted_count(self) -> int:
        """How many sets were carried over rather than freshly sampled."""
        return self._adopted

    @property
    def fresh_count(self) -> int:
        """How many sets this round actually paid for."""
        return len(self) - self._adopted

    def grow_to(self, theta: int) -> None:
        """Ensure the pool holds at least ``theta`` mRR sets (batched)."""
        missing = theta - len(self.index)
        if missing > 0:
            counts = self.engine.fill(self.index, missing)
            self._root_counts = np.concatenate([self._root_counts, counts])

    def adopt(
        self,
        members: np.ndarray,
        indptr: np.ndarray,
        root_counts: np.ndarray,
    ) -> None:
        """Seed an empty pool with carried-over sets (residual-local ids).

        Must run before any fresh sampling, so carried and fresh sets share
        one index; the carried sets count toward :attr:`adopted_count`, not
        toward :attr:`fresh_count`.
        """
        if len(self.index):
            raise SamplingError("can only adopt carried sets into an empty pool")
        if len(indptr) - 1 != len(root_counts):
            raise SamplingError("root_counts must have one entry per set")
        if len(root_counts) == 0:
            return
        # Carried sets lived in a coverage index last round and revalidation
        # only drops whole sets / remaps ids, so the invariants still hold.
        self.index.add_batch(members, indptr, validate=False)
        self._root_counts = np.asarray(root_counts, dtype=np.int64).copy()
        self._adopted = len(root_counts)

    def export_carry(self, residual: ResidualGraph) -> CarriedMRRPool:
        """Snapshot the pool in *original* node ids for the next round.

        ``residual`` must be the residual graph this pool was sampled on;
        original ids survive the next shrink, residual-local ids do not.
        """
        members, indptr = self.index.packed()
        return CarriedMRRPool(
            members=residual.original_ids[members],
            indptr=indptr.copy(),
            root_counts=self._root_counts.copy(),
        )

    def estimated_truncated_spread(self, seeds: Sequence[int]) -> float:
        """``E[Gamma~(S)] ~ eta * Lambda_R(S) / |R|``.

        By Theorem 3.3 this estimates ``E[Gamma(S)]`` up to a factor in
        ``[1 - 1/e, 1]``.
        """
        if len(self.index) == 0:
            raise SamplingError("no mRR sets generated yet")
        coverage = self.index.coverage_of_set(seeds)
        return self.eta * coverage / len(self.index)

    def estimated_node_truncated_spread(self, node: int) -> float:
        """Single-node estimate using the O(1) coverage counter."""
        if len(self.index) == 0:
            raise SamplingError("no mRR sets generated yet")
        return self.eta * self.index.coverage_of(node) / len(self.index)


@dataclass(frozen=True)
class CarryDiagnostics:
    """What happened to a carried pool during re-validation."""

    sets_offered: int            # pool size at the end of the previous round
    sets_carried: int            # sets that survived both checks
    dropped_activated: int       # sets containing a newly activated member
    dropped_root_count: int      # inactive sets with an invalid root count
    fallback: Optional[str] = None  # reason for a full from-scratch rebuild

    @property
    def carried_fraction(self) -> float:
        if self.sets_offered == 0:
            return 0.0
        return self.sets_carried / self.sets_offered


@dataclass(frozen=True)
class CarriedMRRPool:
    """A round's final mRR pool, exported in *original* node ids.

    The carry-over invariant: conditioned on every member being still
    inactive, a stored set is an exact reverse sample on the shrunk
    residual graph — the live-edge coins among inactive nodes are
    unconditioned by the survival event (a cascade enters the set only
    through an activated->member edge, and survival means precisely that
    all such coins came up blocked).  What carry-over cannot preserve
    exactly is the *root* distribution: the next round's rule
    ``E[k] = n_{i+1} / eta_{i+1}`` may shift to a different support, and
    surviving roots are uniform only conditioned on survival.
    :meth:`revalidate` therefore drops every set whose stored root count
    falls outside the new rule's support, and triggers a full from-scratch
    fallback when the supports are disjoint (the carried root-count
    distribution cannot represent the new rule at all).
    """

    members: np.ndarray        # packed member ids (original graph ids)
    indptr: np.ndarray         # set boundaries, length len(self) + 1
    root_counts: np.ndarray    # per-set root count k

    def __len__(self) -> int:
        return len(self.root_counts)

    def revalidate(
        self, residual: ResidualGraph
    ) -> tuple[Optional[tuple[np.ndarray, np.ndarray, np.ndarray]], CarryDiagnostics]:
        """Filter the pool against a new residual graph and shortfall.

        Returns ``((members_local, indptr, root_counts), diagnostics)``
        with surviving sets remapped to the new residual's local ids, or
        ``(None, diagnostics)`` when carry-over must fall back to a
        from-scratch pool (see ``diagnostics.fallback`` for the reason).
        """
        offered = len(self)
        if not 1 <= residual.shortfall <= residual.n:
            # The selector will raise InfeasibleTargetError (or finish)
            # before sampling; don't pretend the carried sets are valid.
            return None, CarryDiagnostics(
                offered, 0, 0, 0, fallback="infeasible shortfall"
            )
        rule = RootCountRule.for_target(residual.n, residual.shortfall)
        support = np.asarray(rule.support(), dtype=np.int64)
        k_valid = np.isin(self.root_counts, support)
        if offered and not k_valid.any():
            return None, CarryDiagnostics(
                offered,
                0,
                0,
                offered,
                fallback="root-count regime shifted off the carried support",
            )

        # Direct original -> local lookup table: one O(n) fill plus one
        # gather beats a log-factor searchsorted over the (much larger)
        # packed members array, which dominates revalidation cost.
        table_size = 1 + max(
            int(self.members.max(initial=-1)),
            int(residual.original_ids[-1]),
        )
        local_of = np.full(table_size, -1, dtype=np.int64)
        local_of[residual.original_ids] = np.arange(residual.n, dtype=np.int64)
        position = local_of[self.members]
        present = position >= 0
        inactive = (
            np.logical_and.reduceat(present, self.indptr[:-1])
            if offered
            else np.empty(0, dtype=bool)
        )
        keep = inactive & k_valid
        sizes = np.diff(self.indptr)
        members_local = position[np.repeat(keep, sizes)]
        indptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
        np.cumsum(sizes[keep], out=indptr[1:])
        diagnostics = CarryDiagnostics(
            sets_offered=offered,
            sets_carried=int(keep.sum()),
            dropped_activated=int((~inactive).sum()),
            dropped_root_count=int((inactive & ~k_valid).sum()),
        )
        return (members_local, indptr, self.root_counts[keep]), diagnostics


def build_round_pool(
    residual: ResidualGraph,
    model: DiffusionModel,
    rng: np.random.Generator,
    batch_size: Optional[int] = None,
    carry: Optional[CarriedMRRPool] = None,
    runtime=None,
    context=None,
) -> tuple[MRRCollection, CarryDiagnostics]:
    """One round's mRR pool, optionally pre-loaded from the previous round.

    The shared prologue of TRIM and TRIM-B with pool reuse enabled: build
    the :class:`MRRCollection` for ``(residual.graph, residual.shortfall)``,
    and when a :class:`CarriedMRRPool` is offered, adopt every set that
    survives :meth:`CarriedMRRPool.revalidate` before any fresh sampling.
    ``context`` supplies the ``batch_size`` / ``runtime`` defaults.
    """
    pool = MRRCollection(
        residual.graph,
        model,
        residual.shortfall,
        seed=rng,
        batch_size=batch_size,
        runtime=runtime,
        context=context,
    )
    if context is not None:
        context.tally("mrr_pools_built")
    if carry is None:
        return pool, CarryDiagnostics(0, 0, 0, 0)
    kept, diagnostics = carry.revalidate(residual)
    if kept is not None:
        pool.adopt(*kept)
    if context is not None:
        context.tally("mrr_sets_carried", diagnostics.sets_carried)
        context.tally("mrr_sets_dropped", diagnostics.sets_offered - diagnostics.sets_carried)
    return pool, diagnostics


def estimate_truncated_spread_mrr(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    eta: int,
    theta: int = 2000,
    seed: RandomSource = None,
    rule: RootCountRule = None,
    batch_size: Optional[int] = None,
    jobs: Optional[int] = None,
    context=None,
) -> float:
    """One-shot convenience: generate ``theta`` mRR sets and estimate.

    Used by tests, examples, and the rounding ablation; production code
    should reuse an :class:`MRRCollection` across queries instead.

    ``context`` supplies the batching/parallelism policy; alternatively the
    legacy ``jobs`` knob switches pool generation to the chunk-seeded
    parallel scheme (``None`` keeps the historical in-process stream; any
    ``jobs >= 1`` yields the same estimate for every worker count).
    """
    from repro.runtime.context import UNSET, resolve_context

    context, owns = resolve_context(
        context,
        "estimate_truncated_spread_mrr",
        jobs=UNSET if jobs is None else jobs,
    )
    try:
        collection = MRRCollection(
            graph, model, eta, seed, rule, batch_size, context=context
        )
        collection.grow_to(theta)
        return collection.estimated_truncated_spread(seeds)
    finally:
        if owns:
            context.close()
