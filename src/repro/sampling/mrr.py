"""Multi-root reverse reachable (mRR) sets — the paper's Section 3.3.

A random mRR set is the set of nodes that reach *any* of ``k`` uniformly
random roots in a random realization (Definition 3.2).  The associated
binary estimator::

    Gamma~(S) = eta  if S intersects the mRR set, else 0

is a biased-but-bounded estimator of the expected truncated spread
``E[Gamma(S)] = E[min{I(S), eta}]``:

    (1 - 1/e) * E[Gamma(S)]  <=  E[Gamma~(S)]  <=  E[Gamma(S)]

(Theorem 3.3), *provided* the root count ``k`` uses the paper's randomized
rounding: with ``k_low = floor(n/eta)`` and ``r = n/eta - k_low``, draw
``k = k_low + 1`` with probability ``r`` and ``k = k_low`` otherwise, so
that ``E[k] = n / eta`` exactly.  Fixing ``k`` at either integer weakens the
bounds (the Remark after Corollary 3.4; reproduced as an ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.errors import ConfigurationError, SamplingError
from repro.graph.digraph import DiGraph
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import DEFAULT_BATCH_SIZE, mrr_batch_sampler
from repro.utils.rng import RandomSource, as_generator


@dataclass(frozen=True)
class RootCountRule:
    """The randomized-rounding distribution of the root-set size ``k``.

    ``k_low`` and ``k_low + 1`` with ``Pr[k_low + 1] = fraction``; both
    values are clamped to ``[1, n]`` so root sampling without replacement is
    always possible.
    """

    k_low: int
    fraction: float
    n: int

    @classmethod
    def for_target(cls, n: int, eta: int) -> "RootCountRule":
        """Build the rule with ``E[k] = n / eta`` (paper Theorem 3.3).

        In round ``i`` callers pass the residual values ``n_i`` and
        ``eta_i`` (Corollary 3.4).
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if not 1 <= eta <= n:
            raise ConfigurationError(f"eta must be in [1, n={n}], got {eta}")
        expectation = n / eta
        k_low = int(expectation)
        fraction = expectation - k_low
        return cls(k_low=k_low, fraction=fraction, n=n)

    @classmethod
    def fixed(cls, k: int, n: int) -> "RootCountRule":
        """Degenerate rule that always draws exactly ``k`` roots.

        Used by the rounding ablation and to recover vanilla RR sets
        (``k = 1``).
        """
        if not 1 <= k <= n:
            raise ConfigurationError(f"k must be in [1, n={n}], got {k}")
        return cls(k_low=k, fraction=0.0, n=n)

    @property
    def expectation(self) -> float:
        """``E[k]``."""
        return self.k_low + self.fraction

    def draw(self, rng: np.random.Generator) -> int:
        """Sample one root count."""
        k = self.k_low + (1 if rng.random() < self.fraction else 0)
        return min(max(k, 1), self.n)


class MRRSampler:
    """Generates mRR sets on a fixed (residual) graph.

    Parameters
    ----------
    graph:
        The residual graph ``G_i``.
    model:
        Diffusion model providing :meth:`reverse_sample`.
    eta:
        The (residual) truncation target ``eta_i``; determines the root
        count rule unless an explicit ``rule`` is supplied.
    rule:
        Override the root-count distribution (ablations only).
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        eta: int,
        seed: RandomSource = None,
        rule: RootCountRule = None,
    ):
        if graph.n < 1:
            raise SamplingError("cannot sample mRR sets on an empty graph")
        if not 1 <= eta <= graph.n:
            raise SamplingError(
                f"eta must be in [1, n={graph.n}], got {eta}; an infeasible "
                f"shortfall should be caught before sampling"
            )
        self.graph = graph
        self.model = model
        self.eta = int(eta)
        self.rule = rule if rule is not None else RootCountRule.for_target(graph.n, eta)
        self._rng = as_generator(seed)
        self._scratch = np.zeros(graph.n, dtype=bool)

    def sample(self) -> np.ndarray:
        """One random mRR set (array of member node ids, roots included)."""
        k = self.rule.draw(self._rng)
        if k * 8 < self.graph.n:
            # Rejection-free distinct sampling via permutation is O(n); for
            # small k the direct choice without replacement is cheaper.
            roots = self._rng.choice(self.graph.n, size=k, replace=False)
        else:
            roots = self._rng.permutation(self.graph.n)[:k]
        return self.model.reverse_sample(self.graph, roots, self._rng, self._scratch)

    def sample_into(self, index: CoverageIndex, count: int) -> None:
        """Append ``count`` fresh mRR sets to a coverage index."""
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        for _ in range(count):
            index.add(self.sample())


class MRRCollection:
    """Coverage index plus batched engine, with truncated-spread estimation.

    Pool growth runs through the vectorized
    :class:`~repro.sampling.engine.BatchSampler`; the single-set
    :class:`MRRSampler` remains available as the distributional reference.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        eta: int,
        seed: RandomSource = None,
        rule: RootCountRule = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        rng = as_generator(seed)
        self.sampler = MRRSampler(graph, model, eta, rng, rule)
        self.engine = mrr_batch_sampler(
            graph, model, self.sampler.rule, rng, batch_size
        )
        self.index = CoverageIndex(graph.n)

    @property
    def graph(self) -> DiGraph:
        return self.sampler.graph

    @property
    def eta(self) -> int:
        return self.sampler.eta

    def __len__(self) -> int:
        return len(self.index)

    def grow_to(self, theta: int) -> None:
        """Ensure the pool holds at least ``theta`` mRR sets (batched)."""
        missing = theta - len(self.index)
        if missing > 0:
            self.engine.fill(self.index, missing)

    def estimated_truncated_spread(self, seeds: Sequence[int]) -> float:
        """``E[Gamma~(S)] ~ eta * Lambda_R(S) / |R|``.

        By Theorem 3.3 this estimates ``E[Gamma(S)]`` up to a factor in
        ``[1 - 1/e, 1]``.
        """
        if len(self.index) == 0:
            raise SamplingError("no mRR sets generated yet")
        coverage = self.index.coverage_of_set(seeds)
        return self.eta * coverage / len(self.index)

    def estimated_node_truncated_spread(self, node: int) -> float:
        """Single-node estimate using the O(1) coverage counter."""
        if len(self.index) == 0:
            raise SamplingError("no mRR sets generated yet")
        return self.eta * self.index.coverage_of(node) / len(self.index)


def estimate_truncated_spread_mrr(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    eta: int,
    theta: int = 2000,
    seed: RandomSource = None,
    rule: RootCountRule = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> float:
    """One-shot convenience: generate ``theta`` mRR sets and estimate.

    Used by tests, examples, and the rounding ablation; production code
    should reuse an :class:`MRRCollection` across queries instead.
    """
    collection = MRRCollection(graph, model, eta, seed, rule, batch_size)
    collection.grow_to(theta)
    return collection.estimated_truncated_spread(seeds)
