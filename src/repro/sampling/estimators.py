"""Spread estimators layered over coverage counts.

Thin, well-named conversions between the coverage world (``Lambda_R``) and
the spread world (``I``, ``Gamma``), plus the bias analysis from the paper's
Section 3.2 showing why vanilla RR sets *cannot* estimate the truncated
spread (their estimator is off by a factor up to ``eta / n``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def rr_spread_estimate(coverage: int, pool_size: int, n: int) -> float:
    """Unbiased RR estimate: ``E[I(S)] = n * Pr[R hit S]``."""
    _check(coverage, pool_size)
    return n * coverage / pool_size


def mrr_truncated_estimate(coverage: int, pool_size: int, eta: int) -> float:
    """mRR binary estimate: ``E[Gamma~(S)] = eta * Pr[R hit S]``."""
    _check(coverage, pool_size)
    if eta < 1:
        raise ConfigurationError(f"eta must be >= 1, got {eta}")
    return eta * coverage / pool_size


def rr_truncated_bias_factor(eta: int, n: int) -> float:
    """Worst-case shrinkage of the naive RR truncated estimator.

    Section 3.2: scaling the RR hit probability by ``eta`` yields
    ``(eta / n) * E[I(S)]``, so whenever ``I_phi(S) <= eta`` for all
    realizations the naive estimator is a factor ``eta / n`` too small —
    "extremely inaccurate when eta << n".  Returned for reporting in the
    ablation bench.
    """
    if not 1 <= eta <= n:
        raise ConfigurationError(f"eta must be in [1, n={n}], got {eta}")
    return eta / n


@dataclass(frozen=True)
class EstimatorGuarantee:
    """The multiplicative bracket an estimator carries.

    ``low * truth <= E[estimate] <= high * truth``.
    """

    low: float
    high: float

    def contains(self, ratio: float, slack: float = 0.0) -> bool:
        """Whether an observed estimate/truth ratio sits in the bracket."""
        return (self.low - slack) <= ratio <= (self.high + slack)


#: Theorem 3.3: randomized-rounding mRR estimator bracket.
MRR_RANDOMIZED_ROUNDING = EstimatorGuarantee(low=1.0 - 1.0 / 2.718281828459045, high=1.0)

#: Remark after Corollary 3.4: fixing k = floor(n/eta) gives [1 - 1/sqrt(e), 1].
MRR_FIXED_FLOOR = EstimatorGuarantee(low=1.0 - 1.0 / 1.6487212707001282, high=1.0)

#: Remark after Corollary 3.4: fixing k = floor(n/eta) + 1 gives [1 - 1/e, 2].
MRR_FIXED_CEIL = EstimatorGuarantee(low=1.0 - 1.0 / 2.718281828459045, high=2.0)


def _check(coverage: int, pool_size: int) -> None:
    if pool_size < 1:
        raise ConfigurationError(f"pool_size must be >= 1, got {pool_size}")
    if not 0 <= coverage <= pool_size:
        raise ConfigurationError(
            f"coverage must be in [0, pool_size={pool_size}], got {coverage}"
        )
