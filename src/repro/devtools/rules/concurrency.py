"""Concurrency rules: REP003 (picklable dispatch), REP005 (paired release).

The parallel runtime's fault tolerance rebuilds worker pools mid-dispatch
and resubmits unfinished chunks; both depend on every dispatched callable
being a **module-level function** (the spawn-context picklability
contract) and on every ad-hoc shared-memory publication having a release
path that survives exceptions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import Optional, Union

from repro.devtools.rules.base import (
    Finding,
    Module,
    Rule,
    attr_chain,
    first_positional,
)

#: The dispatch entry points whose first callable argument ships to spawned
#: worker processes: ``ParallelRuntime.map_ordered`` and executor
#: ``submit`` (both the runtime's internal use and any direct pool use).
DISPATCH_METHODS = frozenset({"map_ordered", "submit"})

_ScopeNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


class PicklableDispatchRule(Rule):
    """REP003 — worker-pool callables must be module-level functions.

    Lambdas, closures, and bound methods pickle either not at all or by
    reference to state the spawned worker does not have; a dispatch that
    works today under ``fork``-like luck breaks under the spawn context
    and under fault-tolerant resubmission.  Unresolvable callables (a
    parameter, a variable) are given the benefit of the doubt — the rule
    only flags constructs that *cannot* be module-level functions.
    """

    code = "REP003"
    name = "picklable-dispatch"
    hint = (
        "move the dispatched callable to module scope (see "
        "repro.parallel.tasks' worker_* functions)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        # Walk with an explicit function-scope stack so a Name argument can
        # be classified as a closure (bound by a def nested inside the
        # enclosing function) vs a module-level function.
        yield from self._walk(module, module.tree, scopes=())

    def _walk(
        self,
        module: Module,
        node: ast.AST,
        scopes: tuple[_ScopeNode, ...],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node, scopes)
        child_scopes = scopes
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            child_scopes = scopes + (node,)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, child_scopes)

    def _check_call(
        self,
        module: Module,
        call: ast.Call,
        scopes: tuple[_ScopeNode, ...],
    ) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in DISPATCH_METHODS):
            return
        target = first_positional(call)
        if target is None:
            return
        problem = self._classify(module, target, scopes)
        if problem is not None:
            yield self.finding(
                module,
                target,
                f"{problem} passed to {func.attr}() — dispatched callables "
                "must be module-level functions (spawn-context pickling; "
                "fault-tolerant resubmission re-pickles them)",
            )

    def _classify(
        self,
        module: Module,
        target: ast.expr,
        scopes: tuple[_ScopeNode, ...],
    ) -> Optional[str]:
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name):
            for scope in scopes:
                if isinstance(scope, ast.Lambda):
                    continue
                for stmt in ast.walk(scope):
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt is not scope
                        and stmt.name == target.id
                    ):
                        return f"nested function '{target.id}'"
            return None
        if isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain is not None and chain[0] in ("self", "cls"):
                return f"bound method '{'.'.join(chain)}'"
        return None


class PairedReleaseRule(Rule):
    """REP005 — ``publish_arrays`` must have exception-safe release.

    The bare tuple API hands back ``(handle, release)``; losing the
    release closure to an exception pins the shared segment until the
    runtime closes.  A publication is accepted when the release closure
    is invoked from a ``finally`` block or registered with an ExitStack
    (``enter_context`` / ``callback`` / ``push``) in the same function —
    otherwise the fix is the ``published()`` context manager.
    """

    code = "REP005"
    name = "paired-shm-release"
    hint = (
        "use runtime.published(arrays) as a context manager, or register "
        "the release closure with an ExitStack / call it in a finally block"
    )
    # The runtime module itself hosts the publish/release implementation
    # (publish_arrays and the published() wrapper around it).
    exempt_paths = ("repro/parallel/runtime.py",)

    _REGISTER_METHODS = frozenset({"enter_context", "callback", "push"})

    def check(self, module: Module) -> Iterator[Finding]:
        enclosing = _enclosing_function_index(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "publish_arrays"):
                continue
            scope = enclosing.get(node)
            if scope is not None and self._released_in(scope, node):
                continue
            yield self.finding(
                module,
                node,
                "publish_arrays() without paired release handling — an "
                "exception here pins the shared-memory segment until the "
                "runtime closes",
            )

    def _released_in(self, scope: ast.AST, call: ast.Call) -> bool:
        release_name = self._release_target(scope, call)
        if release_name is None:
            return False
        for node in ast.walk(scope):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Name) and sub.id == release_name:
                            return True
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._REGISTER_METHODS
                ):
                    for sub_arg in node.args:
                        for sub in ast.walk(sub_arg):
                            if isinstance(sub, ast.Name) and sub.id == release_name:
                                return True
        return False

    @staticmethod
    def _release_target(scope: ast.AST, call: ast.Call) -> Optional[str]:
        """The name the call's release closure is unpacked into, if any."""
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign) or node.value is not call:
                continue
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) == 2:
                second = target.elts[1]
                if isinstance(second, ast.Name):
                    return second.id
        return None


def _enclosing_function_index(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map every node to its innermost enclosing function definition."""
    index: dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
        if current is not None:
            index[node] = current
        nxt = node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else current
        for child in ast.iter_child_nodes(node):
            visit(child, nxt)

    visit(tree, None)
    return index
