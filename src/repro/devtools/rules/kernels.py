"""Kernel rule: REP004 — ``kernels/reference.py`` stays njit-compilable.

``repro/kernels/reference.py`` is the single source the numba backend
compiles (``numba_backend.py`` wraps each function in ``njit``) and the
interpreted ``python`` backend executes as-is.  A construct outside the
nopython subset would import fine, pass the numpy-backend tests, and only
explode at first JIT on a numba-enabled machine — this rule fails it at
lint time instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.rules.base import Finding, Module, Rule

#: numpy callables the compiled kernels are allowed to invoke: the subset
#: ``numba_backend.py`` demonstrably compiles today (allocation, dtype
#: casts, and the few elementwise helpers the per-level loops need).
#: Extend deliberately, alongside a compiled-identity test.
NJIT_SAFE_NUMPY_CALLS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "empty_like",
        "zeros_like",
        "searchsorted",
        "minimum",
        "maximum",
        "abs",
        "sqrt",
        "floor",
        "ceil",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float32",
        "float64",
        "bool_",
        "intp",
    }
)


class NjitSafeKernelRule(Rule):
    """REP004 — kernel bodies restricted to the njit-compilable subset."""

    code = "REP004"
    name = "njit-safe-kernels"
    hint = (
        "keep kernels inside the numba nopython subset compiled by "
        "repro/kernels/numba_backend.py (typed loops over the CSR arrays; "
        "allocation via the allowlisted numpy constructors)"
    )
    only_paths = ("repro/kernels/reference.py",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_kernel(module, node)

    def _check_kernel(
        self, module: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        if fn.args.kwarg is not None:
            yield self.finding(
                module, fn, f"kernel {fn.name}() takes **{fn.args.kwarg.arg} — "
                "**kwargs is outside the njit signature model",
            )
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.finding(
                    module, node,
                    f"nested function {node.name}() inside kernel {fn.name}() "
                    "— closures are not njit-compilable",
                )
            elif isinstance(node, ast.Lambda):
                yield self.finding(
                    module, node,
                    f"lambda inside kernel {fn.name}() — closures are not "
                    "njit-compilable",
                )
            elif isinstance(node, (ast.Dict, ast.DictComp)):
                yield self.finding(
                    module, node,
                    f"dict literal inside kernel {fn.name}() — reflected "
                    "dicts are outside the supported nopython subset",
                )
            elif isinstance(node, (ast.Set, ast.SetComp)):
                yield self.finding(
                    module, node,
                    f"set literal inside kernel {fn.name}() — reflected "
                    "sets are outside the supported nopython subset",
                )
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield self.finding(
                    module, node,
                    f"yield inside kernel {fn.name}() — generator kernels "
                    "cannot be njit-cached",
                )
            elif isinstance(node, (ast.Try, ast.With, ast.AsyncWith)):
                kind = "try/except" if isinstance(node, ast.Try) else "with"
                yield self.finding(
                    module, node,
                    f"{kind} block inside kernel {fn.name}() — unsupported "
                    "in the nopython pipeline the backend pins",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, fn, node)
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if self._is_object_dtype(module, node.value):
                    yield self.finding(
                        module, node.value,
                        f"object-dtype array inside kernel {fn.name}() — "
                        "object arrays never compile",
                    )

    def _check_call(
        self,
        module: Module,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
    ) -> Iterator[Finding]:
        if module.numpy_random_callee(call.func) is not None:
            yield self.finding(
                module, call,
                f"numpy.random call inside kernel {fn.name}() — kernels "
                "never draw randomness; the dispatch layer passes draws in",
            )
            return
        callee = module.numpy_callee(call.func)
        if callee is not None and callee not in NJIT_SAFE_NUMPY_CALLS:
            yield self.finding(
                module, call,
                f"np.{callee}() inside kernel {fn.name}() is not in the "
                "njit-safe allowlist compiled by numba_backend.py",
            )

    @staticmethod
    def _is_object_dtype(module: Module, value: ast.expr) -> bool:
        if isinstance(value, ast.Name) and value.id == "object":
            return True
        if isinstance(value, ast.Constant) and value.value == "object":
            return True
        callee = module.numpy_callee(value) if isinstance(value, ast.Attribute) else None
        return callee in ("object_", "obj2sctype")
