"""Policy rule: REP006 — engine policy routes through ``ExecutionContext``.

PR 5 collapsed the per-layer knob chains (``sample_batch_size``,
``mc_batch_size``, ``jobs``, ...) into one :class:`ExecutionContext`
owned at the top of a run; the only sanctioned bridge back to per-knob
keywords is the ``resolve_context`` deprecation shim.  This rule stops
the chains from growing back: an engine-layer function that takes a bare
policy knob as a parameter is a finding unless it forwards it through
``resolve_context``, also accepts a ``context`` parameter (the documented
explicit-override hybrid: the knob overrides the context per call, it
does not replace it), or lives in one of the modules that *define* the
policy layer.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.rules.base import (
    Finding,
    FunctionNode,
    Module,
    Rule,
    parameters_of,
)

#: The engine-policy knobs ExecutionContext owns.  A parameter with one of
#: these names on an engine-layer function is a policy chain regrowing.
POLICY_KWARGS = frozenset(
    {
        "sample_batch_size",
        "mc_batch_size",
        "mc_tolerance",
        "reuse_pool",
        "jobs",
        "max_samples",
        "graph_storage",
        "kernel_backend",
    }
)


class ContextPolicyRule(Rule):
    """REP006 — no bare policy kwargs outside the ``resolve_context`` shim."""

    code = "REP006"
    name = "policy-via-context"
    hint = (
        "accept context: ExecutionContext instead, or alongside the knob "
        "as an explicit override (legacy keywords belong behind the "
        "resolve_context deprecation shim)"
    )
    #: Engine-layer scope: the installed package only.  Benchmark drivers
    #: and examples legitimately sweep raw knob values from argv/grids.
    _ENGINE_MARKER = "repro/"
    #: Modules that define the policy layer itself: the context (owner of
    #: every knob), the shared validators, the experiment config (the
    #: sweep's declarative source of a context), the CLI (argv boundary),
    #: and the parallel runtime (``jobs`` is its constructor's domain —
    #: the context passes it down, it does not read it back).
    exempt_paths = (
        "repro/runtime/context.py",
        "repro/utils/validation.py",
        "repro/experiments/config.py",
        "repro/cli.py",
        "repro/parallel/runtime.py",
    )

    def applies_to(self, path: str) -> bool:
        if self._ENGINE_MARKER not in path:
            return False
        return super().applies_to(path)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = list(parameters_of(node))
            knobs = sorted(
                param.arg for param in params if param.arg in POLICY_KWARGS
            )
            if not knobs:
                continue
            # A `context` parameter next to the knob is the sanctioned
            # explicit-override hybrid; the knob is "bare" only when no
            # context route exists at all.
            if any(param.arg == "context" for param in params):
                continue
            if self._routes_through_shim(node):
                continue
            yield self.finding(
                module,
                node,
                f"{node.name}() grows bare policy "
                f"{'kwarg' if len(knobs) == 1 else 'kwargs'} "
                f"{', '.join(knobs)} — engine policy routes through "
                "ExecutionContext",
            )

    @staticmethod
    def _routes_through_shim(node: FunctionNode) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "resolve_context":
                return True
        return False
