"""Determinism rules: REP001 (global-state RNG), REP002 (unseeded RNG).

The library's reproducibility contract is that every random draw comes
from a caller-provided :class:`numpy.random.Generator`, rooted in a
``SeedSequence`` owned at the top of a run (PR 4's chunk-indexed seeding
makes pools bit-identical for any worker count *only* because no code
path ever touches process-global RNG state or mints entropy of its own).
These two rules make that contract a static property.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.rules.base import (
    Finding,
    Module,
    Rule,
    first_positional,
    is_none,
    iter_calls,
)

#: The legacy global-state ``numpy.random`` API: every one of these reads
#: or mutates the hidden module-level ``RandomState``, so a call anywhere
#: silently couples two components' streams (and differs across worker
#: processes, which each inherit their own copy of the global state).
GLOBAL_STATE_FNS = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
        "beta",
        "gamma",
        "lognormal",
        "pareto",
        "power",
        "zipf",
        "RandomState",
    }
)

#: numpy bit-generator constructors REP002 looks through: a ``Generator``
#: wrapping one of these built with no seed is still unseeded entropy.
BIT_GENERATORS = frozenset({"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"})


class GlobalStateRandomRule(Rule):
    """REP001 — no global-state ``numpy.random`` calls, anywhere."""

    code = "REP001"
    name = "no-global-numpy-rng"
    hint = (
        "draw from a caller-provided numpy.random.Generator "
        "(ExecutionContext.generator / spawn_seed_sequences) instead of "
        "the process-global numpy.random state"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for call in iter_calls(module.tree):
            callee = module.numpy_random_callee(call.func)
            if callee in GLOBAL_STATE_FNS:
                yield self.finding(
                    module,
                    call,
                    f"call to the global-state numpy.random.{callee}() — "
                    "hidden shared RNG state breaks worker-count and "
                    "rerun reproducibility",
                )


class UnseededGeneratorRule(Rule):
    """REP002 — unseeded RNG construction outside the context's factory.

    ``default_rng()`` (or ``default_rng(None)``, or ``Generator`` over a
    bit generator built without a seed) mints fresh OS entropy, so the
    stream can never be replayed or attributed to a run's root seed.
    Only the RNG factory behind ``ExecutionContext.generator`` — where
    ``seed=None`` is the documented opt-in to fresh entropy — may do it.
    """

    code = "REP002"
    name = "no-unseeded-rng"
    hint = (
        "take a seed / Generator argument and normalize it via "
        "ExecutionContext.generator (repro.utils.rng.as_generator)"
    )
    exempt_paths = (
        "repro/runtime/context.py",
        "repro/utils/rng.py",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for call in iter_calls(module.tree):
            callee = module.numpy_random_callee(call.func)
            if callee == "default_rng" and self._unseeded(module, call):
                yield self.finding(
                    module,
                    call,
                    "unseeded default_rng() construction — fresh OS "
                    "entropy makes the stream unreproducible",
                )
            elif callee == "Generator" and self._unseeded_generator(module, call):
                yield self.finding(
                    module,
                    call,
                    "Generator(...) built over an unseeded bit generator — "
                    "fresh OS entropy makes the stream unreproducible",
                )

    @staticmethod
    def _unseeded(module: Module, call: ast.Call) -> bool:
        if call.keywords:
            return False
        arg = first_positional(call)
        return (not call.args) or is_none(arg)

    def _unseeded_generator(self, module: Module, call: ast.Call) -> bool:
        arg = first_positional(call)
        if arg is None and not call.args:
            return True  # Generator() — invalid anyway, but surely unseeded
        if not isinstance(arg, ast.Call):
            return False
        inner = module.numpy_random_callee(arg.func)
        if inner not in BIT_GENERATORS:
            return False
        return self._unseeded(module, arg)
