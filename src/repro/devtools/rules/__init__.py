"""The rule catalog for :mod:`repro.devtools.lint`.

Each rule guards one invariant the equivalence/chaos test suites would
otherwise only catch minutes into tier-1:

=======  ====================  ==============================================
code     name                  invariant guarded
=======  ====================  ==============================================
REP001   no-global-numpy-rng   all randomness flows from caller-owned
                               Generators (worker-count bit-identity)
REP002   no-unseeded-rng       every stream is attributable to a run's
                               root seed (replayability)
REP003   picklable-dispatch    worker payloads survive spawn-context
                               pickling and fault-tolerant resubmission
REP004   njit-safe-kernels     kernels/reference.py compiles under njit
                               on numba-enabled machines
REP005   paired-shm-release    ad-hoc shm publications cannot leak their
                               release closure to an exception
REP006   policy-via-context    engine policy stays in ExecutionContext
                               (no per-knob parameter chains regrowing)
REP007   no-bare-sleep         blocking sleeps route through the sanctioned
                               backoff helper; async code never blocks the
                               event loop (await asyncio.sleep)
=======  ====================  ==============================================

Adding a rule: subclass :class:`~repro.devtools.rules.base.Rule` in a
module here, set ``code``/``name``/``hint`` (and ``only_paths`` /
``exempt_paths`` if scoped), implement ``check``, and append an instance
to :data:`ALL_RULES`; the CLI, suppression comments, JSON output, and the
fixture-pair test pattern in ``tests/test_devtools_lint.py`` pick it up
from there.
"""

from __future__ import annotations

from repro.devtools.rules.base import Finding, Module, Rule
from repro.devtools.rules.concurrency import PairedReleaseRule, PicklableDispatchRule
from repro.devtools.rules.determinism import (
    GlobalStateRandomRule,
    UnseededGeneratorRule,
)
from repro.devtools.rules.kernels import NjitSafeKernelRule
from repro.devtools.rules.policy import ContextPolicyRule
from repro.devtools.rules.sleeps import BlockingSleepRule

#: Every registered rule, in code order.
ALL_RULES: tuple[Rule, ...] = (
    GlobalStateRandomRule(),
    UnseededGeneratorRule(),
    PicklableDispatchRule(),
    NjitSafeKernelRule(),
    PairedReleaseRule(),
    ContextPolicyRule(),
    BlockingSleepRule(),
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "Module",
    "Rule",
]
