"""Shared machinery for the project lint rules.

Every rule is a :class:`Rule` subclass with a stable code (``REPxxx``), a
one-line fix hint, and an optional path scope.  Rules receive a parsed
module and report :class:`Finding` objects; suppression comments and
output formatting live in :mod:`repro.devtools.lint`, so rules stay pure
AST analyses.

Path scoping matches on *posix path suffixes* (``repro/kernels/
reference.py``), never on absolute paths — the linter's own tests copy
real source files into scratch mirrors and the rules must recognize them
there exactly as they do in the working tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str


@dataclass
class Module:
    """A parsed source file plus the derived indexes rules share."""

    path: str  # normalized to posix separators
    tree: ast.Module
    source: str
    #: Names bound to the numpy module itself (``import numpy as np``).
    numpy_aliases: set[str] = field(default_factory=set)
    #: Names bound to the ``numpy.random`` module (``from numpy import
    #: random as npr`` / ``import numpy.random as npr``).
    random_aliases: set[str] = field(default_factory=set)
    #: Local name -> ``numpy.random`` attribute for ``from numpy.random
    #: import default_rng as rng_factory`` style imports.
    from_random: dict[str, str] = field(default_factory=dict)
    #: Names bound at module scope by def/class/import statements — the
    #: names REP003 accepts as picklable worker payloads.
    module_level_names: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._index_imports()

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random" and alias.asname:
                        self.random_aliases.add(alias.asname)
                    elif alias.name == "numpy.random":
                        self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.from_random[alias.asname or alias.name] = alias.name
        for node in self.tree.body:
            for name in _bound_names(node):
                self.module_level_names.add(name)

    # ------------------------------------------------------------------
    # numpy.random call resolution (shared by REP001/REP002)
    # ------------------------------------------------------------------

    def numpy_random_callee(self, func: ast.expr) -> Optional[str]:
        """The ``numpy.random`` attribute a call expression resolves to.

        Returns e.g. ``"seed"`` for ``np.random.seed`` / ``npr.seed`` /
        a bare ``seed`` imported from ``numpy.random``; ``None`` when the
        callee is not a ``numpy.random`` attribute.
        """
        if isinstance(func, ast.Name):
            return self.from_random.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in self.random_aliases:
                return func.attr
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.numpy_aliases
            ):
                return func.attr
        return None

    def numpy_callee(self, func: ast.expr) -> Optional[str]:
        """The top-level numpy attribute of ``np.<attr>`` calls, else None."""
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_aliases
        ):
            return func.attr
        return None


def _bound_names(node: ast.stmt) -> Iterator[str]:
    """Names a top-level statement binds in its enclosing namespace."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            yield alias.asname or alias.name
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    yield name_node.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id


def attr_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """The dotted-name parts of a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    code: str = "REP000"
    name: str = "base"
    #: One-line fix hint rendered next to every finding.
    hint: str = ""
    #: Posix path suffixes this rule is limited to (empty = every file).
    only_paths: tuple[str, ...] = ()
    #: Posix path suffixes exempt from this rule.
    exempt_paths: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.endswith(suffix) for suffix in self.exempt_paths):
            return False
        if self.only_paths:
            return any(path.endswith(suffix) for suffix in self.only_paths)
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.hint,
        )


def first_positional(call: ast.Call) -> Optional[ast.expr]:
    """The first positional argument of a call, ``None`` when starred/empty."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Starred):
        return None
    return arg


def is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def parameters_of(node: FunctionNode) -> Sequence[ast.arg]:
    args = node.args
    params: list[ast.arg] = []
    params.extend(args.posonlyargs)
    params.extend(args.args)
    params.extend(args.kwonlyargs)
    return params
