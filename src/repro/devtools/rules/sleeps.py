"""REP007 — no bare blocking sleeps.

Every deliberate delay in the library routes through
:func:`repro.utils.timing.backoff_sleep` (the supervisor's retry backoff)
so blocking waits are greppable and tested in one place; a bare
``time.sleep`` is either an unsanctioned delay or a latency bug waiting
for a profiler.  Async code — the service layer — must never block its
event loop at all: there the fix is ``await asyncio.sleep``, and even
``backoff_sleep`` is flagged because a sanctioned *blocking* sleep is
still a blocked event loop.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.rules.base import Finding, Module, Rule

_ScopeKind = tuple[bool, ...]  # innermost-last: is each function scope async?


class BlockingSleepRule(Rule):
    """REP007 — ``time.sleep`` only via the sanctioned backoff helper.

    Flags every call that resolves to ``time.sleep`` (through ``import
    time``, an alias, or ``from time import sleep [as ...]``); inside an
    ``async def`` it additionally flags :func:`backoff_sleep`, since any
    blocking sleep on the event loop stalls every in-flight request.
    The helper's home module is exempt — it hosts the one sanctioned
    call.
    """

    code = "REP007"
    name = "no-bare-sleep"
    hint = (
        "route deliberate delays through repro.utils.timing.backoff_sleep; "
        "in async code use 'await asyncio.sleep(...)' instead"
    )
    exempt_paths = ("repro/utils/timing.py",)

    def check(self, module: Module) -> Iterator[Finding]:
        sleep_names, time_aliases = _time_sleep_bindings(module)
        yield from self._walk(
            module, module.tree, in_async=False,
            sleep_names=sleep_names, time_aliases=time_aliases,
        )

    def _walk(
        self,
        module: Module,
        node: ast.AST,
        in_async: bool,
        sleep_names: set[str],
        time_aliases: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(
                module, node, in_async, sleep_names, time_aliases
            )
        child_async = in_async
        if isinstance(node, ast.AsyncFunctionDef):
            child_async = True
        elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
            # A sync def nested inside an async def runs off the loop
            # (executors) — judge it as sync code.
            child_async = False
        for child in ast.iter_child_nodes(node):
            yield from self._walk(
                module, child, child_async, sleep_names, time_aliases
            )

    def _check_call(
        self,
        module: Module,
        call: ast.Call,
        in_async: bool,
        sleep_names: set[str],
        time_aliases: set[str],
    ) -> Iterator[Finding]:
        func = call.func
        is_time_sleep = (
            isinstance(func, ast.Name) and func.id in sleep_names
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in time_aliases
        )
        if is_time_sleep:
            where = "async code (this blocks the event loop)" if in_async \
                else "library code"
            yield self.finding(
                module,
                call,
                f"bare time.sleep() in {where} — deliberate delays route "
                "through the sanctioned backoff helper",
            )
            return
        if in_async and (
            (isinstance(func, ast.Name) and func.id == "backoff_sleep")
            or (isinstance(func, ast.Attribute) and func.attr == "backoff_sleep")
        ):
            yield self.finding(
                module,
                call,
                "backoff_sleep() inside an async function blocks the event "
                "loop — await asyncio.sleep(...) instead",
            )


def _time_sleep_bindings(module: Module) -> tuple[set[str], set[str]]:
    """Local names for ``time.sleep`` itself and for the ``time`` module."""
    sleep_names: set[str] = set()
    time_aliases: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    sleep_names.add(alias.asname or "sleep")
    return sleep_names, time_aliases
