"""Project-specific developer tooling.

The engine's correctness rests on invariants no general-purpose tool
checks: bit-identical outputs for any worker count hinge on chunk-indexed
``SeedSequence`` seeding and caller-drawn RNG, fault recovery hinges on
worker payloads being module-level picklables, and the kernel registry
hinges on ``kernels/reference.py`` staying inside the njit-compilable
subset.  :mod:`repro.devtools.lint` is the AST-based static-analysis pass
that turns each of those invariants into a lint rule (``REP001`` ...)
caught seconds into CI instead of minutes into the equivalence suites.

Run it as ``python -m repro.devtools.lint src benchmarks examples``.

(Deliberately import-free so ``python -m repro.devtools.lint`` does not
pre-import the submodule it is about to execute as ``__main__``.)
"""
