"""The project linter: determinism & concurrency invariants as lint rules.

Usage::

    python -m repro.devtools.lint src benchmarks examples
    python -m repro.devtools.lint --format json src
    python -m repro.devtools.lint --list-rules

Paths may be files or directories (directories are walked for ``*.py``).
Exit status: ``0`` clean, ``1`` findings (or unparsable files), ``2``
usage errors.  See :mod:`repro.devtools.rules` for the rule catalog.

Suppression: append ``# repro-lint: disable=REP003`` to the flagged line
(or put it in a comment on the line directly above); several codes may be
comma-separated, and a reason can follow after ``--``::

    runtime.map_ordered(job, payloads)  # repro-lint: disable=REP003 -- probe
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.devtools.rules import ALL_RULES, Finding, Module, Rule

#: Stable schema version of the ``--format json`` payload.
JSON_SCHEMA_VERSION = 1

#: Pseudo-code attached to files the linter cannot parse.
PARSE_ERROR_CODE = "REP000"

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+?))?\s*(?:--.*)?$"
)

_SKIP_DIR_NAMES = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


def collect_files(paths: Sequence[str]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    out.add(candidate)
        elif path.is_file():
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(out)


def suppressed_lines(source: str) -> dict[int, Optional[frozenset[str]]]:
    """Map line numbers to suppressed rule codes.

    A value of ``None`` means every code is suppressed on that line (bare
    ``disable``).  A pragma on a comment-only line also covers the next
    line, so long statements can carry the pragma above themselves.
    """
    out: dict[int, Optional[frozenset[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string, token.line)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - ast will report it
        return out
    for line_number, comment, physical_line in comments:
        match = _PRAGMA.search(comment)
        if match is None:
            continue
        raw_codes = match.group("codes")
        codes: Optional[frozenset[str]]
        if raw_codes is None:
            codes = None
        else:
            codes = frozenset(
                code.strip() for code in raw_codes.split(",") if code.strip()
            )
        lines = [line_number]
        if physical_line.lstrip().startswith("#"):
            lines.append(line_number + 1)
        for covered in lines:
            existing = out.get(covered, frozenset())
            if codes is None or existing is None:
                out[covered] = None
            else:
                out[covered] = existing | codes
    return out


class LintRunner:
    """Run a rule set over files, honoring suppression pragmas."""

    def __init__(self, rules: Sequence[Rule] = ALL_RULES) -> None:
        self.rules = tuple(rules)

    def lint_source(self, source: str, path: str) -> list[Finding]:
        """All unsuppressed findings for one in-memory source file."""
        normalized = path.replace("\\", "/")
        try:
            tree = ast.parse(source, filename=normalized)
        except SyntaxError as exc:
            return [
                Finding(
                    path=normalized,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc.msg}",
                    hint="fix the syntax error; the linter needs a full AST",
                )
            ]
        module = Module(path=normalized, tree=tree, source=source)
        suppressed = suppressed_lines(source)
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(normalized):
                continue
            for finding in rule.check(module):
                codes = suppressed.get(finding.line, frozenset())
                if codes is None or finding.code in codes:
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.line, f.col, f.code))
        return findings

    def lint_file(self, path: Path) -> list[Finding]:
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Sequence[str]) -> tuple[list[Finding], int]:
        """Lint files/directories; returns ``(findings, files_checked)``."""
        files = collect_files(paths)
        findings: list[Finding] = []
        for file_path in files:
            findings.extend(self.lint_file(file_path))
        return findings, len(files)


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message} [hint: {f.hint}]"
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"repro-lint: {len(findings)} {noun} in {files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "hint": f.hint,
            }
            for f in findings
        ],
        "counts_by_code": dict(sorted(counts.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules(rules: Iterable[Rule]) -> str:
    lines = []
    for rule in rules:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"        hint: {rule.hint}")
        if rule.only_paths:
            lines.append(f"        only: {', '.join(rule.only_paths)}")
        if rule.exempt_paths:
            lines.append(f"        exempt: {', '.join(rule.exempt_paths)}")
    return "\n".join(lines)


def _selected_rules(select: Optional[str]) -> list[Rule]:
    if select is None:
        return list(ALL_RULES)
    wanted = {code.strip() for code in select.split(",") if code.strip()}
    known = {rule.code for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in ALL_RULES if rule.code in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Project-specific static analysis: determinism, picklability, "
            "njit-safety, and ExecutionContext policy rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules(ALL_RULES))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not set)", file=sys.stderr)
        return 2
    try:
        runner = LintRunner(_selected_rules(args.select))
        findings, files_checked = runner.lint_paths(args.paths)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
