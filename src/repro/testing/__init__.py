"""Test-support subsystems shipped with the library.

Currently one member: :mod:`repro.testing.faults`, the deterministic
fault-injection harness that the fault-tolerance tests and the
``bench_fault_recovery.py`` chaos gate use to prove the parallel runtime's
recovery paths reproduce the clean ``jobs=1`` bytes.
"""

from repro.testing.faults import FaultInjection

__all__ = ["FaultInjection"]
