"""Deterministic fault injection for the parallel runtime.

The supervisor in :meth:`repro.parallel.runtime.ParallelRuntime.map_ordered`
recovers from worker deaths, hangs, and transient chunk failures.  Proving
that the recovered output is **bit-identical** to a clean run needs faults
that are reproducible on demand: this module provides a picklable
:class:`FaultInjection` spec that fires on an exact ``(chunk, attempt)``
coordinate, so a test can say "kill the worker running the third chunk,
first attempt" and get exactly that, every time.

Chunks are numbered by the runtime's lifetime dispatch counter (chunk ``k``
is the ``k``-th chunk the runtime ever submitted to workers, counting from
0 — the same global index that fixes the chunk's seed sequence), and
``attempt`` counts the supervisor's retries of that chunk, starting at 0.
An injection enabled on an :class:`~repro.runtime.context.ExecutionContext`
(``context.fault_injection``) travels into the context's runtime and wraps
every *worker-pool* submission in :func:`run_with_injection`; the in-process
``jobs=1`` route and the supervisor's degraded re-runs are never injected —
they are the reference the recovery is measured against.

Kinds:

``"crash"``
    ``os._exit`` in the worker — hard death without cleanup, the pool
    surfaces ``BrokenProcessPool`` (exercises the rebuild path).
``"kill"``
    ``SIGKILL`` to the worker's own pid — indistinguishable from the OOM
    killer (also the rebuild path, but through signal delivery).
``"hang"``
    sleep for ``hang_seconds`` before doing the work — with a policy
    ``chunk_timeout`` below it, exercises the timeout + rebuild path.
``"raise"``
    raise :class:`~repro.errors.TransientWorkerError` — exercises the
    in-place retry/backoff path without touching the pool.
``"corrupt"``
    run the chunk, then perturb the first element of its first non-empty
    array — the **negative control**: silent corruption is invisible to
    the supervisor by design, so the bit-identity equivalence checks in
    the tests and the chaos gate must catch it downstream.  A gate that
    stays green under this injector is measuring nothing.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, TransientWorkerError

if TYPE_CHECKING:
    from repro.parallel.runtime import ParallelRuntime
    from repro.sampling.mrr import CarriedMRRPool

#: The injector kinds understood by :func:`run_with_injection`.
FAULT_KINDS = ("crash", "kill", "hang", "raise", "corrupt")

#: The service-level injector kinds understood by the seed-selection
#: server (:mod:`repro.service.server`): ``slow_handler`` stalls a
#: request's compute phase (exercises deadlines and backpressure),
#: ``pool_kill`` SIGKILLs one live worker of the shared runtime
#: mid-request (exercises the rebuild/recovery path under load), and
#: ``cache_corrupt`` tampers with the warm-pool carry offered to a
#: request (exercises revalidation-as-safe-invalidation plus the circuit
#: breaker — the response must stay bit-identical anyway).
SERVICE_FAULT_KINDS = ("slow_handler", "pool_kill", "cache_corrupt")


@dataclass(frozen=True)
class FaultInjection:
    """A deterministic fault at one ``(chunk, attempt)`` coordinate.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    nth:
        The lifetime chunk index (0-based, across all of the runtime's
        dispatches) on which to fire.
    attempts:
        The supervisor attempts on which to fire; the default ``(0,)``
        faults the first execution only, so one retry recovers.  A spec
        listing every attempt defeats retry and forces the policy's
        end-state (degrade or raise).
    hang_seconds:
        Sleep length for ``kind="hang"``.
    """

    kind: str
    nth: int = 0
    attempts: tuple[int, ...] = (0,)
    hang_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.nth < 0:
            raise ConfigurationError(
                f"fault chunk index must be >= 0, got {self.nth}"
            )

    def fires(self, index: int, attempt: int) -> bool:
        """Whether the fault triggers for this ``(chunk, attempt)``."""
        return index == self.nth and attempt in self.attempts


def _corrupt_result(result):
    """Perturb the first element of the first non-empty array in ``result``.

    Works on the chunk-result shapes the runtime actually ships (an array,
    a tuple/list of arrays, or a list of scalars); anything else is
    returned unchanged.  The perturbation is +1 on a *copy*, so the noise
    is deterministic and the shared segment itself is never written.
    """
    if isinstance(result, np.ndarray):
        if result.size == 0:
            return result
        corrupted = result.copy()
        corrupted.flat[0] += 1
        return corrupted
    if isinstance(result, (tuple, list)):
        items = list(result)
        for position, item in enumerate(items):
            replaced = _corrupt_result(item)
            if replaced is not item:
                items[position] = replaced
                return type(result)(items) if isinstance(result, tuple) else items
        if items and isinstance(items[0], (int, float)):
            items[0] = items[0] + 1
            return type(result)(items) if isinstance(result, tuple) else items
    return result


def run_with_injection(spec: FaultInjection, index: int, attempt: int, fn, payload):
    """Worker-side wrapper: fire ``spec`` if armed, then run the chunk.

    Module-level so it pickles by reference into spawn-context workers;
    the supervisor substitutes it for the raw chunk function whenever the
    runtime carries an injection spec.
    """
    if spec.fires(index, attempt):
        if spec.kind == "crash":  # pragma: no cover - kills the worker
            os._exit(17)
        if spec.kind == "kill":  # pragma: no cover - kills the worker
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "hang":
            # The injected hang *is* the fault under test, not a delay the
            # supervisor should be routing through backoff_sleep.
            time.sleep(spec.hang_seconds)  # repro-lint: disable=REP007 -- injected fault
        elif spec.kind == "raise":
            raise TransientWorkerError(
                f"injected transient failure on chunk {index} attempt {attempt}"
            )
    result = fn(*payload)
    if spec.kind == "corrupt" and spec.fires(index, attempt):
        result = _corrupt_result(result)
    return result


@dataclass(frozen=True)
class ServiceFaultInjection:
    """A deterministic service-level fault at one admitted-request index.

    Parameters
    ----------
    kind:
        One of :data:`SERVICE_FAULT_KINDS`.
    nth:
        The admitted-request index (0-based, counted across the server's
        lifetime; ``health`` requests bypass admission and do not count)
        on which to fire.
    delay_seconds:
        Stall length for ``kind="slow_handler"``.
    """

    kind: str
    nth: int = 0
    delay_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ConfigurationError(
                f"service fault kind must be one of {SERVICE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.nth < 0:
            raise ConfigurationError(
                f"fault request index must be >= 0, got {self.nth}"
            )
        if not self.delay_seconds >= 0.0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def fires(self, index: int) -> bool:
        """Whether the fault triggers for this admitted-request index."""
        return index == self.nth


def service_slow_handler(delay_seconds: float) -> None:
    """Stall a request's compute phase (worker-thread side).

    Lives here rather than in the service so the one deliberate blocking
    sleep in the request path is an *injected fault*, clearly marked as
    such — the service's own async code never blocks (REP007).
    """
    # The stall is the fault under test; an async sleep would not occupy
    # the admission slot the way a genuinely slow handler does.
    time.sleep(delay_seconds)  # repro-lint: disable=REP007 -- injected fault


def kill_one_worker(runtime: ParallelRuntime) -> int:
    """SIGKILL one live worker process of ``runtime``; returns its pid.

    Indistinguishable from the OOM killer taking a worker mid-request.
    Returns 0 when the runtime has no live worker to kill (not parallel,
    pool not started yet, or all workers already dead) — the injection is
    then a no-op and the request proceeds normally.
    """
    executor = runtime._state.get("executor")
    if executor is None:
        return 0
    for process in list((getattr(executor, "_processes", None) or {}).values()):
        if process.is_alive() and process.pid:
            os.kill(process.pid, signal.SIGKILL)
            return int(process.pid)
    return 0


def corrupt_carried_pool(pool: CarriedMRRPool) -> CarriedMRRPool:
    """A tampered copy of a cached pool snapshot (detectably invalid).

    The first set's root count is pushed far outside any
    :class:`~repro.sampling.mrr.RootCountRule` support, so
    :meth:`~repro.sampling.mrr.CarriedMRRPool.revalidate` must reject at
    least that set — the estimate handler then discards the whole carry
    and rebuilds from scratch, keeping the response bit-identical to a
    cold run.  A corruption the revalidation machinery could *not* catch
    (silently perturbing a member to another valid id) is deliberately
    not offered here: cached pools are trusted snapshots guarded by the
    breaker, and the chaos gate's job is to prove the safe-invalidation
    path fires, not to defeat it.
    """
    from repro.sampling.mrr import CarriedMRRPool

    if len(pool) == 0:
        return pool
    root_counts = pool.root_counts.copy()
    root_counts[0] = np.iinfo(np.int64).max // 2
    return CarriedMRRPool(
        members=pool.members,
        indptr=pool.indptr,
        root_counts=root_counts,
    )


def echo_chunk(value):
    """Identity chunk for supervisor unit tests (picklable by reference)."""
    return value


def interrupt_chunk(value):
    """A chunk that raises ``KeyboardInterrupt`` — the user hitting Ctrl-C
    while a worker holds the chunk; dispatch must propagate it unretried."""
    raise KeyboardInterrupt
