"""repro — Adaptive Seed Minimization (SIGMOD 2019) reproduced in Python.

An implementation of Tang et al., *Efficient Approximation Algorithms for
Adaptive Seed Minimization* (SIGMOD 2019), including every substrate the
paper depends on:

* :mod:`repro.graph` — CSR directed probabilistic graphs, generators, IO;
* :mod:`repro.diffusion` — IC and LT models, live-edge realizations;
* :mod:`repro.sampling` — RR sets and the paper's multi-root mRR sets;
* :mod:`repro.core` — the ASTI framework with TRIM and TRIM-B;
* :mod:`repro.baselines` — AdaptIM, ATEUC, heuristics, exact oracles;
* :mod:`repro.experiments` — the harness regenerating every table/figure.

Quickstart::

    from repro import ASTI, IndependentCascade
    from repro.graph import generators, weighting

    graph = weighting.weighted_cascade(
        generators.preferential_attachment(2000, 2, seed=1, directed=False)
    )
    result = ASTI(IndependentCascade(), epsilon=0.5).run(graph, eta=200, seed=7)
    print(result.seed_count, "seeds reached", result.spread, "nodes")
"""

from repro._version import __version__
from repro.core.asti import ASTI, AdaptiveRunResult, run_adaptive_policy
from repro.core.trim import TrimSelector
from repro.core.trim_b import TrimBSelector
from repro.baselines.adaptim import AdaptIM
from repro.baselines.ateuc import ATEUC
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.graph.digraph import DiGraph
from repro.errors import ReproError
from repro.parallel import FaultPolicy, ParallelRuntime
from repro.runtime import ExecutionContext
from repro.store import PoolStore

__all__ = [
    "__version__",
    "ASTI",
    "ExecutionContext",
    "AdaptiveRunResult",
    "run_adaptive_policy",
    "TrimSelector",
    "TrimBSelector",
    "AdaptIM",
    "ATEUC",
    "IndependentCascade",
    "LinearThreshold",
    "DiGraph",
    "ReproError",
    "ParallelRuntime",
    "FaultPolicy",
    "PoolStore",
]
