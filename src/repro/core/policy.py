"""Seed-selection policy abstractions.

The ASTI framework (paper Algorithm 1) is a loop that repeatedly asks a
*selector* for the next seed batch on the current residual graph.  TRIM,
TRIM-B, and the baselines' per-round strategies all implement the same
:class:`SeedSelector` interface, so the adaptive driver in
:mod:`repro.core.asti` is shared across every algorithm in the evaluation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.residual import ResidualGraph
from repro.sampling.mrr import CarriedMRRPool, CarryDiagnostics


@dataclass(frozen=True)
class SelectionDiagnostics:
    """Per-round accounting reported by a selector."""

    samples_generated: int = 0     # (m)RR sets created this round
    iterations: int = 0            # doubling iterations used
    certified_ratio: float = 0.0   # Lambda_l / Lambda_u at the stop, if any
    estimated_gain: float = 0.0    # selector's own estimate of the batch gain
    samples_carried: int = 0       # mRR sets reused from the previous round
    #: Full carry-over accounting (drop reasons, fallback), when the
    #: selector attempted pool reuse this round.
    carry: Optional[CarryDiagnostics] = None


@dataclass(frozen=True)
class Selection:
    """A selector's answer: residual-*local* node ids plus diagnostics."""

    nodes: list[int]
    diagnostics: SelectionDiagnostics = field(default_factory=SelectionDiagnostics)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a selection must contain at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"selection contains duplicate nodes: {self.nodes}")


class SeedSelector(abc.ABC):
    """Strategy choosing the next seed batch on a residual graph."""

    #: Display name used in experiment reports ("TRIM", "TRIM-B(4)", ...).
    name: str = "abstract"

    #: How many seeds the selector commits per round (1 for TRIM).
    batch_size: int = 1

    @abc.abstractmethod
    def select(
        self, residual: ResidualGraph, rng: np.random.Generator
    ) -> Selection:
        """Choose the next batch of seeds.

        Parameters
        ----------
        residual:
            Round-``i`` state: the induced graph on inactive nodes and the
            remaining shortfall ``eta_i``.
        rng:
            The run's random stream (sampling inside the selector must draw
            from it so whole runs are reproducible from one seed).

        Returns
        -------
        Selection
            Residual-local node ids; the driver maps them back to original
            ids and observes their realized influence.
        """

    def select_with_pool(
        self,
        residual: ResidualGraph,
        rng: np.random.Generator,
        carry: Optional[CarriedMRRPool] = None,
    ) -> tuple[Selection, Optional[CarriedMRRPool]]:
        """Choose seeds, optionally reusing the previous round's mRR pool.

        The adaptive engine calls this instead of :meth:`select`, threading
        each session's :class:`~repro.sampling.mrr.CarriedMRRPool` from one
        round to the next.  The returned carry (or ``None``) becomes the
        ``carry`` of the session's next round.

        The default ignores ``carry`` and never exports one, so selectors
        without pool reuse (baselines, test stubs) behave exactly as
        before; TRIM and TRIM-B override it.
        """
        return self.select(residual, rng), None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FirstNodeSelector(SeedSelector):
    """Trivial selector used by tests: always picks local node 0.

    Exists so the adaptive driver can be exercised independently of the
    sampling machinery.
    """

    name = "first-node"

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        return Selection(nodes=[0])


class RandomNodeSelector(SeedSelector):
    """Uniform-random seed per round; the weakest sensible baseline."""

    name = "random"

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        return Selection(nodes=[int(rng.integers(residual.n))])
