"""Core algorithms: the ASTI framework, TRIM, and TRIM-B."""

from repro.core.asti import (
    ASTI,
    AdaptiveRunResult,
    RoundRecord,
    run_adaptive_policy,
    run_adaptive_policy_batch,
)
from repro.core.policy import (
    FirstNodeSelector,
    RandomNodeSelector,
    SeedSelector,
    Selection,
    SelectionDiagnostics,
)
from repro.core.session import AdaptiveSession, AdaptiveSessionBatch, Observation
from repro.core.trim import TrimParameters, TrimSelector
from repro.core.trim_b import TrimBParameters, TrimBSelector, batch_guarantee

__all__ = [
    "ASTI",
    "AdaptiveRunResult",
    "RoundRecord",
    "run_adaptive_policy",
    "run_adaptive_policy_batch",
    "SeedSelector",
    "Selection",
    "SelectionDiagnostics",
    "FirstNodeSelector",
    "RandomNodeSelector",
    "AdaptiveSession",
    "AdaptiveSessionBatch",
    "Observation",
    "TrimSelector",
    "TrimParameters",
    "TrimBSelector",
    "TrimBParameters",
    "batch_guarantee",
]
