"""Core algorithms: the ASTI framework, TRIM, and TRIM-B."""

from repro.core.asti import ASTI, AdaptiveRunResult, RoundRecord, run_adaptive_policy
from repro.core.policy import (
    FirstNodeSelector,
    RandomNodeSelector,
    SeedSelector,
    Selection,
    SelectionDiagnostics,
)
from repro.core.session import AdaptiveSession, Observation
from repro.core.trim import TrimParameters, TrimSelector
from repro.core.trim_b import TrimBParameters, TrimBSelector, batch_guarantee

__all__ = [
    "ASTI",
    "AdaptiveRunResult",
    "RoundRecord",
    "run_adaptive_policy",
    "SeedSelector",
    "Selection",
    "SelectionDiagnostics",
    "FirstNodeSelector",
    "RandomNodeSelector",
    "AdaptiveSession",
    "Observation",
    "TrimSelector",
    "TrimParameters",
    "TrimBSelector",
    "TrimBParameters",
    "batch_guarantee",
]
