"""ASTI: the Adaptive Seed minimization via Truncated Influence framework.

Paper Algorithm 1.  The framework is a thin loop over a
:class:`~repro.core.session.AdaptiveSession`:

    repeat
        select a batch maximizing expected marginal truncated spread
        observe its realized influence, shrink the residual graph
    until at least eta nodes are active

Instantiated with :class:`~repro.core.trim.TrimSelector` it carries the
paper's ``(ln eta + 1)^2 / ((1 - 1/e)(1 - eps))`` expected approximation
guarantee (Theorem 3.7); with :class:`~repro.core.trim_b.TrimBSelector` the
guarantee gains a ``rho_b`` factor (Theorem 4.2).

The generic :func:`run_adaptive_policy` driver is shared with the baseline
selectors so every algorithm in the evaluation is scored by the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional, Union

import numpy as np

from repro.core.policy import SeedSelector
from repro.core.session import AdaptiveSessionBatch, Observation
from repro.core.trim import TrimSelector
from repro.core.trim_b import TrimBSelector
from repro.diffusion.base import DiffusionModel
from repro.diffusion.realization import Realization
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.sampling.mrr import CarriedMRRPool
from repro.utils.rng import RandomSource, as_generator, spawn_generators
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class RoundRecord:
    """One round of the adaptive loop, for reporting."""

    observation: Observation
    samples_generated: int          # fresh (m)RR sets paid for this round
    seconds: float
    samples_carried: int = 0        # sets reused from the previous round


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of a full adaptive run on one ground-truth realization."""

    policy_name: str
    eta: int
    seeds: list[int]                 # original node ids, commitment order
    spread: int                      # realized activation count at the end
    rounds: list[RoundRecord] = field(repr=False, default_factory=list)
    seconds: float = 0.0

    @property
    def seed_count(self) -> int:
        """The paper's primary metric: ``|S(pi, phi)|``."""
        return len(self.seeds)

    @property
    def achieved_target(self) -> bool:
        """Adaptive policies always achieve it; kept for symmetric reports."""
        return self.spread >= self.eta

    @property
    def total_samples(self) -> int:
        """Total fresh (m)RR sets generated (paid for) across rounds."""
        return sum(r.samples_generated for r in self.rounds)

    @property
    def total_samples_carried(self) -> int:
        """Total mRR sets reused from earlier rounds instead of resampled."""
        return sum(r.samples_carried for r in self.rounds)

    @property
    def marginal_spreads(self) -> list[int]:
        """Per-round realized marginal spread (paper Figure 10's series)."""
        return [r.observation.marginal_spread for r in self.rounds]


def run_adaptive_policy(
    graph: DiGraph,
    eta: int,
    model: DiffusionModel,
    selector: SeedSelector,
    realization: Optional[Realization] = None,
    seed: RandomSource = None,
    max_rounds: Optional[int] = None,
    kernel: str = "auto",
) -> AdaptiveRunResult:
    """Run the select-observe loop to completion (Algorithm 1).

    Parameters
    ----------
    graph, eta, model:
        Problem instance.
    selector:
        Per-round strategy (TRIM, TRIM-B, or a baseline selector).
    realization:
        Ground truth world.  ``None`` samples a fresh one from ``model``;
        the experiment harness passes pre-sampled realizations so all
        algorithms face identical worlds.
    seed:
        Random stream for the selector's internal sampling (and for the
        realization, when one must be drawn here).
    max_rounds:
        Safety valve for tests; ``None`` allows up to ``eta`` rounds, which
        is the true worst case (every round activates >= 1 node).
    kernel:
        Per-level BFS backend for the reveal sweeps (see
        :mod:`repro.kernels`); runs are bit-identical across backends.
    """
    check_positive_int(eta, "eta")
    if eta > graph.n:
        raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
    rng = as_generator(seed)
    if realization is None:
        realization = model.sample_realization(graph, rng)
    return run_adaptive_policy_batch(
        graph, eta, model, selector, [realization], seeds=[rng],
        max_rounds=max_rounds, kernel=kernel,
    )[0]


def run_adaptive_policy_batch(
    graph: DiGraph,
    eta: int,
    model: DiffusionModel,
    selector: SeedSelector,
    realizations: Sequence[Realization],
    seeds: Union[RandomSource, Sequence[RandomSource]] = None,
    max_rounds: Optional[int] = None,
    kernel: str = "auto",
) -> list[AdaptiveRunResult]:
    """Run Algorithm 1 on many ground-truth worlds round-synchronously.

    The batched adaptive-session engine: all sessions advance in lockstep
    through an :class:`~repro.core.session.AdaptiveSessionBatch`, so every
    round reveals its cascades in *one* batched reachability sweep, and the
    selector's cross-round mRR pool (TRIM/TRIM-B with ``reuse_pool``) is
    threaded per session via :meth:`SeedSelector.select_with_pool`.

    Parameters mirror :func:`run_adaptive_policy` except:

    realizations:
        The ground-truth worlds, one session each (the harness passes its
        shared per-dataset realizations).
    seeds:
        Either one random source — spawned into per-session streams with
        :func:`~repro.utils.rng.spawn_generators` — or an explicit sequence
        of per-session sources, so callers can reproduce sequential runs
        stream for stream.

    Returns one :class:`AdaptiveRunResult` per realization, in order.
    Selector sampling draws only from the session's own stream, so results
    are bit-identical to running the sessions one at a time.
    """
    check_positive_int(eta, "eta")
    if eta > graph.n:
        raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
    if seeds is None or isinstance(
        seeds, (int, np.integer, np.random.Generator)
    ):
        rngs = spawn_generators(seeds, len(realizations))
    else:
        # Any other value must be the documented per-session sequence
        # (list, tuple, array, ...), one random source per realization.
        sources = list(seeds)
        if len(sources) != len(realizations):
            raise ConfigurationError(
                f"got {len(sources)} random sources for {len(realizations)} "
                f"realizations"
            )
        rngs = [as_generator(s) for s in sources]

    batch = AdaptiveSessionBatch(graph, eta, realizations, kernel=kernel)
    limit = max_rounds if max_rounds is not None else eta
    rounds: list[list[RoundRecord]] = [[] for _ in realizations]
    carries: list[Optional[CarriedMRRPool]] = [None for _ in realizations]
    while not batch.all_finished:
        active = batch.active_indices
        selections = {}
        select_seconds = {}
        for sid in active:
            if len(rounds[sid]) >= limit:
                raise ConfigurationError(
                    f"adaptive run exceeded {limit} rounds; either max_rounds "
                    f"is too small or the selector is not making progress"
                )
            watch = Stopwatch()
            with watch:
                selections[sid], carries[sid] = selector.select_with_pool(
                    batch.sessions[sid].residual, rngs[sid], carries[sid]
                )
            select_seconds[sid] = watch.elapsed
        observe_timer = Stopwatch()
        with observe_timer:
            observations = batch.observe_batch(
                {sid: selection.nodes for sid, selection in selections.items()}
            )
        observe_share = observe_timer.elapsed / len(active)
        for sid in active:
            rounds[sid].append(
                RoundRecord(
                    observation=observations[sid],
                    samples_generated=selections[sid].diagnostics.samples_generated,
                    seconds=select_seconds[sid] + observe_share,
                    samples_carried=selections[sid].diagnostics.samples_carried,
                )
            )
            if batch.sessions[sid].finished:
                # The final round's exported pool has no next round to feed;
                # release the theta-sized snapshot instead of pinning it for
                # the rest of the batch run.
                carries[sid] = None
    return [
        AdaptiveRunResult(
            policy_name=selector.name,
            eta=eta,
            seeds=session.seeds_committed,
            spread=session.activated_count,
            rounds=rounds[sid],
            seconds=sum(record.seconds for record in rounds[sid]),
        )
        for sid, session in enumerate(batch.sessions)
    ]


class ASTI:
    """User-facing facade: ASTI instantiated with TRIM or TRIM-B.

    Examples
    --------
    >>> from repro import ASTI, IndependentCascade
    >>> from repro.graph import generators, weighting
    >>> graph = weighting.weighted_cascade(
    ...     generators.preferential_attachment(300, 3, seed=1, directed=False))
    >>> result = ASTI(IndependentCascade(), epsilon=0.5).run(graph, eta=30, seed=7)
    >>> result.spread >= 30
    True
    """

    def __init__(
        self,
        model: DiffusionModel,
        epsilon: float = 0.5,
        batch_size: int = 1,
        max_samples: Optional[int] = None,
        sample_batch_size=UNSET,
        reuse_pool=UNSET,
        jobs=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_fraction(epsilon, "epsilon")
        check_positive_int(batch_size, "batch_size")
        # One execution context carries every engine knob.  An explicit
        # context= is used as-is (and never closed here — its builder owns
        # it); the legacy sample_batch_size / reuse_pool / jobs kwargs
        # build an equivalent private context through the deprecation
        # shim.  jobs=None keeps the historical single-stream sampling
        # route; any jobs >= 1 switches every round's pool growth to the
        # chunk-seeded parallel scheme, whose output is bit-identical for
        # every worker count (jobs=1 runs the chunks in-process).
        self.context, self._owns_context = resolve_context(
            context,
            type(self).__name__,
            sample_batch_size=sample_batch_size,
            reuse_pool=reuse_pool,
            jobs=jobs,
        )
        if max_samples is None:
            max_samples = self.context.max_samples
        self.model = model
        self.epsilon = epsilon
        self.batch_size = batch_size
        if batch_size == 1:
            self.selector: SeedSelector = TrimSelector(
                model,
                epsilon=epsilon,
                max_samples=max_samples,
                context=self.context,
            )
        else:
            self.selector = TrimBSelector(
                model,
                b=batch_size,
                epsilon=epsilon,
                max_samples=max_samples,
                context=self.context,
            )

    @property
    def sample_batch_size(self) -> int:
        return self.context.sample_batch_size

    @property
    def reuse_pool(self) -> bool:
        return self.context.reuse_pool

    @property
    def jobs(self) -> Optional[int]:
        return self.context.jobs

    def close(self) -> None:
        """Release the private context's runtime (workers + shared memory).

        A no-op without ``jobs`` or when an explicit ``context=`` was
        handed in (its owner closes it); safe to call repeatedly.  The
        runtime also cleans itself up on garbage collection and
        interpreter exit, so calling this is only required when recycling
        many facades in one long-lived process.
        """
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> ASTI:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def name(self) -> str:
        """Report label: ``ASTI`` for b=1, ``ASTI-b`` otherwise."""
        return "ASTI" if self.batch_size == 1 else f"ASTI-{self.batch_size}"

    def run(
        self,
        graph: DiGraph,
        eta: int,
        realization: Optional[Realization] = None,
        seed: RandomSource = None,
        max_rounds: Optional[int] = None,
    ) -> AdaptiveRunResult:
        """Solve one ASM instance; see :func:`run_adaptive_policy`."""
        result = run_adaptive_policy(
            graph, eta, self.model, self.selector, realization, seed,
            max_rounds, kernel=self.context.kernel_backend,
        )
        return self._renamed(result)

    def run_batch(
        self,
        graph: DiGraph,
        eta: int,
        realizations: Sequence[Realization],
        seeds: Union[RandomSource, Sequence[RandomSource]] = None,
        max_rounds: Optional[int] = None,
    ) -> list[AdaptiveRunResult]:
        """Solve one ASM instance on many worlds at once.

        The facade over :func:`run_adaptive_policy_batch`: the harness (and
        any caller with several ground-truth realizations of one graph)
        gets round-synchronous batched observation plus per-session mRR
        pool carry-over in a single call.
        """
        results = run_adaptive_policy_batch(
            graph, eta, self.model, self.selector, realizations, seeds,
            max_rounds, kernel=self.context.kernel_backend,
        )
        return [self._renamed(result) for result in results]

    def _renamed(self, result: AdaptiveRunResult) -> AdaptiveRunResult:
        # Present under the facade's name (selector reports TRIM/TRIM-B).
        return AdaptiveRunResult(
            policy_name=self.name,
            eta=result.eta,
            seeds=result.seeds,
            spread=result.spread,
            rounds=result.rounds,
            seconds=result.seconds,
        )
