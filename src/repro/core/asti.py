"""ASTI: the Adaptive Seed minimization via Truncated Influence framework.

Paper Algorithm 1.  The framework is a thin loop over a
:class:`~repro.core.session.AdaptiveSession`:

    repeat
        select a batch maximizing expected marginal truncated spread
        observe its realized influence, shrink the residual graph
    until at least eta nodes are active

Instantiated with :class:`~repro.core.trim.TrimSelector` it carries the
paper's ``(ln eta + 1)^2 / ((1 - 1/e)(1 - eps))`` expected approximation
guarantee (Theorem 3.7); with :class:`~repro.core.trim_b.TrimBSelector` the
guarantee gains a ``rho_b`` factor (Theorem 4.2).

The generic :func:`run_adaptive_policy` driver is shared with the baseline
selectors so every algorithm in the evaluation is scored by the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.policy import SeedSelector
from repro.core.session import AdaptiveSession, Observation
from repro.core.trim import TrimSelector
from repro.core.trim_b import TrimBSelector
from repro.diffusion.base import DiffusionModel
from repro.diffusion.realization import Realization
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.utils.rng import RandomSource, as_generator
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class RoundRecord:
    """One round of the adaptive loop, for reporting."""

    observation: Observation
    samples_generated: int
    seconds: float


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of a full adaptive run on one ground-truth realization."""

    policy_name: str
    eta: int
    seeds: List[int]                 # original node ids, commitment order
    spread: int                      # realized activation count at the end
    rounds: List[RoundRecord] = field(repr=False, default_factory=list)
    seconds: float = 0.0

    @property
    def seed_count(self) -> int:
        """The paper's primary metric: ``|S(pi, phi)|``."""
        return len(self.seeds)

    @property
    def achieved_target(self) -> bool:
        """Adaptive policies always achieve it; kept for symmetric reports."""
        return self.spread >= self.eta

    @property
    def total_samples(self) -> int:
        """Total (m)RR sets generated across rounds."""
        return sum(r.samples_generated for r in self.rounds)

    @property
    def marginal_spreads(self) -> List[int]:
        """Per-round realized marginal spread (paper Figure 10's series)."""
        return [r.observation.marginal_spread for r in self.rounds]


def run_adaptive_policy(
    graph: DiGraph,
    eta: int,
    model: DiffusionModel,
    selector: SeedSelector,
    realization: Optional[Realization] = None,
    seed: RandomSource = None,
    max_rounds: Optional[int] = None,
) -> AdaptiveRunResult:
    """Run the select-observe loop to completion (Algorithm 1).

    Parameters
    ----------
    graph, eta, model:
        Problem instance.
    selector:
        Per-round strategy (TRIM, TRIM-B, or a baseline selector).
    realization:
        Ground truth world.  ``None`` samples a fresh one from ``model``;
        the experiment harness passes pre-sampled realizations so all
        algorithms face identical worlds.
    seed:
        Random stream for the selector's internal sampling (and for the
        realization, when one must be drawn here).
    max_rounds:
        Safety valve for tests; ``None`` allows up to ``eta`` rounds, which
        is the true worst case (every round activates >= 1 node).
    """
    check_positive_int(eta, "eta")
    if eta > graph.n:
        raise ConfigurationError(f"eta={eta} exceeds node count {graph.n}")
    rng = as_generator(seed)
    if realization is None:
        realization = model.sample_realization(graph, rng)

    session = AdaptiveSession(graph, eta, realization)
    rounds: List[RoundRecord] = []
    limit = max_rounds if max_rounds is not None else eta
    total = Stopwatch()
    with total:
        while not session.finished:
            if len(rounds) >= limit:
                raise ConfigurationError(
                    f"adaptive run exceeded {limit} rounds; either max_rounds "
                    f"is too small or the selector is not making progress"
                )
            round_timer = Stopwatch()
            with round_timer:
                selection = selector.select(session.residual, rng)
                observation = session.observe(selection.nodes)
            rounds.append(
                RoundRecord(
                    observation=observation,
                    samples_generated=selection.diagnostics.samples_generated,
                    seconds=round_timer.elapsed,
                )
            )
    return AdaptiveRunResult(
        policy_name=selector.name,
        eta=eta,
        seeds=session.seeds_committed,
        spread=session.activated_count,
        rounds=rounds,
        seconds=total.elapsed,
    )


class ASTI:
    """User-facing facade: ASTI instantiated with TRIM or TRIM-B.

    Examples
    --------
    >>> from repro import ASTI, IndependentCascade
    >>> from repro.graph import generators, weighting
    >>> graph = weighting.weighted_cascade(
    ...     generators.preferential_attachment(300, 3, seed=1, directed=False))
    >>> result = ASTI(IndependentCascade(), epsilon=0.5).run(graph, eta=30, seed=7)
    >>> result.spread >= 30
    True
    """

    def __init__(
        self,
        model: DiffusionModel,
        epsilon: float = 0.5,
        batch_size: int = 1,
        max_samples: Optional[int] = None,
        sample_batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        check_fraction(epsilon, "epsilon")
        check_positive_int(batch_size, "batch_size")
        check_positive_int(sample_batch_size, "sample_batch_size")
        self.model = model
        self.epsilon = epsilon
        self.batch_size = batch_size
        self.sample_batch_size = sample_batch_size
        if batch_size == 1:
            self.selector: SeedSelector = TrimSelector(
                model,
                epsilon=epsilon,
                max_samples=max_samples,
                sample_batch_size=sample_batch_size,
            )
        else:
            self.selector = TrimBSelector(
                model,
                b=batch_size,
                epsilon=epsilon,
                max_samples=max_samples,
                sample_batch_size=sample_batch_size,
            )

    @property
    def name(self) -> str:
        """Report label: ``ASTI`` for b=1, ``ASTI-b`` otherwise."""
        return "ASTI" if self.batch_size == 1 else f"ASTI-{self.batch_size}"

    def run(
        self,
        graph: DiGraph,
        eta: int,
        realization: Optional[Realization] = None,
        seed: RandomSource = None,
        max_rounds: Optional[int] = None,
    ) -> AdaptiveRunResult:
        """Solve one ASM instance; see :func:`run_adaptive_policy`."""
        result = run_adaptive_policy(
            graph, eta, self.model, self.selector, realization, seed, max_rounds
        )
        # Present under the facade's name (selector reports TRIM/TRIM-B).
        return AdaptiveRunResult(
            policy_name=self.name,
            eta=result.eta,
            seeds=result.seeds,
            spread=result.spread,
            rounds=result.rounds,
            seconds=result.seconds,
        )
