"""TRIM-B: the batched generalization of TRIM (paper Algorithm 3).

Selecting one node per round makes ASTI slow when ``eta`` is large: many
rounds, each paying its own sampling bill.  TRIM-B amortizes by committing
``b`` seeds per round, chosen by greedy maximum coverage over the mRR pool,
at the cost of a ``rho_b = 1 - (1 - 1/b)^b`` factor in the per-round
guarantee (and an unquantified adaptivity gap, per the paper's remark in
Section 4.2).  ``b = 1`` recovers TRIM exactly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.policy import SeedSelector, Selection, SelectionDiagnostics
from repro.diffusion.base import DiffusionModel
from repro.errors import BudgetExhaustedError, InfeasibleTargetError
from repro.graph.residual import ResidualGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.sampling.bounds import (
    coverage_lower_bound,
    coverage_upper_bound,
    log_binomial,
)
from repro.sampling.mrr import CarriedMRRPool, build_round_pool
from repro.utils.validation import check_fraction, check_positive_int

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


def batch_guarantee(b: int) -> float:
    """``rho_b = 1 - (1 - 1/b)^b``, the greedy max-coverage factor.

    Decreases from 1 (at ``b = 1``) toward ``1 - 1/e`` as ``b`` grows.
    """
    check_positive_int(b, "b")
    return 1.0 - (1.0 - 1.0 / b) ** b


class TrimBParameters:
    """The derived constants of Algorithm 3, Lines 1-5."""

    # repro-lint: disable=REP006 -- cap arrives resolved from the selector
    def __init__(
        self,
        n: int,
        eta: int,
        epsilon: float,
        b: int,
        max_samples: Optional[int] = None,
    ):
        check_fraction(epsilon, "epsilon")
        check_positive_int(b, "b")
        if not 1 <= eta <= n:
            raise InfeasibleTargetError(eta, n)
        if b > n:
            raise InfeasibleTargetError(eta, n)
        self.n = n
        self.eta = eta
        self.epsilon = epsilon
        self.b = b
        self.rho_b = batch_guarantee(b)

        # Line 1 (identical to TRIM).
        self.delta = epsilon / (100.0 * _ONE_MINUS_INV_E * (1.0 - epsilon) * eta)
        self.eps_hat = 99.0 * epsilon / (100.0 - epsilon)

        # Line 2: worst case now union-bounds over all C(n, b) batches.
        log_inv_delta = math.log(6.0 / self.delta)
        log_choose = log_binomial(n, b)
        root_sum = math.sqrt(log_inv_delta) + math.sqrt(
            (log_choose + log_inv_delta) / self.rho_b
        )
        self.theta_max = 2.0 * n * root_sum * root_sum / (b * self.eps_hat ** 2)
        if max_samples is not None:
            self.theta_max = min(self.theta_max, float(max_samples))

        # Lines 3-4.
        self.theta_0 = max(
            1, int(math.ceil(self.theta_max * b * self.eps_hat ** 2 / n))
        )
        self.iterations = max(
            1, int(math.ceil(math.log2(self.theta_max / self.theta_0))) + 1
        )

        # Line 5.
        log_3t_delta = math.log(3.0 * self.iterations / self.delta)
        self.a1 = log_3t_delta + log_choose
        self.a2 = log_3t_delta

    def pool_size_at(self, iteration: int) -> int:
        size = self.theta_0 * (2 ** iteration)
        return int(min(size, math.ceil(self.theta_max)))


class TrimBSelector(SeedSelector):
    """Algorithm 3 as an ASTI-compatible selector.

    Parameters match :class:`~repro.core.trim.TrimSelector` plus the batch
    size ``b``.  When fewer than ``b`` inactive nodes remain, the round
    shrinks its batch to what is available (and the guarantee parameters
    are recomputed for the effective batch).
    """

    def __init__(
        self,
        model: DiffusionModel,
        b: int,
        epsilon: float = 0.5,
        max_samples: Optional[int] = None,
        strict_budget: bool = False,
        sample_batch_size=UNSET,
        reuse_pool=UNSET,
        runtime=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_fraction(epsilon, "epsilon")
        check_positive_int(b, "b")
        self.context, self._owns_context = resolve_context(
            context,
            "TrimBSelector",
            runtime=runtime,
            sample_batch_size=sample_batch_size,
            reuse_pool=reuse_pool,
        )
        self.model = model
        self.b = b
        self.epsilon = epsilon
        # Context supplies the sampling cap unless given explicitly.
        self.max_samples = (
            max_samples if max_samples is not None else self.context.max_samples
        )
        self.strict_budget = strict_budget
        self.name = f"TRIM-B({b})"
        self.batch_size = b

    @property
    def sample_batch_size(self) -> int:
        return self.context.sample_batch_size

    @property
    def reuse_pool(self) -> bool:
        return self.context.reuse_pool

    @property
    def runtime(self):
        return self.context.runtime

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        selection, _ = self.select_with_pool(residual, rng)
        return selection

    def select_with_pool(
        self,
        residual: ResidualGraph,
        rng: np.random.Generator,
        carry: Optional[CarriedMRRPool] = None,
    ) -> tuple[Selection, Optional[CarriedMRRPool]]:
        n = residual.n
        eta = residual.shortfall
        if eta > n:
            raise InfeasibleTargetError(eta, n)
        b = min(self.b, n, eta)
        if n <= b:
            # Seeding everything that's left trivially meets the target.
            selection = Selection(
                nodes=list(range(n)),
                diagnostics=SelectionDiagnostics(estimated_gain=float(eta)),
            )
            return selection, None

        params = TrimBParameters(n, eta, self.epsilon, b, self.max_samples)
        pool, carry_stats = build_round_pool(
            residual,
            self.model,
            rng,
            carry=carry if self.reuse_pool else None,
            context=self.context,
        )
        pool.grow_to(params.theta_0)

        batch = list(range(b))
        certified = 0.0
        iterations_used = params.iterations
        for t in range(params.iterations):
            greedy = pool.index.greedy_max_coverage(b)
            batch = greedy.nodes
            coverage = greedy.covered
            lower = coverage_lower_bound(coverage, params.a1)
            upper = coverage_upper_bound(coverage / params.rho_b, params.a2)
            certified = lower / upper if upper > 0 else 0.0
            if certified >= params.rho_b * (1.0 - params.eps_hat) or t == params.iterations - 1:
                iterations_used = t + 1
                break
            pool.grow_to(params.pool_size_at(t + 1))

        if (
            self.strict_budget
            and certified < params.rho_b * (1.0 - params.eps_hat)
            and self.max_samples is not None
        ):
            raise BudgetExhaustedError(
                f"TRIM-B could not certify a rho_b(1-1/e)(1-eps) batch "
                f"within {len(pool)} mRR sets (cap {self.max_samples})"
            )

        gain = pool.estimated_truncated_spread(batch)
        selection = Selection(
            nodes=[int(v) for v in batch],
            diagnostics=SelectionDiagnostics(
                samples_generated=pool.fresh_count,
                iterations=iterations_used,
                certified_ratio=certified,
                estimated_gain=gain,
                samples_carried=pool.adopted_count,
                carry=carry_stats if carry is not None else None,
            ),
        )
        new_carry = pool.export_carry(residual) if self.reuse_pool else None
        return selection, new_carry

    def __repr__(self) -> str:
        return f"TrimBSelector(b={self.b}, epsilon={self.epsilon})"
