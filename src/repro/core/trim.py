"""TRIM: TRuncated Influence Maximization (paper Algorithm 2).

One round of ASTI must find a node whose expected marginal *truncated*
spread is within ``(1 - 1/e)(1 - epsilon)`` of the best possible.  TRIM does
so OPIM-C-style: start with a small pool of mRR sets, take the
coverage-maximizing node ``v*``, certify its quality with the concentration
bounds of Lemma A.2, and double the pool until the certificate
``Lambda_l(v*) / Lambda_u(v_circ) >= 1 - eps_hat`` holds (or the worst-case
pool size ``theta_max`` is reached, which happens with probability at most
``delta``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.policy import SeedSelector, Selection, SelectionDiagnostics
from repro.diffusion.base import DiffusionModel
from repro.errors import BudgetExhaustedError, InfeasibleTargetError
from repro.graph.residual import ResidualGraph
from repro.runtime.context import UNSET, ExecutionContext, resolve_context
from repro.sampling.bounds import coverage_lower_bound, coverage_upper_bound
from repro.sampling.mrr import CarriedMRRPool, build_round_pool
from repro.utils.validation import check_fraction

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


class TrimParameters:
    """The derived constants of Algorithm 2, Lines 1-5.

    Computed once per round from ``(n_i, eta_i, epsilon)``; isolated in a
    class so the tests can pin each formula independently.
    """

    # repro-lint: disable=REP006 -- cap arrives resolved from the selector
    def __init__(self, n: int, eta: int, epsilon: float, max_samples: Optional[int] = None):
        check_fraction(epsilon, "epsilon")
        if not 1 <= eta <= n:
            raise InfeasibleTargetError(eta, n)
        self.n = n
        self.eta = eta
        self.epsilon = epsilon

        # Line 1: failure budget and corrected accuracy target.
        self.delta = epsilon / (100.0 * _ONE_MINUS_INV_E * (1.0 - epsilon) * eta)
        self.eps_hat = 99.0 * epsilon / (100.0 - epsilon)

        # Line 2: worst-case pool size.
        log_inv_delta = math.log(6.0 / self.delta)
        root_sum = math.sqrt(log_inv_delta) + math.sqrt(math.log(n) + log_inv_delta)
        self.theta_max = 2.0 * n * root_sum * root_sum / (self.eps_hat ** 2)
        if max_samples is not None:
            self.theta_max = min(self.theta_max, float(max_samples))

        # Line 3: initial pool size; Line 4: number of doubling iterations.
        self.theta_0 = max(1, int(math.ceil(self.theta_max * self.eps_hat ** 2 / n)))
        self.iterations = max(1, int(math.ceil(math.log2(self.theta_max / self.theta_0))) + 1)

        # Line 5: union-bounded confidence parameters.
        log_3t_delta = math.log(3.0 * self.iterations / self.delta)
        self.a1 = log_3t_delta + math.log(n)
        self.a2 = log_3t_delta

    def pool_size_at(self, iteration: int) -> int:
        """Pool size after ``iteration`` doublings (0-based), capped."""
        size = self.theta_0 * (2 ** iteration)
        return int(min(size, math.ceil(self.theta_max)))


class TrimSelector(SeedSelector):
    """Algorithm 2 as an ASTI-compatible selector.

    Parameters
    ----------
    model:
        Diffusion model (IC or LT).
    epsilon:
        Accuracy parameter in ``(0, 1)``; the paper's experiments use 0.5.
    max_samples:
        Optional hard cap on the mRR pool per round.  The theory never needs
        it — ``theta_max`` is the provable worst case — but pure-Python runs
        may want a smaller envelope.  With ``strict_budget=True`` exceeding
        the cap without certification raises
        :class:`~repro.errors.BudgetExhaustedError` instead of returning the
        best-effort node.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` carrying the
        engine policy this selector consumes: ``sample_batch_size`` (mRR
        sets per vectorized engine call — purely a throughput knob,
        distinct from TRIM-B's seed batch ``b``), ``reuse_pool`` (carry
        the mRR pool across rounds when driven through
        :meth:`select_with_pool`; sets whose members are all still
        inactive and whose root count matches the new round's rule are
        re-validated instead of resampled — see
        :class:`~repro.sampling.mrr.CarriedMRRPool`; ``False`` restores
        the paper-exact fresh pool every round), and the parallel
        ``runtime`` (each round's pool growth fans its sample chunks out
        across the workers over the shared-memory residual graph, seeded
        by global chunk index so the pool is bit-identical for any worker
        count).  The legacy ``sample_batch_size`` / ``reuse_pool`` /
        ``runtime`` keyword arguments still work (a deprecation shim
        builds an equivalent private context; outputs are bit-identical).
    """

    def __init__(
        self,
        model: DiffusionModel,
        epsilon: float = 0.5,
        max_samples: Optional[int] = None,
        strict_budget: bool = False,
        sample_batch_size=UNSET,
        reuse_pool=UNSET,
        runtime=UNSET,
        context: Optional[ExecutionContext] = None,
    ):
        check_fraction(epsilon, "epsilon")
        self.context, self._owns_context = resolve_context(
            context,
            "TrimSelector",
            runtime=runtime,
            sample_batch_size=sample_batch_size,
            reuse_pool=reuse_pool,
        )
        self.model = model
        self.epsilon = epsilon
        # Context supplies the sampling cap unless given explicitly.
        self.max_samples = (
            max_samples if max_samples is not None else self.context.max_samples
        )
        self.strict_budget = strict_budget
        self.name = "TRIM"
        self.batch_size = 1

    @property
    def sample_batch_size(self) -> int:
        return self.context.sample_batch_size

    @property
    def reuse_pool(self) -> bool:
        return self.context.reuse_pool

    @property
    def runtime(self):
        return self.context.runtime

    def select(self, residual: ResidualGraph, rng: np.random.Generator) -> Selection:
        selection, _ = self.select_with_pool(residual, rng)
        return selection

    def select_with_pool(
        self,
        residual: ResidualGraph,
        rng: np.random.Generator,
        carry: Optional[CarriedMRRPool] = None,
    ) -> tuple[Selection, Optional[CarriedMRRPool]]:
        n = residual.n
        eta = residual.shortfall
        if eta > n:
            raise InfeasibleTargetError(eta, n)
        if n == 1:
            # Only one inactive node left: no sampling needed.
            selection = Selection(
                nodes=[0], diagnostics=SelectionDiagnostics(estimated_gain=1.0)
            )
            return selection, None

        params = TrimParameters(n, eta, self.epsilon, self.max_samples)
        pool, carry_stats = build_round_pool(
            residual,
            self.model,
            rng,
            carry=carry if self.reuse_pool else None,
            context=self.context,
        )
        pool.grow_to(params.theta_0)

        best_node = 0
        certified = 0.0
        iterations_used = params.iterations
        for t in range(params.iterations):
            best_node, coverage = pool.index.argmax_node()
            lower = coverage_lower_bound(coverage, params.a1)
            upper = coverage_upper_bound(coverage, params.a2)
            certified = lower / upper if upper > 0 else 0.0
            if certified >= 1.0 - params.eps_hat or t == params.iterations - 1:
                iterations_used = t + 1
                break
            pool.grow_to(params.pool_size_at(t + 1))
        else:  # pragma: no cover - loop always breaks on the last iteration
            iterations_used = params.iterations

        if (
            self.strict_budget
            and certified < 1.0 - params.eps_hat
            and self.max_samples is not None
        ):
            raise BudgetExhaustedError(
                f"TRIM could not certify a (1-1/e)(1-eps) node within "
                f"{len(pool)} mRR sets (cap {self.max_samples})"
            )

        gain = pool.estimated_node_truncated_spread(best_node)
        selection = Selection(
            nodes=[int(best_node)],
            diagnostics=SelectionDiagnostics(
                samples_generated=pool.fresh_count,
                iterations=iterations_used,
                certified_ratio=certified,
                estimated_gain=gain,
                samples_carried=pool.adopted_count,
                carry=carry_stats if carry is not None else None,
            ),
        )
        new_carry = pool.export_carry(residual) if self.reuse_pool else None
        return selection, new_carry

    def __repr__(self) -> str:
        return f"TrimSelector(epsilon={self.epsilon})"
