"""The adaptive select-observe loop's state machine.

:class:`AdaptiveSession` owns the ground-truth realization (unknown to the
policy), the set of activated nodes, and the current residual graph.  A
policy interacts with it in two moves, mirroring the paper's Figure 1:

1. read :attr:`AdaptiveSession.residual` (the inactive-node subgraph and the
   shortfall ``eta_i``) and choose seeds on it;
2. call :meth:`AdaptiveSession.observe` with the chosen residual-local node
   ids — the session reveals the realized cascade from those seeds through
   still-inactive nodes, activates them, and shrinks the residual graph.

Keeping observation here (rather than in each algorithm) guarantees every
policy is scored against exactly the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.diffusion.realization import Realization, batch_reachable_from
from repro.errors import ConfigurationError, InfeasibleTargetError
from repro.graph.digraph import DiGraph
from repro.graph.residual import ResidualGraph, initial_residual, shrink_residual


@dataclass(frozen=True)
class Observation:
    """What one round of seeding revealed."""

    round_index: int
    seeds: np.ndarray               # original node ids committed this round
    newly_activated: np.ndarray     # original ids activated (includes seeds)
    total_activated: int            # cumulative activation count after the round
    shortfall_before: int           # eta_i at the start of the round

    @property
    def marginal_spread(self) -> int:
        """``I_phi(S_round | S_previous)``: nodes this round activated."""
        return len(self.newly_activated)


class AdaptiveSession:
    """Ground truth + bookkeeping for one adaptive run."""

    def __init__(self, graph: DiGraph, eta: int, realization: Realization):
        if realization.graph is not graph:
            # Identity (not equality) on purpose: a realization indexes the
            # graph's edge arrays positionally.
            raise ConfigurationError(
                "realization was sampled from a different graph object"
            )
        if not 1 <= eta <= graph.n:
            raise ConfigurationError(
                f"eta must be in [1, n={graph.n}], got {eta}"
            )
        self.graph = graph
        self.eta = int(eta)
        self.realization = realization
        self.active = np.zeros(graph.n, dtype=bool)
        self.residual: ResidualGraph = initial_residual(graph, eta)
        self.history: list[Observation] = []

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def activated_count(self) -> int:
        """Number of active nodes so far (``n - n_i``)."""
        return int(self.active.sum())

    @property
    def finished(self) -> bool:
        """Whether the target ``eta`` has been reached."""
        return self.activated_count >= self.eta

    @property
    def round_index(self) -> int:
        """1-based index of the round about to be played."""
        return self.residual.round_index

    @property
    def seeds_committed(self) -> list[int]:
        """All seeds selected so far, in commitment order (original ids)."""
        committed: list[int] = []
        for obs in self.history:
            committed.extend(int(s) for s in obs.seeds)
        return committed

    # ------------------------------------------------------------------
    # The observe half of select-observe
    # ------------------------------------------------------------------

    def observe(self, local_seed_ids: Sequence[int]) -> Observation:
        """Commit seeds (residual-local ids) and reveal their influence.

        Returns the :class:`Observation`; afterwards :attr:`residual`
        reflects round ``i + 1``.
        """
        original_seeds = self._commit_seeds(local_seed_ids)
        newly_mask = self.realization.reachable_from(
            original_seeds, allowed=~self.active
        )
        return self._apply_observation(original_seeds, newly_mask)

    def _commit_seeds(self, local_seed_ids: Sequence[int]) -> np.ndarray:
        """Validate a seed batch and map it to original ids (observe, part 1)."""
        if self.finished:
            raise ConfigurationError("session already reached its target")
        if len(local_seed_ids) == 0:
            raise ConfigurationError("must commit at least one seed")
        return self.residual.to_original(local_seed_ids)

    def _apply_observation(
        self, original_seeds: np.ndarray, newly_mask: np.ndarray
    ) -> Observation:
        """Fold a revealed cascade into the state (observe, part 2).

        Split from :meth:`observe` so :class:`AdaptiveSessionBatch` can
        compute many sessions' cascades in one batched sweep and still apply
        each one through exactly this code path.
        """
        newly = np.flatnonzero(newly_mask)
        self.active |= newly_mask

        shortfall_before = self.residual.shortfall
        newly_local = np.flatnonzero(newly_mask[self.residual.original_ids])
        self.residual = shrink_residual(self.residual, newly_local)

        observation = Observation(
            round_index=len(self.history) + 1,
            seeds=original_seeds,
            newly_activated=newly,
            total_activated=self.activated_count,
            shortfall_before=shortfall_before,
        )
        self.history.append(observation)

        if not self.finished and self.residual.shortfall > self.residual.n:
            # Cannot happen while shortfall accounting is consistent, but a
            # corrupted realization (or eta > n slipping through) must fail
            # loudly rather than loop forever.
            raise InfeasibleTargetError(self.residual.shortfall, self.residual.n)
        return observation


class AdaptiveSessionBatch:
    """Many adaptive sessions on one graph, advanced round-synchronously.

    The experiment harness scores every policy on a fixed set of sampled
    ground-truth worlds (the paper uses 20 per dataset).  Running those
    sessions in lockstep lets the engine reveal all of a round's cascades
    with *one* batched reachability sweep
    (:func:`~repro.diffusion.realization.batch_reachable_from`) instead of
    one Python-level BFS per realization; everything else — activation
    bookkeeping, residual shrinking, history — goes through the exact same
    :class:`AdaptiveSession` code, so a batch run is bit-identical to the
    equivalent sequential runs.

    Sessions finish at different times: :meth:`observe_batch` takes a
    mapping from *unfinished* session indices to their seed batches and
    skips the rest.
    """

    def __init__(
        self,
        graph: DiGraph,
        eta: int,
        realizations: Sequence[Realization],
        kernel: str = "auto",
    ):
        if len(realizations) == 0:
            raise ConfigurationError("need at least one realization")
        self.graph = graph
        self.eta = int(eta)
        # Per-level backend for the batched reveal sweeps (repro.kernels);
        # replay is deterministic, so observations are backend-invariant.
        self.kernel = kernel
        self.sessions = [
            AdaptiveSession(graph, eta, phi) for phi in realizations
        ]

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def active_indices(self) -> list[int]:
        """Indices of sessions that have not reached their target yet."""
        return [i for i, s in enumerate(self.sessions) if not s.finished]

    @property
    def all_finished(self) -> bool:
        return all(s.finished for s in self.sessions)

    def observe_batch(
        self, selections: dict[int, Sequence[int]]
    ) -> dict[int, Observation]:
        """Commit one round of seeds for several sessions at once.

        ``selections`` maps session indices to residual-local seed ids; a
        finished session must not appear.  All cascades are revealed in one
        batched sweep; returns the per-session :class:`Observation` under
        the same keys.
        """
        if not selections:
            raise ConfigurationError("observe_batch needs at least one selection")
        indices = sorted(selections)
        committed = {
            sid: self.sessions[sid]._commit_seeds(selections[sid])
            for sid in indices
        }
        allowed = np.stack([~self.sessions[sid].active for sid in indices])
        newly = batch_reachable_from(
            [self.sessions[sid].realization for sid in indices],
            [committed[sid] for sid in indices],
            allowed=allowed,
            kernel=self.kernel,
        )
        return {
            sid: self.sessions[sid]._apply_observation(committed[sid], newly[row])
            for row, sid in enumerate(indices)
        }
