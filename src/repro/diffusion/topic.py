"""Topic-aware independent cascade (TIC) — the paper's Section 2 extension.

The paper notes its algorithms "can be easily extended to other propagation
models, such as ... the topic-aware models [4]" (Barbieri et al., *Topic-
Aware Social Influence Propagation Models*, ICDM 2012).  This module
implements that extension: the **topic-aware independent cascade** model,
where

* an item being propagated is a mixture over ``T`` topics,
  ``gamma = (gamma_1 .. gamma_T)`` with ``sum gamma_t = 1``;
* each edge carries a per-topic probability vector ``p_t(u, v)``;
* the effective activation probability of an edge for the item is the
  mixture ``p(u, v) = sum_t gamma_t * p_t(u, v)``.

Because the effective model is again an independent cascade with item-
dependent edge probabilities, the whole ASTI/TRIM stack works unchanged:
:class:`TopicAwareIC` *is a* :class:`~repro.diffusion.ic.IndependentCascade`
over the collapsed probabilities, and :meth:`TopicAwareIC.for_item`
materializes the collapsed graph once per item (cheap: one weighted sum
over the edge arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.diffusion.ic import IndependentCascade
from repro.errors import ConfigurationError, DiffusionError
from repro.graph.digraph import DiGraph

_PROBABILITY_FLOOR = 1e-12


@dataclass(frozen=True)
class TopicMixture:
    """An item's topic distribution ``gamma``."""

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("a topic mixture needs at least one topic")
        total = 0.0
        for w in self.weights:
            if w < 0.0:
                raise ConfigurationError(f"topic weights must be >= 0, got {w}")
            total += w
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"topic weights must sum to 1, got {total:.6f}"
            )

    @classmethod
    def single(cls, topic: int, num_topics: int) -> TopicMixture:
        """A pure item concentrated on one topic."""
        if not 0 <= topic < num_topics:
            raise ConfigurationError(
                f"topic must be in [0, {num_topics}), got {topic}"
            )
        weights = [0.0] * num_topics
        weights[topic] = 1.0
        return cls(tuple(weights))

    @classmethod
    def uniform(cls, num_topics: int) -> TopicMixture:
        """The maximally mixed item."""
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        return cls(tuple(1.0 / num_topics for _ in range(num_topics)))

    @property
    def num_topics(self) -> int:
        return len(self.weights)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=np.float64)


class TopicAwareGraph:
    """A graph whose edges carry per-topic propagation probabilities.

    Parameters
    ----------
    topology:
        A :class:`DiGraph`; its scalar probabilities are ignored.
    topic_probabilities:
        Array of shape ``(m, T)``, row ``e`` holding edge ``e``'s per-topic
        probabilities aligned with ``topology.edge_arrays()`` order.
    """

    def __init__(self, topology: DiGraph, topic_probabilities: np.ndarray):
        topic_probabilities = np.asarray(topic_probabilities, dtype=np.float64)
        if topic_probabilities.ndim != 2:
            raise ConfigurationError("topic_probabilities must be 2-D (m x T)")
        if topic_probabilities.shape[0] != topology.m:
            raise ConfigurationError(
                f"expected {topology.m} rows, got {topic_probabilities.shape[0]}"
            )
        if topic_probabilities.shape[1] < 1:
            raise ConfigurationError("need at least one topic column")
        if np.any(topic_probabilities < 0.0) or np.any(topic_probabilities > 1.0):
            raise ConfigurationError("per-topic probabilities must lie in [0, 1]")
        self.topology = topology
        self.topic_probabilities = topic_probabilities

    @property
    def num_topics(self) -> int:
        return int(self.topic_probabilities.shape[1])

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def m(self) -> int:
        return self.topology.m

    def collapse(self, mixture: TopicMixture) -> DiGraph:
        """The effective IC graph for an item: ``p(e) = sum_t gamma_t p_t(e)``.

        Edges whose mixture probability collapses to 0 are kept with a
        floor probability so the topology (and node count) is preserved;
        they are effectively never live.
        """
        if mixture.num_topics != self.num_topics:
            raise ConfigurationError(
                f"mixture has {mixture.num_topics} topics, graph has {self.num_topics}"
            )
        effective = self.topic_probabilities @ mixture.as_array()
        effective = np.clip(effective, _PROBABILITY_FLOOR, 1.0)
        src, dst, _ = self.topology.edge_arrays()
        return DiGraph.from_arrays(self.n, src, dst, effective)

    @classmethod
    def random(
        cls,
        topology: DiGraph,
        num_topics: int,
        seed=None,
        concentration: float = 1.0,
    ) -> TopicAwareGraph:
        """Sample per-topic probabilities around the scalar weights.

        Each edge's scalar probability ``p(e)`` is redistributed over
        topics with a Dirichlet(``concentration``) tilt, so the *average*
        item behaves like the original graph while pure-topic items see
        very different effective graphs.
        """
        from repro.utils.rng import as_generator

        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        rng = as_generator(seed)
        _, _, scalar = topology.edge_arrays()
        tilts = rng.dirichlet([concentration] * num_topics, size=topology.m)
        per_topic = np.clip(tilts * scalar[:, None] * num_topics, 0.0, 1.0)
        return cls(topology, per_topic)


class TopicAwareIC(IndependentCascade):
    """IC specialized to one item on a topic-aware graph.

    Holds the collapsed effective graph; all :class:`IndependentCascade`
    machinery (forward simulation and the batched ``simulate_batch``
    forward engine, realization sampling, reverse mRR sampling, the
    common-random-numbers evaluator over stacked ``ICRealization`` worlds)
    applies verbatim, which is precisely the paper's point about model
    generality — including the shared seed validation of
    :func:`~repro.diffusion.base.normalize_seeds`.

    Use :meth:`for_item` to build the pair ``(model, effective_graph)``:

    >>> model, graph = TopicAwareIC.for_item(taw_graph, mixture)
    >>> result = ASTI(model).run(graph, eta)                # doctest: +SKIP
    """

    name = "TIC"

    def __init__(self, mixture: TopicMixture):
        self.mixture = mixture

    @classmethod
    def for_item(
        cls, graph: TopicAwareGraph, mixture: TopicMixture
    ) -> tuple["TopicAwareIC", DiGraph]:
        """The model and collapsed graph for one item."""
        return cls(mixture), graph.collapse(mixture)


def effective_probability_bounds(
    graph: TopicAwareGraph, mixtures: Sequence[TopicMixture]
) -> tuple[float, float]:
    """Min/max effective edge probability across a set of items.

    Diagnostic helper for campaign planning: items whose mixtures
    concentrate on low-probability topics produce much harder seed
    minimization instances.
    """
    if not mixtures:
        raise ConfigurationError("need at least one mixture")
    lows, highs = [], []
    for mixture in mixtures:
        effective = graph.topic_probabilities @ mixture.as_array()
        if len(effective) == 0:
            raise DiffusionError("topic-aware graph has no edges")
        lows.append(float(effective.min()))
        highs.append(float(effective.max()))
    return min(lows), max(highs)
