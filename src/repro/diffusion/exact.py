"""Exact expected spreads by exhaustive realization enumeration.

Computing expected spread exactly is #P-hard in general (Chen et al. 2010),
but on the tiny graphs used in tests and in the paper's worked examples we
can enumerate the full realization space:

* IC: ``2^m`` live/blocked patterns, each with probability
  ``prod(p or 1-p)``;
* LT: each node independently keeps one of its in-edges or none, giving
  ``prod_v (indeg(v) + 1)`` worlds.

These functions power the property tests that pin the mRR estimator's bias
bounds (paper Theorem 3.3) against ground truth, and reproduce the paper's
Example 2.3 numerically.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.realization import ICRealization, LTRealization, Realization
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph

_MAX_IC_EDGES = 20
_MAX_LT_WORLDS = 4_000_000


def enumerate_ic_realizations(
    graph: DiGraph,
) -> Iterator[tuple[ICRealization, float]]:
    """Yield every IC realization with its probability.

    Guarded to ``m <= 20`` (about a million worlds); larger graphs should use
    Monte Carlo instead.
    """
    if graph.m > _MAX_IC_EDGES:
        raise ConfigurationError(
            f"exact IC enumeration is limited to {_MAX_IC_EDGES} edges, "
            f"graph has {graph.m}"
        )
    # Upcast once: world probabilities must multiply in float64 regardless
    # of the graph's (possibly compact float32) storage policy.
    _, _, probs = graph.out_csr
    probs = np.asarray(probs, dtype=np.float64)
    for pattern in itertools.product((False, True), repeat=graph.m):
        live = np.asarray(pattern, dtype=bool)
        probability = float(np.prod(np.where(live, probs, 1.0 - probs)))
        if probability > 0.0:
            yield ICRealization(graph, live), probability


def enumerate_lt_realizations(
    graph: DiGraph,
) -> Iterator[tuple[LTRealization, float]]:
    """Yield every LT live-edge world with its probability."""
    indptr, sources, probs = graph.in_csr
    per_node_options = []
    world_count = 1
    for v in range(graph.n):
        start, end = int(indptr[v]), int(indptr[v + 1])
        options: list = []
        none_probability = 1.0
        for pos in range(start, end):
            options.append((int(sources[pos]), float(probs[pos])))
            none_probability -= float(probs[pos])
        if none_probability > 1e-12:
            options.append((-1, none_probability))
        per_node_options.append(options)
        world_count *= len(options)
        if world_count > _MAX_LT_WORLDS:
            raise ConfigurationError(
                f"exact LT enumeration exceeds {_MAX_LT_WORLDS} worlds"
            )
    for combo in itertools.product(*per_node_options):
        chosen = np.fromiter((c[0] for c in combo), dtype=np.int64, count=graph.n)
        probability = float(np.prod([c[1] for c in combo]))
        if probability > 0.0:
            yield LTRealization(graph, chosen), probability


def enumerate_realizations(
    graph: DiGraph, model: DiffusionModel
) -> Iterator[tuple[Realization, float]]:
    """Dispatch enumeration on the model type."""
    if isinstance(model, IndependentCascade):
        return enumerate_ic_realizations(graph)
    if isinstance(model, LinearThreshold):
        return enumerate_lt_realizations(graph)
    raise ConfigurationError(f"cannot enumerate realizations for {model!r}")


def exact_expected_spread(
    graph: DiGraph, model: DiffusionModel, seeds: Sequence[int]
) -> float:
    """``E[I(S)]`` by full enumeration (Equation 1 of the paper)."""
    return sum(
        phi.spread(seeds) * p for phi, p in enumerate_realizations(graph, model)
    )


def exact_expected_truncated_spread(
    graph: DiGraph, model: DiffusionModel, seeds: Sequence[int], eta: int
) -> float:
    """``E[Gamma(S)] = E[min{I(S), eta}]`` by full enumeration."""
    if eta < 1:
        raise ConfigurationError(f"eta must be >= 1, got {eta}")
    return sum(
        phi.truncated_spread(seeds, eta) * p
        for phi, p in enumerate_realizations(graph, model)
    )
