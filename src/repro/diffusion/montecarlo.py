"""Monte-Carlo spread estimation on the batched forward engine.

The classic (pre-RR-set) way of estimating ``E[I(S)]`` and the truncated
``E[Gamma(S)]``: average over independent forward simulations.  Unbiased and
dead simple — the test suite uses it as ground truth to validate the
sampling-based estimators, and the oracle-greedy and CELF baselines use it
on graphs too big for exact enumeration.

Two execution strategies share this module:

* **fresh-noise estimation** (:func:`estimate_spread`,
  :func:`estimate_truncated_spread`,
  :func:`estimate_activation_probabilities`) — cascades are generated in
  chunks of ``mc_batch_size`` through
  :meth:`~repro.diffusion.base.DiffusionModel.simulate_batch`, one labeled
  forward BFS per chunk instead of one Python-level BFS per cascade, with
  an optional early stop once the normal-approximation CI half-width falls
  below a tolerance;
* **common-random-numbers evaluation** (:class:`CRNSpreadEvaluator`,
  :func:`estimate_spreads_many`) — one shared batch of live-edge
  realizations is sampled up front and arbitrarily many candidate seed sets
  are scored against the *same* realizations, so comparisons between
  candidates (greedy argmax, CELF's lazy queue) see identical noise and
  differences reflect the candidates, not the sampling.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.diffusion.base import (
    DiffusionModel,
    expand_labeled_frontier,
    normalize_seeds,
    run_labeled_bfs,
)
from repro.diffusion.realization import ICRealization, LTRealization
from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator
from repro.utils.validation import check_positive_int

#: Default number of cascades generated per labeled forward BFS.  Mirrors
#: the reverse engine's ``DEFAULT_BATCH_SIZE``: large enough to amortize
#: NumPy dispatch over the chunk, while the chunk's ``mc_batch_size * n``
#: visitation bitset (plus, under LT, two float arrays of the same shape)
#: stays cache- and memory-friendly.  Memory-constrained callers on very
#: large graphs should dial this down via the ``mc_batch_size`` knobs.
DEFAULT_MC_BATCH_SIZE = 256

#: Visitation-bitset budget (elements) of the CRN evaluator: candidate
#: chunks are sized so ``chunk * n_sims * n`` stays below this (~32 MB of
#: booleans), bounding the working set of one labeled forward pass.
_CRN_BITSET_BUDGET = 32_000_000

#: Active-node work budget per estimator chunk.  Batching pays off when
#: cascades are small (dispatch-dominated); when they are large, a big
#: chunk's scattered ``chunk * n`` accumulator writes fall out of cache and
#: can lose to the already frontier-vectorized scalar loop.  After the
#: first chunk the estimators therefore shrink the chunk so that
#: ``chunk * mean_cascade_size`` stays near this budget.
_CHUNK_WORK_BUDGET = 16_384


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimate with its sampling error."""

    mean: float
    std_error: float
    samples: int

    def confidence_interval(self, z: float = 1.96):
        """Normal-approximation CI half-width scaled by ``z``."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


def _estimate_from_sizes(sizes: np.ndarray) -> MonteCarloEstimate:
    samples = len(sizes)
    std_error = (
        float(sizes.std(ddof=1) / np.sqrt(samples)) if samples > 1 else 0.0
    )
    return MonteCarloEstimate(float(sizes.mean()), std_error, samples)


# repro-lint: disable=REP006 -- receives the resolved batch size
def _chunked_spread_sizes(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    samples: int,
    rng: np.random.Generator,
    mc_batch_size: int,
    ci_halfwidth: Optional[float],
    eta: Optional[int] = None,
    z: float = 1.96,
    kernel: str = "auto",
) -> np.ndarray:
    """Cascade sizes in chunks of ``mc_batch_size`` with optional early stop.

    Always generates at least one full chunk (``min(samples,
    mc_batch_size)`` cascades); after each chunk, if ``ci_halfwidth`` is
    set and the running normal-approximation half-width ``z * stderr`` has
    fallen below it, stops before reaching ``samples``.

    ``mc_batch_size`` is an upper bound: once the first chunk reveals the
    mean cascade size, subsequent chunks shrink toward
    ``_CHUNK_WORK_BUDGET / mean`` so the per-chunk working set stays
    cache-resident on large-cascade seed sets (see the budget's note).
    """
    pieces: list[np.ndarray] = []
    generated = 0
    running_sum = 0.0
    running_sumsq = 0.0
    chunk_cap = mc_batch_size
    # One pooled visitation bitset reused across chunks (the first chunk is
    # the largest); the BFS driver restores it to all-False after each call.
    scratch = np.zeros(min(samples, mc_batch_size) * graph.n, dtype=bool)
    while generated < samples:
        step = min(samples - generated, chunk_cap)
        _, indptr = model.simulate_batch(
            graph, seeds, step, rng, scratch, kernel=kernel
        )
        raw_sizes = np.diff(indptr).astype(np.float64)
        sizes = (
            np.minimum(raw_sizes, float(eta)) if eta is not None else raw_sizes
        )
        pieces.append(sizes)
        generated += step
        if ci_halfwidth is not None and generated < samples:
            # O(chunk) running moments, not a re-reduction of everything
            # generated so far; cancellation can only push the variance a
            # hair negative, hence the clamp.
            running_sum += float(sizes.sum())
            running_sumsq += float(sizes @ sizes)
            if generated > 1:
                variance = max(
                    0.0,
                    (running_sumsq - running_sum**2 / generated)
                    / (generated - 1),
                )
                if z * np.sqrt(variance / generated) <= ci_halfwidth:
                    break
        if chunk_cap == mc_batch_size:  # adapt once, off the first chunk
            # The cache guard must see the *untruncated* cascade sizes: an
            # eta-clipped mean would hide exactly the large cascades whose
            # scattered writes it exists to bound.
            mean_size = max(1.0, float(raw_sizes.mean()))
            chunk_cap = min(
                mc_batch_size, max(8, int(_CHUNK_WORK_BUDGET / mean_size))
            )
    return np.concatenate(pieces)


def _resolve_estimator_policy(
    mc_batch_size: Optional[int],
    ci_halfwidth: Optional[float],
    context,
) -> tuple[int, Optional[float], str]:
    """Effective ``(mc_batch_size, ci_halfwidth, kernel)`` for one call.

    Explicit arguments win; otherwise the context's ``mc_batch_size`` /
    ``mc_tolerance`` / ``kernel_backend`` apply; otherwise the engine
    defaults.
    """
    if mc_batch_size is None:
        mc_batch_size = (
            context.mc_batch_size if context is not None else None
        ) or DEFAULT_MC_BATCH_SIZE
    if ci_halfwidth is None and context is not None:
        ci_halfwidth = context.mc_tolerance
    kernel = context.kernel_backend if context is not None else "auto"
    return mc_batch_size, ci_halfwidth, kernel


def estimate_spread(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    samples: int = 1000,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    ci_halfwidth: Optional[float] = None,
    context=None,
) -> MonteCarloEstimate:
    """Estimate ``E[I(S)]`` by averaging up to ``samples`` forward cascades.

    Cascades are generated ``mc_batch_size`` at a time through the batched
    forward engine (``None`` defers to ``context.mc_batch_size``, then the
    engine default).  When ``ci_halfwidth`` (or ``context.mc_tolerance``)
    is given, estimation stops early — but never before the first chunk —
    once the 95% CI half-width (``1.96 * stderr``) drops to the tolerance;
    the returned estimate's ``samples`` field reports how many cascades
    were actually used.
    """
    check_positive_int(samples, "samples")
    mc_batch_size, ci_halfwidth, kernel = _resolve_estimator_policy(
        mc_batch_size, ci_halfwidth, context
    )
    check_positive_int(mc_batch_size, "mc_batch_size")
    rng = as_generator(seed)
    sizes = _chunked_spread_sizes(
        graph, model, seeds, samples, rng, mc_batch_size, ci_halfwidth,
        kernel=kernel,
    )
    return _estimate_from_sizes(sizes)


def estimate_truncated_spread(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    eta: int,
    samples: int = 1000,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    ci_halfwidth: Optional[float] = None,
    context=None,
) -> MonteCarloEstimate:
    """Estimate ``E[Gamma(S)] = E[min{I(S), eta}]`` by batched simulation."""
    check_positive_int(samples, "samples")
    check_positive_int(eta, "eta")
    mc_batch_size, ci_halfwidth, kernel = _resolve_estimator_policy(
        mc_batch_size, ci_halfwidth, context
    )
    check_positive_int(mc_batch_size, "mc_batch_size")
    rng = as_generator(seed)
    sizes = _chunked_spread_sizes(
        graph, model, seeds, samples, rng, mc_batch_size, ci_halfwidth,
        eta=eta, kernel=kernel,
    )
    return _estimate_from_sizes(sizes)


def estimate_activation_probabilities(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    samples: int = 1000,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    context=None,
) -> np.ndarray:
    """Per-node activation probability under cascades from ``seeds``.

    Diagnostic helper: returns a float array ``p[v] = Pr[v active]``.  The
    batched engine's packed output makes the accumulation one ``bincount``
    per chunk instead of one dense mask addition per cascade.
    """
    check_positive_int(samples, "samples")
    mc_batch_size, _, kernel = _resolve_estimator_policy(
        mc_batch_size, None, context
    )
    check_positive_int(mc_batch_size, "mc_batch_size")
    rng = as_generator(seed)
    totals = np.zeros(graph.n, dtype=np.float64)
    generated = 0
    scratch = np.zeros(min(samples, mc_batch_size) * graph.n, dtype=bool)
    while generated < samples:
        step = min(samples - generated, mc_batch_size)
        members, _ = model.simulate_batch(
            graph, seeds, step, rng, scratch, kernel=kernel
        )
        totals += np.bincount(members, minlength=graph.n)
        generated += step
    return totals / samples


def _crn_propose(graph: DiGraph, kind: str, worlds: np.ndarray, world: np.ndarray):
    """The labeled-BFS expansion closure for a job -> world mapping.

    ``worlds`` is the flat stacked realization noise (``n_sims * m`` live
    flags under IC, ``n_sims * n`` chosen in-edges under LT) and ``world``
    maps each job (labeled sample) of the sweep to its world index.
    Module-level so the parallel runtime's workers can run the exact same
    closure over shared-memory views.
    """
    indptr, targets, _ = graph.out_csr
    n, m = graph.n, graph.m
    if kind == "ic":
        live = worlds

        def propose_ic(frontier_sids, frontier_nodes):
            positions, owners, _ = expand_labeled_frontier(
                indptr, frontier_sids, frontier_nodes
            )
            if len(positions) == 0:
                return positions
            kept = live[world[owners] * m + positions]
            return owners[kept] * n + targets[positions[kept]]

        return propose_ic
    chosen = worlds

    def propose_lt(frontier_sids, frontier_nodes):
        positions, owners, degrees = expand_labeled_frontier(
            indptr, frontier_sids, frontier_nodes
        )
        if len(positions) == 0:
            return positions
        sources = np.repeat(frontier_nodes, degrees)
        heads = targets[positions]
        # Edge u -> v is live in world w exactly when v chose u in w.
        kept = chosen[world[owners] * n + heads] == sources
        return owners[kept] * n + heads[kept]

    return propose_lt


def crn_chunk(
    graph: DiGraph,
    kind: str,
    worlds: np.ndarray,
    sets_block: Sequence[np.ndarray],
    world_ids: np.ndarray,
    scratch: Optional[np.ndarray] = None,
    kernel: str = "auto",
) -> np.ndarray:
    """One CRN sweep: realized spreads of a block of (candidate, world) jobs.

    Job ``j`` starts from seed set ``sets_block[j]`` and expands over the
    live edges of world ``world_ids[j]``.  Pure function of its inputs
    (the worlds are pre-sampled), so the evaluator can run sweeps in-process
    or shard them across worker processes — and replay is deterministic, so
    results are bit-identical for every worker count and every ``kernel``
    backend (see :mod:`repro.kernels`).
    """
    from repro.kernels import resolve_backend
    from repro.kernels.dispatch import replay_expander

    worlds = worlds.reshape(-1)
    starts = (
        np.concatenate(sets_block)
        if len(sets_block)
        else np.empty(0, dtype=np.int64)
    )
    lengths = np.fromiter(
        (len(s) for s in sets_block), dtype=np.int64, count=len(sets_block)
    )
    starts_indptr = np.zeros(len(sets_block) + 1, dtype=np.int64)
    np.cumsum(lengths, out=starts_indptr[1:])
    world_ids = np.asarray(world_ids, dtype=np.int64)
    backend = resolve_backend(kernel, graph)
    if backend.kernels is not None:
        out_indptr, targets, _ = graph.out_csr
        _, indptr = run_labeled_bfs(
            graph.n,
            starts,
            starts_indptr,
            scratch=scratch,
            expand=replay_expander(
                backend, kind, out_indptr, targets, worlds, world_ids,
                graph.m, graph.n,
            ),
        )
    else:
        _, indptr = run_labeled_bfs(
            graph.n,
            starts,
            starts_indptr,
            _crn_propose(graph, kind, worlds, world_ids),
            scratch,
        )
    return np.diff(indptr).astype(np.float64)


class CRNSpreadEvaluator:
    """Score many candidate seed sets against shared cascade noise.

    Samples ``n_sims`` live-edge realizations once at construction, then
    evaluates arbitrarily many candidate seed sets against those *same*
    realizations (common random numbers).  Two properties make this the
    right estimator for greedy selection loops:

    * **comparability** — two candidates are scored on identical worlds, so
      their difference is free of between-candidate sampling noise and a
      superset never scores below its subset;
    * **batch throughput** — each evaluation batch flattens the
      ``(candidate, realization)`` pairs into jobs of one labeled forward
      BFS (chunked to a visitation-bitset budget), so CELF's ``n``-singleton
      initialization runs as a handful of vectorized sweeps instead of
      ``n * n_sims`` per-cascade Python loops.

    For IC-family models (including the topic-aware collapse) the
    realizations stack into one flat live-edge matrix; for LT into one flat
    chosen-in-edge matrix (the per-realization objects are released once
    stacked).  Any other model falls back to per-realization
    ``reachable_from`` replay, which is the distributional reference.

    Construction is deterministic: the worlds are drawn from ``seed`` in
    order, so two evaluators built with the same ``(graph, model, n_sims,
    seed)`` score every candidate identically.

    ``mc_batch_size``, when given, bounds the number of concurrently
    replayed cascades (jobs) per labeled sweep — the CRN analogue of the
    estimators' chunk size, giving the sweep the same ``mc_batch_size * n``
    visitation-bitset working set.  The default (``None``) sizes sweeps
    from ``bitset_budget`` instead, which amortizes dispatch further at the
    price of a larger (~32 MB) bitset.

    ``runtime`` shards the sweeps of each evaluation batch across a
    :class:`~repro.parallel.runtime.ParallelRuntime`'s workers over the
    shared-memory worlds.  Realizations are always sampled here in the
    parent, and each sweep is a pure function of pre-sampled noise, so the
    returned estimates are bit-identical with or without a runtime, for
    any worker count.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: DiffusionModel,
        n_sims: int = 200,
        seed: RandomSource = None,
        bitset_budget: int = _CRN_BITSET_BUDGET,
        mc_batch_size: Optional[int] = None,
        runtime=None,
        context=None,
    ):
        check_positive_int(n_sims, "n_sims")
        # Context defaults with explicit-argument override (the low-level
        # escape hatch, like the reverse engine's).
        if context is not None and mc_batch_size is None:
            mc_batch_size = context.mc_batch_size
        if context is not None and runtime is None:
            runtime = context.runtime
        self._kernel = (
            context.kernel_backend if context is not None else "auto"
        )
        if mc_batch_size is not None:
            check_positive_int(mc_batch_size, "mc_batch_size")
        self.graph = graph
        self.model = model
        self.n_sims = int(n_sims)
        rng = as_generator(seed)
        # Persistent realization-batch cache (see repro.store): the worlds
        # are a pure function of (graph, model, n_sims, the generator's
        # exact pre-sampling state), so a hit restores the recorded
        # post-sampling state and is bit-identical to resampling.  Unseeded
        # evaluators skip the store — nothing could ever hit their keys.
        store = (
            context.pool_store
            if context is not None and seed is not None
            else None
        )
        store_key = None
        realizations = None
        if store is not None:
            from repro.store import (
                artifact_key,
                generator_state,
                graph_fingerprint,
                model_key,
                restore_generator_state,
                rng_state_token,
            )

            store_key = artifact_key(
                "crn",
                {
                    "graph": graph_fingerprint(graph),
                    "model": model_key(model),
                    "n_sims": self.n_sims,
                    "state": rng_state_token(rng),
                },
            )
            cached = store.load(store_key)
            if cached is not None:
                arrays, meta = cached
                kind = meta.get("world_kind")
                if kind in ("ic", "lt") and restore_generator_state(
                    rng, meta.get("rng_state")
                ):
                    self._kind = kind
                    self._worlds = arrays["worlds"]
                    self._vectorized = True
                    if context is not None:
                        context.tally("pool_store_crn_hits")
                else:
                    store_key = None  # unusable artifact: resample, no save
        if not hasattr(self, "_kind"):
            realizations = [
                model.sample_realization(graph, rng)
                for _ in range(self.n_sims)
            ]
        self._bitset_budget = max(int(bitset_budget), graph.n)
        self._mc_batch_size = mc_batch_size
        self._runtime = runtime
        self._worlds_handle = None  # lazily published shared-memory worlds
        # The publication lives in an ExitStack entered on the runtime's
        # ``published()`` context manager: the release is registered with
        # the stack *before* the handle reaches any evaluator code, so no
        # exception window can strand the segment until runtime close.
        self._worlds_stack = contextlib.ExitStack()
        self._scratch: np.ndarray = None
        if realizations is None:
            return  # worlds restored from the store above
        first = realizations[0]
        if isinstance(first, ICRealization):
            self._kind = "ic"
            self._worlds = np.concatenate([r.live_edges for r in realizations])
            self._vectorized = True
        elif isinstance(first, LTRealization):
            self._kind = "lt"
            self._worlds = np.concatenate(
                [r.chosen_source for r in realizations]
            )
            self._vectorized = True
        else:
            self._kind = None
            self._realizations = realizations  # fallback replay needs them
            self._vectorized = False
        if store is not None and store_key is not None and self._vectorized:
            from repro.store import generator_state

            store.save(
                store_key,
                {"worlds": self._worlds},
                {"world_kind": self._kind, "rng_state": generator_state(rng)},
            )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def spread_matrix(self, seed_sets: Sequence[Sequence[int]]) -> np.ndarray:
        """``sizes[c, r] = I_phi_r(S_c)`` for every candidate/realization.

        The raw material of every aggregate: a ``(len(seed_sets), n_sims)``
        float matrix of realized spreads on the shared worlds.
        """
        sets = [normalize_seeds(self.graph, s) for s in seed_sets]
        if not self._vectorized:
            return np.array(
                [[float(phi.spread(s)) for phi in self._realizations] for s in sets],
                dtype=np.float64,
            ).reshape(len(sets), self.n_sims)
        n, r = self.graph.n, self.n_sims
        # Jobs are candidate-major: job j = (candidate j // r, world j % r),
        # and sweeps slice the job list directly, so a single candidate's
        # realizations may span sweeps — the jobs-per-sweep bound holds
        # even when it is smaller than n_sims.
        total = len(sets) * r
        if self._mc_batch_size is not None:
            sweep = self._mc_batch_size
        else:
            sweep = max(1, self._bitset_budget // n)
        sweep = min(sweep, max(1, total))
        spans = [
            (begin, min(begin + sweep, total)) for begin in range(0, total, sweep)
        ]

        def block_args(begin, end):
            block_sets = [sets[j // r] for j in range(begin, end)]
            world_ids = np.arange(begin, end, dtype=np.int64) % r
            return block_sets, world_ids

        parallel = (
            self._runtime is not None
            and self._runtime.parallel
            and len(spans) > 1
        )
        if parallel:
            graph_handle = self._runtime.publish_graph(self.graph)
            if self._worlds_handle is None:
                self._worlds_handle = self._worlds_stack.enter_context(
                    self._runtime.published({"worlds": self._worlds})
                )
            from repro.parallel.tasks import worker_crn_chunk

            pieces = self._runtime.map_ordered(
                worker_crn_chunk,
                [
                    (graph_handle, self._kind, self._worlds_handle)
                    + block_args(begin, end)
                    + (self._kernel,)
                    for begin, end in spans
                ],
            )
            return np.concatenate(pieces).reshape(len(sets), r)
        if self._scratch is None or len(self._scratch) < sweep * n:
            self._scratch = np.zeros(sweep * n, dtype=bool)
        job_sizes = np.empty(total, dtype=np.float64)
        for begin, end in spans:
            block_sets, world_ids = block_args(begin, end)
            job_sizes[begin:end] = crn_chunk(
                self.graph,
                self._kind,
                self._worlds,
                block_sets,
                world_ids,
                self._scratch,
                kernel=self._kernel,
            )
        return job_sizes.reshape(len(sets), r)

    def evaluate_many(
        self, seed_sets: Sequence[Sequence[int]], eta: Optional[int] = None
    ) -> np.ndarray:
        """Mean (optionally ``eta``-truncated) spread of every candidate.

        Returns a float array aligned with ``seed_sets``; all entries are
        averages over the same ``n_sims`` realizations.
        """
        sizes = self.spread_matrix(seed_sets)
        if eta is not None:
            check_positive_int(eta, "eta")
            np.minimum(sizes, float(eta), out=sizes)
        return sizes.mean(axis=1)

    def evaluate(
        self, seeds: Sequence[int], eta: Optional[int] = None
    ) -> float:
        """Mean spread of one candidate on the shared realizations."""
        return float(self.evaluate_many([seeds], eta=eta)[0])

    def close(self) -> None:
        """Unlink this evaluator's published shared-memory worlds.

        A no-op unless a multi-worker runtime actually published them.
        The runtime also unlinks everything at its own close, but callers
        that build many evaluators against one long-lived runtime (a
        sweep with CELF in the roster) should release each evaluator's
        worlds segment as soon as its evaluations are done.  Safe to call
        repeatedly; the evaluator falls back to in-process sweeps if used
        again afterwards.
        """
        self._worlds_stack.close()
        if self._worlds_handle is not None:
            self._worlds_handle = None
            self._runtime = None

    def __enter__(self) -> CRNSpreadEvaluator:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

def estimate_spreads_many(
    graph: DiGraph,
    model: DiffusionModel,
    seed_sets: Sequence[Sequence[int]],
    n_sims: int = 200,
    eta: Optional[int] = None,
    seed: RandomSource = None,
    mc_batch_size: Optional[int] = None,
    runtime=None,
    context=None,
) -> np.ndarray:
    """One-shot common-random-number evaluation of many candidate sets.

    Convenience wrapper constructing a throwaway :class:`CRNSpreadEvaluator`
    — callers that re-evaluate against the same noise (CELF's lazy queue)
    should hold on to an evaluator instead.  ``context`` supplies the
    ``mc_batch_size`` / runtime policy (explicit arguments override); a
    runtime shards the sweeps across workers and the estimates are
    bit-identical either way.
    """
    with CRNSpreadEvaluator(
        graph,
        model,
        n_sims=n_sims,
        seed=seed,
        mc_batch_size=mc_batch_size,
        runtime=runtime,
        context=context,
    ) as evaluator:
        return evaluator.evaluate_many(seed_sets, eta=eta)
