"""Monte-Carlo spread estimation.

The classic (pre-RR-set) way of estimating ``E[I(S)]`` and the truncated
``E[Gamma(S)]``: average over independent forward simulations.  Slow but
unbiased and dead simple — the test suite uses it as ground truth to
validate the sampling-based estimators, and the oracle-greedy baseline uses
it on graphs too big for exact enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimate with its sampling error."""

    mean: float
    std_error: float
    samples: int

    def confidence_interval(self, z: float = 1.96):
        """Normal-approximation CI half-width scaled by ``z``."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


def estimate_spread(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    samples: int = 1000,
    seed: RandomSource = None,
) -> MonteCarloEstimate:
    """Estimate ``E[I(S)]`` by averaging ``samples`` forward cascades."""
    check_positive_int(samples, "samples")
    rng = as_generator(seed)
    spreads = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        spreads[i] = model.simulate(graph, seeds, rng).sum()
    std_error = float(spreads.std(ddof=1) / np.sqrt(samples)) if samples > 1 else 0.0
    return MonteCarloEstimate(float(spreads.mean()), std_error, samples)


def estimate_truncated_spread(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    eta: int,
    samples: int = 1000,
    seed: RandomSource = None,
) -> MonteCarloEstimate:
    """Estimate ``E[Gamma(S)] = E[min{I(S), eta}]`` by simulation."""
    check_positive_int(samples, "samples")
    check_positive_int(eta, "eta")
    rng = as_generator(seed)
    spreads = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        spreads[i] = min(int(model.simulate(graph, seeds, rng).sum()), eta)
    std_error = float(spreads.std(ddof=1) / np.sqrt(samples)) if samples > 1 else 0.0
    return MonteCarloEstimate(float(spreads.mean()), std_error, samples)


def estimate_activation_probabilities(
    graph: DiGraph,
    model: DiffusionModel,
    seeds: Sequence[int],
    samples: int = 1000,
    seed: RandomSource = None,
) -> np.ndarray:
    """Per-node activation probability under cascades from ``seeds``.

    Diagnostic helper: returns a float array ``p[v] = Pr[v active]``.
    """
    check_positive_int(samples, "samples")
    rng = as_generator(seed)
    totals = np.zeros(graph.n, dtype=np.float64)
    for _ in range(samples):
        totals += model.simulate(graph, seeds, rng)
    return totals / samples
