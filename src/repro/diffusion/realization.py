"""Live-edge realizations.

A *realization* ``phi`` fixes the outcome of every random choice in the
diffusion process (paper Section 2.1): under IC every edge is independently
live or blocked; under LT every node selects at most one live incoming edge.
Given a realization, influence propagation is deterministic — the spread of
a seed set is the set of nodes reachable from it over live edges.

The adaptive machinery leans on this: the experiment harness samples a
handful of ground-truth realizations per dataset (the paper uses 20) and the
:class:`~repro.core.session.AdaptiveSession` reveals each one incrementally
as the policy commits seeds.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, gather_csr_rows


class Realization(abc.ABC):
    """A deterministic world sampled from a diffusion model."""

    def __init__(self, graph: DiGraph):
        self.graph = graph

    @abc.abstractmethod
    def is_edge_live(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` is live in this world."""

    @abc.abstractmethod
    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean mask of nodes reachable from ``seeds`` over live edges.

        ``allowed`` (optional boolean mask) restricts traversal to a node
        subset: nodes outside it are neither activated nor traversed.  This
        implements observation inside a residual graph without re-indexing
        the realization.
        """

    def spread(self, seeds: Sequence[int], allowed: Optional[np.ndarray] = None) -> int:
        """``I_phi(S)``: the number of nodes activated by ``seeds``."""
        return int(self.reachable_from(seeds, allowed).sum())

    def truncated_spread(
        self,
        seeds: Sequence[int],
        eta: int,
        allowed: Optional[np.ndarray] = None,
    ) -> int:
        """``Gamma_phi(S) = min{I_phi(S), eta}`` (paper Definition 2.2)."""
        return min(self.spread(seeds, allowed), eta)

    def _start_mask(self, seeds: Sequence[int], allowed: Optional[np.ndarray]) -> np.ndarray:
        """Shared seed validation: returns the initial visited mask."""
        visited = np.zeros(self.graph.n, dtype=bool)
        for s in seeds:
            s = int(s)
            if not 0 <= s < self.graph.n:
                raise NodeNotFoundError(s, self.graph.n)
            if allowed is None or allowed[s]:
                visited[s] = True
        return visited


class ICRealization(Realization):
    """IC world: a boolean live flag per edge, aligned with the out-CSR."""

    def __init__(self, graph: DiGraph, live_edges: np.ndarray):
        super().__init__(graph)
        live_edges = np.asarray(live_edges, dtype=bool)
        if live_edges.shape != (graph.m,):
            raise ValueError(
                f"live_edges must have shape ({graph.m},), got {live_edges.shape}"
            )
        self.live_edges = live_edges

    def is_edge_live(self, u: int, v: int) -> bool:
        indptr, targets, _ = self.graph.out_csr
        start, end = int(indptr[u]), int(indptr[u + 1])
        for pos in range(start, end):
            if targets[pos] == v:
                if self.live_edges[pos]:
                    return True
        return False

    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        visited = self._start_mask(seeds, allowed)
        indptr, targets, _ = self.graph.out_csr
        frontier = np.flatnonzero(visited)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            positions = positions[self.live_edges[positions]]
            candidates = targets[positions]
            if allowed is not None:
                candidates = candidates[allowed[candidates]]
            fresh = np.unique(candidates[~visited[candidates]])
            visited[fresh] = True
            frontier = fresh
        return visited

    def live_edge_count(self) -> int:
        """Number of live edges (testing/diagnostics)."""
        return int(self.live_edges.sum())


class LTRealization(Realization):
    """LT world: each node's single chosen live in-edge (or none).

    ``chosen_source[v]`` is the selected in-neighbor of ``v``, or ``-1`` when
    ``v`` selected no incoming edge.  This is the classic live-edge
    equivalence of the linear threshold model (Kempe et al. 2003).
    """

    def __init__(self, graph: DiGraph, chosen_source: np.ndarray):
        super().__init__(graph)
        chosen_source = np.asarray(chosen_source, dtype=np.int64)
        if chosen_source.shape != (graph.n,):
            raise ValueError(
                f"chosen_source must have shape ({graph.n},), got {chosen_source.shape}"
            )
        self.chosen_source = chosen_source

    def is_edge_live(self, u: int, v: int) -> bool:
        return bool(self.chosen_source[v] == u)

    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        visited = self._start_mask(seeds, allowed)
        indptr, targets, _ = self.graph.out_csr
        frontier = np.flatnonzero(visited)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            sources = np.repeat(
                frontier, indptr[frontier + 1] - indptr[frontier]
            )
            candidates = targets[positions]
            # Edge u -> v is live exactly when v chose u.
            live = self.chosen_source[candidates] == sources
            candidates = candidates[live]
            if allowed is not None:
                candidates = candidates[allowed[candidates]]
            fresh = np.unique(candidates[~visited[candidates]])
            visited[fresh] = True
            frontier = fresh
        return visited

    def live_edge_count(self) -> int:
        """Number of live edges, i.e. nodes that selected an in-edge."""
        return int((self.chosen_source >= 0).sum())
