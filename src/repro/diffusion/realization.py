"""Live-edge realizations.

A *realization* ``phi`` fixes the outcome of every random choice in the
diffusion process (paper Section 2.1): under IC every edge is independently
live or blocked; under LT every node selects at most one live incoming edge.
Given a realization, influence propagation is deterministic — the spread of
a seed set is the set of nodes reachable from it over live edges.

The adaptive machinery leans on this: the experiment harness samples a
handful of ground-truth realizations per dataset (the paper uses 20) and the
:class:`~repro.core.session.AdaptiveSession` reveals each one incrementally
as the policy commits seeds.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import DiffusionError, NodeNotFoundError
from repro.graph.digraph import DiGraph, gather_csr_rows


class Realization(abc.ABC):
    """A deterministic world sampled from a diffusion model."""

    def __init__(self, graph: DiGraph):
        self.graph = graph

    @abc.abstractmethod
    def is_edge_live(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` is live in this world."""

    @abc.abstractmethod
    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean mask of nodes reachable from ``seeds`` over live edges.

        ``allowed`` (optional boolean mask) restricts traversal to a node
        subset: nodes outside it are neither activated nor traversed.  This
        implements observation inside a residual graph without re-indexing
        the realization.
        """

    def spread(self, seeds: Sequence[int], allowed: Optional[np.ndarray] = None) -> int:
        """``I_phi(S)``: the number of nodes activated by ``seeds``."""
        return int(self.reachable_from(seeds, allowed).sum())

    def truncated_spread(
        self,
        seeds: Sequence[int],
        eta: int,
        allowed: Optional[np.ndarray] = None,
    ) -> int:
        """``Gamma_phi(S) = min{I_phi(S), eta}`` (paper Definition 2.2)."""
        return min(self.spread(seeds, allowed), eta)

    def _start_mask(self, seeds: Sequence[int], allowed: Optional[np.ndarray]) -> np.ndarray:
        """Shared seed validation: returns the initial visited mask."""
        visited = np.zeros(self.graph.n, dtype=bool)
        for s in seeds:
            s = int(s)
            if not 0 <= s < self.graph.n:
                raise NodeNotFoundError(s, self.graph.n)
            if allowed is None or allowed[s]:
                visited[s] = True
        return visited


class ICRealization(Realization):
    """IC world: a boolean live flag per edge, aligned with the out-CSR."""

    def __init__(self, graph: DiGraph, live_edges: np.ndarray):
        super().__init__(graph)
        live_edges = np.asarray(live_edges, dtype=bool)
        if live_edges.shape != (graph.m,):
            raise ValueError(
                f"live_edges must have shape ({graph.m},), got {live_edges.shape}"
            )
        self.live_edges = live_edges

    def is_edge_live(self, u: int, v: int) -> bool:
        indptr, targets, _ = self.graph.out_csr
        start, end = int(indptr[u]), int(indptr[u + 1])
        for pos in range(start, end):
            if targets[pos] == v:
                if self.live_edges[pos]:
                    return True
        return False

    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        visited = self._start_mask(seeds, allowed)
        indptr, targets, _ = self.graph.out_csr
        frontier = np.flatnonzero(visited)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            positions = positions[self.live_edges[positions]]
            candidates = targets[positions]
            if allowed is not None:
                candidates = candidates[allowed[candidates]]
            fresh = np.unique(candidates[~visited[candidates]])
            visited[fresh] = True
            frontier = fresh
        return visited

    def live_edge_count(self) -> int:
        """Number of live edges (testing/diagnostics)."""
        return int(self.live_edges.sum())


class LTRealization(Realization):
    """LT world: each node's single chosen live in-edge (or none).

    ``chosen_source[v]`` is the selected in-neighbor of ``v``, or ``-1`` when
    ``v`` selected no incoming edge.  This is the classic live-edge
    equivalence of the linear threshold model (Kempe et al. 2003).
    """

    def __init__(self, graph: DiGraph, chosen_source: np.ndarray):
        super().__init__(graph)
        chosen_source = np.asarray(chosen_source, dtype=np.int64)
        if chosen_source.shape != (graph.n,):
            raise ValueError(
                f"chosen_source must have shape ({graph.n},), got {chosen_source.shape}"
            )
        self.chosen_source = chosen_source

    def is_edge_live(self, u: int, v: int) -> bool:
        return bool(self.chosen_source[v] == u)

    def reachable_from(
        self,
        seeds: Sequence[int],
        allowed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        visited = self._start_mask(seeds, allowed)
        indptr, targets, _ = self.graph.out_csr
        frontier = np.flatnonzero(visited)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            sources = np.repeat(
                frontier, indptr[frontier + 1] - indptr[frontier]
            )
            candidates = targets[positions]
            # Edge u -> v is live exactly when v chose u.
            live = self.chosen_source[candidates] == sources
            candidates = candidates[live]
            if allowed is not None:
                candidates = candidates[allowed[candidates]]
            fresh = np.unique(candidates[~visited[candidates]])
            visited[fresh] = True
            frontier = fresh
        return visited

    def live_edge_count(self) -> int:
        """Number of live edges, i.e. nodes that selected an in-edge."""
        return int((self.chosen_source >= 0).sum())


def batch_reachable_from(
    realizations: Sequence[Realization],
    seeds_per: Sequence[Sequence[int]],
    allowed: Optional[np.ndarray] = None,
    kernel: str = "auto",
) -> np.ndarray:
    """Reachability of many (realization, seed set) pairs in one sweep.

    The observation half of the batched adaptive engine: session ``s``
    activates the nodes reachable from ``seeds_per[s]`` over the live edges
    of ``realizations[s]``, restricted to ``allowed[s]`` (a ``(batch, n)``
    boolean mask; ``None`` allows every node).  All realizations must be
    worlds of the *same* graph object — the harness scores every policy
    against one dataset graph with many sampled worlds.

    Homogeneous IC or LT batches run as one multi-session labeled forward
    BFS on the shared :func:`~repro.diffusion.base.run_labeled_bfs` driver,
    with per-session live-edge flags (IC) or chosen in-edges (LT) stacked
    flat and keyed ``session_id * m + edge`` / ``session_id * n + node``.
    Mixed or unknown realization types fall back to one
    :meth:`Realization.reachable_from` call per session, which the batch
    path must match bit for bit (observation is deterministic given the
    realization).  ``kernel`` selects the per-level backend for the
    homogeneous sweeps (see :mod:`repro.kernels`); replay is deterministic
    given the realizations, so every backend returns the same matrix.

    Returns a ``(batch, n)`` boolean activation matrix.
    """
    from repro.diffusion.base import expand_labeled_frontier, run_labeled_bfs
    from repro.kernels import resolve_backend
    from repro.kernels.dispatch import replay_expander

    if len(realizations) == 0:
        raise DiffusionError("batch_reachable_from needs at least one realization")
    if len(realizations) != len(seeds_per):
        raise DiffusionError(
            f"got {len(realizations)} realizations but {len(seeds_per)} seed sets"
        )
    graph = realizations[0].graph
    for phi in realizations[1:]:
        if phi.graph is not graph:
            raise DiffusionError(
                "all realizations in a batch must share one graph object"
            )
    batch, n = len(realizations), graph.n
    if allowed is not None:
        allowed = np.asarray(allowed, dtype=bool)
        if allowed.shape != (batch, n):
            raise DiffusionError(
                f"allowed must have shape ({batch}, {n}), got {allowed.shape}"
            )

    same_type = all(type(phi) is type(realizations[0]) for phi in realizations)
    homogeneous_ic = same_type and isinstance(realizations[0], ICRealization)
    homogeneous_lt = same_type and isinstance(realizations[0], LTRealization)
    if not (homogeneous_ic or homogeneous_lt):
        rows = [
            phi.reachable_from(
                seeds, None if allowed is None else allowed[sid]
            )
            for sid, (phi, seeds) in enumerate(zip(realizations, seeds_per))
        ]
        return np.stack(rows)

    # Start sets: per-session seed validation identical to _start_mask.
    start_lists: list[np.ndarray] = []
    for sid, seeds in enumerate(seeds_per):
        mask = realizations[sid]._start_mask(
            seeds, None if allowed is None else allowed[sid]
        )
        start_lists.append(np.flatnonzero(mask))
    starts = (
        np.concatenate(start_lists) if start_lists else np.empty(0, dtype=np.int64)
    )
    starts_indptr = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum([len(s) for s in start_lists], out=starts_indptr[1:])

    out_indptr, targets, _ = graph.out_csr
    allowed_flat = None if allowed is None else allowed.reshape(-1)

    backend = resolve_backend(kernel, graph)
    if backend.kernels is not None:
        kind = "ic" if homogeneous_ic else "lt"
        worlds_flat = np.concatenate(
            [
                phi.live_edges if homogeneous_ic else phi.chosen_source
                for phi in realizations
            ]
        )
        expand = replay_expander(
            backend,
            kind,
            out_indptr,
            targets,
            worlds_flat,
            np.arange(batch, dtype=np.int64),  # session s replays world s
            graph.m,
            n,
            allowed_flat,
        )
        members, indptr = run_labeled_bfs(
            n, starts, starts_indptr, expand=expand
        )
        visited = np.zeros(batch * n, dtype=bool)
        session_of = np.repeat(
            np.arange(batch, dtype=np.int64), np.diff(indptr)
        )
        visited[session_of * n + members] = True
        return visited.reshape(batch, n)

    if homogeneous_ic:
        m = graph.m
        live_flat = np.concatenate([phi.live_edges for phi in realizations])

        def propose(frontier_sids, frontier_nodes):
            positions, owners, _ = expand_labeled_frontier(
                out_indptr, frontier_sids, frontier_nodes
            )
            keep = live_flat[owners * m + positions]
            candidates = targets[positions[keep]]
            owners = owners[keep]
            if allowed_flat is not None:
                ok = allowed_flat[owners * n + candidates]
                candidates, owners = candidates[ok], owners[ok]
            return owners * n + candidates

    else:
        chosen_flat = np.concatenate(
            [phi.chosen_source for phi in realizations]
        )

        def propose(frontier_sids, frontier_nodes):
            positions, owners, degrees = expand_labeled_frontier(
                out_indptr, frontier_sids, frontier_nodes
            )
            sources = np.repeat(frontier_nodes, degrees)
            candidates = targets[positions]
            # Edge u -> v is live in session s exactly when v chose u there.
            keep = chosen_flat[owners * n + candidates] == sources
            candidates, owners = candidates[keep], owners[keep]
            if allowed_flat is not None:
                ok = allowed_flat[owners * n + candidates]
                candidates, owners = candidates[ok], owners[ok]
            return owners * n + candidates

    members, indptr = run_labeled_bfs(n, starts, starts_indptr, propose)
    visited = np.zeros(batch * n, dtype=bool)
    session_of = np.repeat(np.arange(batch, dtype=np.int64), np.diff(indptr))
    visited[session_of * n + members] = True
    return visited.reshape(batch, n)
