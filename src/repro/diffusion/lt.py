"""The linear threshold (LT) model (Kempe et al. 2003).

Every node ``v`` draws a threshold ``lambda_v ~ Uniform[0, 1]``; it activates
once the probabilities of its edges from active in-neighbors sum past the
threshold.  The model requires incoming probabilities to sum to at most 1
per node (the paper's weighted-cascade weights satisfy this with equality
wherever ``indeg > 0``).

The equivalent live-edge process — each node independently keeps at most one
incoming edge, edge ``(u, v)`` with probability ``p(u, v)`` — drives both
:meth:`LinearThreshold.sample_realization` and the reverse random walk used
for (m)RR sets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diffusion.base import (
    DiffusionModel,
    expand_labeled_frontier,
    normalize_seeds,
    run_labeled_forward_bfs,
    run_labeled_reverse_bfs,
    tile_starts,
)
from repro.diffusion.realization import LTRealization
from repro.errors import ConfigurationError, DiffusionError
from repro.graph.digraph import DiGraph, gather_csr_rows
from repro.kernels import resolve_backend
from repro.kernels.dispatch import lt_forward_expander, lt_walk_expander
from repro.utils.rng import RandomSource, as_generator

_SUM_TOLERANCE = 1e-9


def check_lt_validity(graph: DiGraph) -> None:
    """Raise :class:`DiffusionError` unless in-probabilities sum to <= 1."""
    src, dst, probs = graph.edge_arrays()
    sums = np.zeros(graph.n, dtype=np.float64)
    np.add.at(sums, dst, probs)
    worst = float(sums.max()) if graph.n else 0.0
    if worst > 1.0 + _SUM_TOLERANCE:
        offender = int(sums.argmax())
        raise DiffusionError(
            f"LT requires incoming probabilities to sum to <= 1; node "
            f"{offender} has sum {worst:.6f}"
        )


class LinearThreshold(DiffusionModel):
    """Stateless LT model.

    Parameters
    ----------
    validate:
        If ``True`` (default), every entry point checks the LT weight
        constraint once per graph object (cached by object id).
    """

    name = "LT"

    def __init__(self, validate: bool = True):
        self._validate = validate
        self._checked_ids: set = set()
        self._cum_graph: DiGraph = None
        self._cum_probs: np.ndarray = None

    def _ensure_valid(self, graph: DiGraph) -> None:
        if not self._validate:
            return
        key = id(graph)
        if key in self._checked_ids:
            return
        check_lt_validity(graph)
        # Bound the cache so long-lived models do not pin arbitrary many ids.
        if len(self._checked_ids) > 4096:
            self._checked_ids.clear()
        self._checked_ids.add(key)

    def _cumulative_in_probs(self, graph: DiGraph, probs: np.ndarray) -> np.ndarray:
        """Memoized running sum of the in-CSR probabilities.

        ``reverse_sample_batch`` binary-searches this array once per BFS
        level; recomputing the O(m) cumsum per engine call would dominate
        small batches.  A single slot suffices: pool growth hammers one
        graph at a time, and each adaptive round brings a fresh residual
        graph that replaces the previous entry — so nothing beyond the
        current graph (identity-checked, immutable) is ever pinned.

        The running sum must accumulate in float64 even when the graph
        stores compact float32 probabilities: each addend upcasts exactly,
        so the cumulative array (and every walk derived from it) is
        bit-identical across storage policies.
        """
        if self._cum_graph is not graph:
            self._cum_graph = graph
            self._cum_probs = np.cumsum(probs, dtype=np.float64)
        return self._cum_probs

    def sample_realization(
        self, graph: DiGraph, seed: RandomSource = None
    ) -> LTRealization:
        """Each node keeps at most one incoming edge (live-edge sampling)."""
        self._ensure_valid(graph)
        rng = as_generator(seed)
        indptr, sources, probs = graph.in_csr
        chosen = np.full(graph.n, -1, dtype=np.int64)
        draws = rng.random(graph.n)
        for v in range(graph.n):
            start, end = int(indptr[v]), int(indptr[v + 1])
            if start == end:
                continue
            acc = 0.0
            x = draws[v]
            for pos in range(start, end):
                # float() keeps the accumulation in float64 under compact
                # float32 storage (the upcast of each addend is exact).
                acc += float(probs[pos])
                if x < acc:
                    chosen[v] = sources[pos]
                    break
        return LTRealization(graph, chosen)

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> np.ndarray:
        """Forward threshold process; avoids materializing a realization."""
        self._ensure_valid(graph)
        rng = as_generator(seed)
        indptr, targets, probs = graph.out_csr
        thresholds = rng.random(graph.n)
        accumulated = np.zeros(graph.n, dtype=np.float64)
        active = np.zeros(graph.n, dtype=bool)
        active[normalize_seeds(graph, seeds)] = True
        frontier = np.flatnonzero(active)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            if len(positions) == 0:
                break
            touched = targets[positions]
            np.add.at(accumulated, touched, probs[positions])
            crossers = np.unique(touched)
            fresh = crossers[
                (~active[crossers]) & (accumulated[crossers] >= thresholds[crossers])
            ]
            active[fresh] = True
            frontier = fresh
        return active

    def simulate_batch(
        self,
        graph: DiGraph,
        seeds,
        n_sims: int,
        seed: RandomSource = None,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ):
        """One multi-cascade labeled forward BFS of the threshold process.

        Per ``(simulation, node)`` pair the batch keeps a running sum of
        incoming weight from activated neighbors and a uniform threshold,
        in flat ``n_sims * n`` arrays keyed like the visitation bitset; a
        node activates the first level its sum crosses its threshold,
        exactly as in the scalar :meth:`simulate`.  Thresholds are drawn
        lazily on a pair's first touch — iid uniforms, so distributionally
        identical to drawing them all up front, but the number of draws
        tracks the cascades' actual reach instead of ``n_sims * n`` (the
        threshold array itself stays ``np.empty``: allocated virtual, only
        touched pages materialize).  The flat float arrays are the memory
        price of the batch, which is what the estimator chunking
        (``mc_batch_size``) bounds.
        """
        self._ensure_valid(graph)
        if n_sims < 0:
            raise ConfigurationError(f"n_sims must be >= 0, got {n_sims}")
        seeds = normalize_seeds(graph, seeds)
        rng = as_generator(seed)
        indptr, targets, probs = graph.out_csr
        n = graph.n
        thresholds = np.empty(n_sims * n, dtype=np.float64)
        accumulated = np.empty(n_sims * n, dtype=np.float64)
        touched_before = np.zeros(n_sims * n, dtype=bool)
        starts, starts_indptr = tile_starts(seeds, n_sims)

        backend = resolve_backend(kernel, graph)
        if backend.kernels is not None:
            return run_labeled_forward_bfs(
                n,
                starts,
                starts_indptr,
                scratch=scratch,
                expand=lt_forward_expander(
                    backend, indptr, targets, probs, n, rng,
                    thresholds, accumulated, touched_before,
                ),
            )

        def accumulate_and_cross(frontier_sids, frontier_nodes):
            positions, owners, _ = expand_labeled_frontier(
                indptr, frontier_sids, frontier_nodes
            )
            if len(positions) == 0:
                return positions
            keys = owners * n + targets[positions]
            touched = np.unique(keys)
            fresh = touched[~touched_before[touched]]
            accumulated[fresh] = 0.0
            thresholds[fresh] = rng.random(len(fresh))
            touched_before[fresh] = True
            np.add.at(accumulated, keys, probs[positions])
            return touched[accumulated[touched] >= thresholds[touched]]

        return run_labeled_forward_bfs(
            n, starts, starts_indptr, accumulate_and_cross, scratch
        )

    def reverse_sample(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """Reverse random walk: each visited node keeps <= 1 in-edge.

        Under LT the reverse-reachable structure is a union of backward
        walks, one step per visited node, which is why LT sampling is
        cheaper than IC in practice (paper Section 6.3).
        """
        self._ensure_valid(graph)
        indptr, sources, probs = graph.in_csr
        visited = out
        roots = np.asarray(roots, dtype=np.int64)
        visited[roots] = True
        collected = list(int(r) for r in roots)
        stack = list(collected)
        while stack:
            v = stack.pop()
            start, end = int(indptr[v]), int(indptr[v + 1])
            if start == end:
                continue
            x = rng.random()
            acc = 0.0
            for pos in range(start, end):
                acc += float(probs[pos])  # float64 under compact storage
                if x < acc:
                    u = int(sources[pos])
                    if not visited[u]:
                        visited[u] = True
                        collected.append(u)
                        stack.append(u)
                    break
        result = np.asarray(collected, dtype=np.int64)
        visited[result] = False  # restore the pooled scratch buffer
        return result

    def reverse_sample_batch(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        roots_indptr: np.ndarray,
        rng: np.random.Generator,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ):
        """Batched reverse random walks via one searchsorted per level.

        Every visited ``(sample, node)`` pair keeps at most one incoming
        edge.  The per-node prefix scan of the single-sample walk becomes a
        binary search: with ``cum`` the global running sum of the in-CSR
        probabilities, node ``v``'s chosen edge for a uniform draw ``x`` is
        the first in-CSR position whose within-row cumulative probability
        exceeds ``x`` — i.e. ``searchsorted(cum, cum_before_row(v) + x)`` —
        and one call resolves the whole frontier.  A draw past the row's
        total probability keeps no edge, exactly like the scalar scan.
        """
        self._ensure_valid(graph)
        indptr, sources, probs = graph.in_csr
        n = graph.n
        cum = self._cumulative_in_probs(graph, probs)

        backend = resolve_backend(kernel, graph)
        if backend.kernels is not None:
            return run_labeled_reverse_bfs(
                n,
                roots,
                roots_indptr,
                scratch=scratch,
                expand=lt_walk_expander(backend, indptr, sources, cum, n, rng),
            )

        def keep_one_in_edge(frontier_sids, frontier_nodes):
            starts = indptr[frontier_nodes]
            base = np.where(starts > 0, cum[starts - 1], 0.0)
            draws = rng.random(len(frontier_nodes))
            chosen = np.searchsorted(cum, base + draws, side="right")
            kept = chosen < indptr[frontier_nodes + 1]
            return frontier_sids[kept] * n + sources[chosen[kept]]

        return run_labeled_reverse_bfs(
            n, roots, roots_indptr, keep_one_in_edge, scratch
        )
