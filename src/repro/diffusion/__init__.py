"""Diffusion substrate: IC and LT models, realizations, estimation."""

from repro.diffusion.base import DiffusionModel, normalize_seeds
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold, check_lt_validity
from repro.diffusion.realization import (
    ICRealization,
    LTRealization,
    Realization,
    batch_reachable_from,
)
from repro.diffusion.montecarlo import (
    DEFAULT_MC_BATCH_SIZE,
    CRNSpreadEvaluator,
    MonteCarloEstimate,
    estimate_activation_probabilities,
    estimate_spread,
    estimate_spreads_many,
    estimate_truncated_spread,
)
from repro.diffusion.topic import (
    TopicAwareGraph,
    TopicAwareIC,
    TopicMixture,
    effective_probability_bounds,
)
from repro.diffusion.exact import (
    enumerate_ic_realizations,
    enumerate_lt_realizations,
    enumerate_realizations,
    exact_expected_spread,
    exact_expected_truncated_spread,
)

__all__ = [
    "DiffusionModel",
    "normalize_seeds",
    "IndependentCascade",
    "LinearThreshold",
    "check_lt_validity",
    "Realization",
    "ICRealization",
    "batch_reachable_from",
    "LTRealization",
    "TopicAwareGraph",
    "TopicAwareIC",
    "TopicMixture",
    "effective_probability_bounds",
    "MonteCarloEstimate",
    "DEFAULT_MC_BATCH_SIZE",
    "CRNSpreadEvaluator",
    "estimate_spread",
    "estimate_spreads_many",
    "estimate_truncated_spread",
    "estimate_activation_probabilities",
    "enumerate_ic_realizations",
    "enumerate_lt_realizations",
    "enumerate_realizations",
    "exact_expected_spread",
    "exact_expected_truncated_spread",
]
