"""The diffusion-model interface.

A :class:`DiffusionModel` encapsulates everything the rest of the library
needs to know about a propagation process:

* forward: sample the set of nodes a seed set activates
  (:meth:`DiffusionModel.simulate`, batched as
  :meth:`DiffusionModel.simulate_batch`), or sample a whole live-edge
  :class:`~repro.diffusion.realization.Realization` up front
  (:meth:`DiffusionModel.sample_realization`) so the same world can be
  replayed deterministically — the adaptive session depends on this;
* reverse: perform one stochastic reverse BFS from a set of root nodes
  (:meth:`DiffusionModel.reverse_sample`), the primitive underlying both
  single-root RR sets and the paper's multi-root mRR sets.

Both batched directions run on the same :func:`run_labeled_bfs` driver: the
frontiers of all samples advance in lockstep over one flat visitation
bitset, and only the per-level edge-selection rule (a closure over the
forward or reverse CSR) differs between models and directions.

The two concrete models are :class:`~repro.diffusion.ic.IndependentCascade`
and :class:`~repro.diffusion.lt.LinearThreshold`; the paper's algorithms are
model-agnostic given these primitives (Section 2: "our algorithms can be
easily extended to other propagation models").
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph, gather_csr_rows
from repro.utils.rng import RandomSource, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.diffusion.realization import Realization


def normalize_seeds(graph: DiGraph, seeds: Sequence[int]) -> np.ndarray:
    """Validate and deduplicate a seed sequence into a sorted int64 array.

    Every forward entry point (``simulate``, ``simulate_batch``, the
    Monte-Carlo estimators, the CRN evaluator) funnels seed ids through this
    helper so that out-of-range ids raise
    :class:`~repro.errors.NodeNotFoundError` identically across IC, LT, and
    the topic-aware model.  Duplicate ids are silently deduplicated: seeding
    a node twice is indistinguishable from seeding it once under every model
    in this library (activation is idempotent).
    """
    seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
    if len(seeds):
        if seeds.min() < 0 or seeds.max() >= graph.n:
            offender = seeds[(seeds < 0) | (seeds >= graph.n)][0]
            graph._check_node(int(offender))
        seeds = np.unique(seeds)
    return seeds


class DiffusionModel(abc.ABC):
    """Abstract stochastic diffusion process over a :class:`DiGraph`."""

    #: Short identifier used in reports ("IC", "LT").
    name: str = "abstract"

    @abc.abstractmethod
    def sample_realization(
        self, graph: DiGraph, seed: RandomSource = None
    ) -> Realization:
        """Sample a full live-edge realization of ``graph``.

        The returned object supports deterministic replay: forward spreads
        computed from it are pure functions of the seeds.
        """

    @abc.abstractmethod
    def reverse_sample(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """One stochastic reverse BFS from ``roots``.

        Parameters
        ----------
        graph:
            The (residual) graph to sample in.
        roots:
            Array of distinct root node ids (size 1 recovers a vanilla
            RR set; size ``k`` gives a multi-root mRR set).
        rng:
            Generator supplying the edge coin flips.
        out:
            A caller-provided boolean scratch array of length ``graph.n``
            that is **all False on entry**; the implementation marks visited
            nodes True and must reset it to all False before returning
            (the sampler pools this buffer across millions of calls).

        Returns
        -------
        numpy.ndarray
            The visited node ids (including the roots themselves).
        """

    def reverse_sample_batch(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        roots_indptr: np.ndarray,
        rng: np.random.Generator,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate a whole batch of reverse samples in one call.

        Parameters
        ----------
        graph:
            The (residual) graph to sample in.
        roots:
            Flat int64 array concatenating every sample's (distinct) root
            node ids.
        roots_indptr:
            Int64 array of length ``batch + 1`` delimiting each sample's
            roots inside ``roots`` (CSR layout, starting at 0).
        rng:
            Generator supplying the edge coin flips.
        scratch:
            Optional pooled all-False boolean buffer of length at least
            ``batch * graph.n``; restored to all False before returning
            (see :func:`run_labeled_reverse_bfs`).  ``None`` allocates a
            fresh bitset.
        kernel:
            ``repro.kernels`` backend knob (``"auto"``, ``"numpy"``,
            ``"numba"``, ``"python"``); outputs are bit-identical across
            backends.  The scalar-loop base implementation ignores it.

        Returns
        -------
        (members, indptr):
            CSR-packed results: ``members`` concatenates the visited node
            ids of every sample (roots included, order unspecified) and
            ``indptr`` (length ``batch + 1``) delimits them.

        The base implementation loops :meth:`reverse_sample` once per
        sample and is the distributional reference; the concrete models
        override it with a single multi-source labeled reverse BFS that
        expands all samples' frontiers level by level and flips every
        needed edge coin of a level in one vectorized draw.
        """
        roots = np.asarray(roots, dtype=np.int64)
        roots_indptr = np.asarray(roots_indptr, dtype=np.int64)
        # The scalar loop only needs n of the pooled batch*n bits; each
        # reverse_sample call restores its slice, honoring the contract.
        out = (
            scratch[: graph.n]
            if scratch is not None
            else np.zeros(graph.n, dtype=bool)
        )
        pieces = []
        sizes = np.empty(len(roots_indptr) - 1, dtype=np.int64)
        for i in range(len(roots_indptr) - 1):
            sample = self.reverse_sample(
                graph, roots[roots_indptr[i] : roots_indptr[i + 1]], rng, out
            )
            pieces.append(sample)
            sizes[i] = len(sample)
        indptr = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        members = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return members, indptr

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> np.ndarray:
        """Sample one cascade from ``seeds``; returns a boolean active mask.

        Default implementation materializes a realization and walks it; the
        concrete models override with direct on-the-fly sampling which skips
        the realization allocation.
        """
        seeds = normalize_seeds(graph, seeds)
        realization = self.sample_realization(graph, seed)
        return realization.reachable_from(seeds)

    def simulate_batch(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        n_sims: int,
        seed: RandomSource = None,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``n_sims`` independent cascades from one seed set.

        The forward twin of :meth:`reverse_sample_batch`: every simulation
        starts from the same (validated, deduplicated) ``seeds`` and draws
        its own cascade noise.

        Parameters
        ----------
        graph:
            The graph to cascade over.
        seeds:
            Seed node ids; out-of-range ids raise
            :class:`~repro.errors.NodeNotFoundError`, duplicates are
            deduplicated (see :func:`normalize_seeds`).
        n_sims:
            Number of independent cascades to sample (>= 0).
        seed:
            Random source supplying the cascade noise.
        scratch:
            Optional pooled all-False boolean buffer of length at least
            ``n_sims * graph.n``; restored to all False before returning.
            ``None`` allocates a fresh bitset.
        kernel:
            ``repro.kernels`` backend knob (``"auto"``, ``"numpy"``,
            ``"numba"``, ``"python"``); outputs are bit-identical across
            backends.  The scalar-loop base implementation ignores it.

        Returns
        -------
        (members, indptr):
            CSR-packed results: ``members`` concatenates the activated node
            ids of every simulation (seeds included) and ``indptr`` (length
            ``n_sims + 1``) delimits them, so per-simulation spreads are
            ``np.diff(indptr)`` and per-node activation counts are
            ``np.bincount(members, minlength=graph.n)``.

        The base implementation loops :meth:`simulate` once per cascade and
        is the distributional reference; the concrete models override it
        with a single multi-cascade labeled forward BFS that expands all
        simulations' frontiers level by level (one vectorized noise draw
        per level).
        """
        if n_sims < 0:
            raise ConfigurationError(f"n_sims must be >= 0, got {n_sims}")
        seeds = normalize_seeds(graph, seeds)
        rng = as_generator(seed)
        pieces = []
        sizes = np.empty(n_sims, dtype=np.int64)
        for i in range(n_sims):
            active = self.simulate(graph, seeds, rng)
            nodes = np.flatnonzero(active)
            pieces.append(nodes)
            sizes[i] = len(nodes)
        indptr = np.zeros(n_sims + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        members = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return members, indptr

    def spread(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> int:
        """Sample one cascade and return its size ``I(S)``."""
        return int(self.simulate(graph, seeds, seed).sum())

    # Convenience used by a few call sites and the tests.
    def _rng(self, seed: RandomSource) -> np.random.Generator:
        return as_generator(seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def run_labeled_bfs(
    n: int,
    starts: np.ndarray,
    starts_indptr: np.ndarray,
    propose=None,
    scratch: np.ndarray = None,
    expand=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shared driver of the vectorized multi-sample labeled BFS.

    All samples advance in lockstep: the frontier is a pair of parallel
    arrays ``(sample_ids, nodes)`` and visitation is one flat bitset keyed
    ``sample_id * n + node`` (a packed ``(batch, n)`` matrix).  Per level,
    ``propose(frontier_sids, frontier_nodes)`` returns the candidate
    expansion as an array of such keys — it may freely contain duplicates
    and already-visited pairs; the driver filters, dedups, marks, and
    collects.  The driver is direction-agnostic: only the per-level
    edge-selection rule differs between models and directions (reverse IC
    flips every in-edge coin, forward IC every frontier out-edge coin,
    reverse LT keeps at most one in-edge, forward LT accumulates weights
    against per-``(sample, node)`` thresholds), which is exactly what the
    callback encapsulates.

    ``expand(visited, frontier_sids, frontier_nodes)`` is the fused
    alternative to ``propose`` used by the compiled kernel backends
    (:mod:`repro.kernels`): it applies the per-level rule, filters, dedups,
    marks ``visited`` in place, and returns the level's fresh keys
    **sorted ascending** — exactly the keys (in exactly the order) the
    ``propose`` route's filter/``np.unique``/mark sequence produces, so
    both routes yield bit-identical results.  Exactly one of ``propose``
    and ``expand`` must be given.

    ``scratch`` is an optional caller-pooled boolean buffer of length at
    least ``batch * n`` that is all False on entry; it is restored to all
    False before returning (only the visited keys are touched — the
    batched analogue of :meth:`DiffusionModel.reverse_sample`'s pooled
    ``out``), so repeated engine calls on large graphs avoid allocating
    and zeroing a fresh bitset each time.
    """
    if (propose is None) == (expand is None):
        raise ConfigurationError(
            "run_labeled_bfs needs exactly one of propose= or expand="
        )
    starts = np.asarray(starts, dtype=np.int64)
    starts_indptr = np.asarray(starts_indptr, dtype=np.int64)
    batch = len(starts_indptr) - 1
    start_sids = np.repeat(
        np.arange(batch, dtype=np.int64), np.diff(starts_indptr)
    )
    visited = scratch if scratch is not None else np.zeros(batch * n, dtype=bool)
    visited[start_sids * n + starts] = True
    collected_sids = [start_sids]
    collected_nodes = [starts]
    frontier_sids, frontier_nodes = start_sids, starts
    while len(frontier_nodes):
        if expand is not None:
            keys = expand(visited, frontier_sids, frontier_nodes)
            if len(keys) == 0:
                break
        else:
            keys = propose(frontier_sids, frontier_nodes)
            if len(keys):
                keys = keys[~visited[keys]]  # filter first: unique sorts the rest
            if len(keys) == 0:
                break
            keys = np.unique(keys)  # dedup within the level
            visited[keys] = True
        frontier_sids, frontier_nodes = np.divmod(keys, n)
        collected_sids.append(frontier_sids)
        collected_nodes.append(frontier_nodes)
    all_sids = np.concatenate(collected_sids)
    all_nodes = np.concatenate(collected_nodes)
    if scratch is not None:
        visited[all_sids * n + all_nodes] = False  # restore the pooled buffer
    return pack_by_sample(all_sids, all_nodes, batch)


#: The reverse-direction entry point: each sample's start set is its (m)RR
#: roots and ``propose`` walks the in-CSR.  Alias of :func:`run_labeled_bfs`,
#: kept under the established name used by ``reverse_sample_batch``.
run_labeled_reverse_bfs = run_labeled_bfs

#: The forward-direction entry point: each sample's start set is its seed
#: set and ``propose`` walks the out-CSR.  Alias of :func:`run_labeled_bfs`.
run_labeled_forward_bfs = run_labeled_bfs


def expand_labeled_frontier(
    indptr: np.ndarray,
    frontier_sids: np.ndarray,
    frontier_nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR positions and owning sample ids of a labeled frontier's edges.

    The shared prologue of every ``propose`` closure: gathers the CSR
    entries of all frontier nodes and labels each entry with the sample id
    that proposed it.  Returns ``(positions, owners, degrees)`` —
    ``positions`` indexes the CSR value arrays, ``owners`` is the parallel
    sample-id array, and ``degrees`` (per frontier node) lets closures that
    also need the proposing node run one more ``np.repeat``.
    """
    positions = gather_csr_rows(indptr, frontier_nodes)
    degrees = indptr[frontier_nodes + 1] - indptr[frontier_nodes]
    owners = np.repeat(frontier_sids, degrees)
    return positions, owners, degrees


def tile_starts(
    seeds: np.ndarray, n_sims: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR start sets for ``n_sims`` samples sharing one seed array.

    The common prologue of the forward ``simulate_batch`` overrides: every
    simulation's labeled BFS starts from the same seeds.
    """
    starts = np.tile(np.asarray(seeds, dtype=np.int64), n_sims)
    starts_indptr = np.arange(n_sims + 1, dtype=np.int64) * len(seeds)
    return starts, starts_indptr


def pack_by_sample(
    sample_ids: np.ndarray, nodes: np.ndarray, batch: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group ``(sample_ids, nodes)`` pairs into a CSR batch result.

    Shared epilogue of the vectorized ``reverse_sample_batch``
    implementations: a stable sort by sample id turns the level-ordered
    ``(sid, node)`` stream of the labeled BFS into the packed
    ``(members, indptr)`` layout that :meth:`CoverageIndex.add_batch`
    consumes directly.
    """
    order = np.argsort(sample_ids, kind="stable")
    members = nodes[order]
    counts = np.bincount(sample_ids, minlength=batch)
    indptr = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr
