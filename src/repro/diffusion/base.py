"""The diffusion-model interface.

A :class:`DiffusionModel` encapsulates everything the rest of the library
needs to know about a propagation process:

* forward: sample the set of nodes a seed set activates
  (:meth:`DiffusionModel.simulate`), or sample a whole live-edge
  :class:`~repro.diffusion.realization.Realization` up front
  (:meth:`DiffusionModel.sample_realization`) so the same world can be
  replayed deterministically — the adaptive session depends on this;
* reverse: perform one stochastic reverse BFS from a set of root nodes
  (:meth:`DiffusionModel.reverse_sample`), the primitive underlying both
  single-root RR sets and the paper's multi-root mRR sets.

The two concrete models are :class:`~repro.diffusion.ic.IndependentCascade`
and :class:`~repro.diffusion.lt.LinearThreshold`; the paper's algorithms are
model-agnostic given these primitives (Section 2: "our algorithms can be
easily extended to other propagation models").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.diffusion.realization import Realization


class DiffusionModel(abc.ABC):
    """Abstract stochastic diffusion process over a :class:`DiGraph`."""

    #: Short identifier used in reports ("IC", "LT").
    name: str = "abstract"

    @abc.abstractmethod
    def sample_realization(
        self, graph: DiGraph, seed: RandomSource = None
    ) -> "Realization":
        """Sample a full live-edge realization of ``graph``.

        The returned object supports deterministic replay: forward spreads
        computed from it are pure functions of the seeds.
        """

    @abc.abstractmethod
    def reverse_sample(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """One stochastic reverse BFS from ``roots``.

        Parameters
        ----------
        graph:
            The (residual) graph to sample in.
        roots:
            Array of distinct root node ids (size 1 recovers a vanilla
            RR set; size ``k`` gives a multi-root mRR set).
        rng:
            Generator supplying the edge coin flips.
        out:
            A caller-provided boolean scratch array of length ``graph.n``
            that is **all False on entry**; the implementation marks visited
            nodes True and must reset it to all False before returning
            (the sampler pools this buffer across millions of calls).

        Returns
        -------
        numpy.ndarray
            The visited node ids (including the roots themselves).
        """

    def reverse_sample_batch(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        roots_indptr: np.ndarray,
        rng: np.random.Generator,
        scratch: np.ndarray = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Generate a whole batch of reverse samples in one call.

        Parameters
        ----------
        graph:
            The (residual) graph to sample in.
        roots:
            Flat int64 array concatenating every sample's (distinct) root
            node ids.
        roots_indptr:
            Int64 array of length ``batch + 1`` delimiting each sample's
            roots inside ``roots`` (CSR layout, starting at 0).
        rng:
            Generator supplying the edge coin flips.
        scratch:
            Optional pooled all-False boolean buffer of length at least
            ``batch * graph.n``; restored to all False before returning
            (see :func:`run_labeled_reverse_bfs`).  ``None`` allocates a
            fresh bitset.

        Returns
        -------
        (members, indptr):
            CSR-packed results: ``members`` concatenates the visited node
            ids of every sample (roots included, order unspecified) and
            ``indptr`` (length ``batch + 1``) delimits them.

        The base implementation loops :meth:`reverse_sample` once per
        sample and is the distributional reference; the concrete models
        override it with a single multi-source labeled reverse BFS that
        expands all samples' frontiers level by level and flips every
        needed edge coin of a level in one vectorized draw.
        """
        roots = np.asarray(roots, dtype=np.int64)
        roots_indptr = np.asarray(roots_indptr, dtype=np.int64)
        # The scalar loop only needs n of the pooled batch*n bits; each
        # reverse_sample call restores its slice, honoring the contract.
        out = (
            scratch[: graph.n]
            if scratch is not None
            else np.zeros(graph.n, dtype=bool)
        )
        pieces = []
        sizes = np.empty(len(roots_indptr) - 1, dtype=np.int64)
        for i in range(len(roots_indptr) - 1):
            sample = self.reverse_sample(
                graph, roots[roots_indptr[i] : roots_indptr[i + 1]], rng, out
            )
            pieces.append(sample)
            sizes[i] = len(sample)
        indptr = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        members = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return members, indptr

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> np.ndarray:
        """Sample one cascade from ``seeds``; returns a boolean active mask.

        Default implementation materializes a realization and walks it; the
        concrete models override with direct on-the-fly sampling which skips
        the realization allocation.
        """
        realization = self.sample_realization(graph, seed)
        return realization.reachable_from(seeds)

    def spread(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> int:
        """Sample one cascade and return its size ``I(S)``."""
        return int(self.simulate(graph, seeds, seed).sum())

    # Convenience used by a few call sites and the tests.
    def _rng(self, seed: RandomSource) -> np.random.Generator:
        return as_generator(seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def run_labeled_reverse_bfs(
    n: int,
    roots: np.ndarray,
    roots_indptr: np.ndarray,
    propose,
    scratch: np.ndarray = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Shared driver of the vectorized multi-sample reverse BFS.

    All samples advance in lockstep: the frontier is a pair of parallel
    arrays ``(sample_ids, nodes)`` and visitation is one flat bitset keyed
    ``sample_id * n + node`` (a packed ``(batch, n)`` matrix).  Per level,
    ``propose(frontier_sids, frontier_nodes)`` returns the candidate
    expansion as an array of such keys — it may freely contain duplicates
    and already-visited pairs; the driver filters, dedups, marks, and
    collects.  Only the per-level edge-selection rule differs between
    models (IC flips every in-edge coin; LT keeps at most one in-edge),
    which is exactly what the callback encapsulates.

    ``scratch`` is an optional caller-pooled boolean buffer of length at
    least ``batch * n`` that is all False on entry; it is restored to all
    False before returning (only the visited keys are touched — the
    batched analogue of :meth:`DiffusionModel.reverse_sample`'s pooled
    ``out``), so repeated engine calls on large graphs avoid allocating
    and zeroing a fresh bitset each time.
    """
    roots = np.asarray(roots, dtype=np.int64)
    roots_indptr = np.asarray(roots_indptr, dtype=np.int64)
    batch = len(roots_indptr) - 1
    root_sids = np.repeat(
        np.arange(batch, dtype=np.int64), np.diff(roots_indptr)
    )
    visited = scratch if scratch is not None else np.zeros(batch * n, dtype=bool)
    visited[root_sids * n + roots] = True
    collected_sids = [root_sids]
    collected_nodes = [roots]
    frontier_sids, frontier_nodes = root_sids, roots
    while len(frontier_nodes):
        keys = propose(frontier_sids, frontier_nodes)
        if len(keys):
            keys = keys[~visited[keys]]  # filter first: unique sorts the rest
        if len(keys) == 0:
            break
        keys = np.unique(keys)  # dedup within the level
        visited[keys] = True
        frontier_sids, frontier_nodes = np.divmod(keys, n)
        collected_sids.append(frontier_sids)
        collected_nodes.append(frontier_nodes)
    all_sids = np.concatenate(collected_sids)
    all_nodes = np.concatenate(collected_nodes)
    if scratch is not None:
        visited[all_sids * n + all_nodes] = False  # restore the pooled buffer
    return pack_by_sample(all_sids, all_nodes, batch)


def pack_by_sample(
    sample_ids: np.ndarray, nodes: np.ndarray, batch: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Group ``(sample_ids, nodes)`` pairs into a CSR batch result.

    Shared epilogue of the vectorized ``reverse_sample_batch``
    implementations: a stable sort by sample id turns the level-ordered
    ``(sid, node)`` stream of the labeled BFS into the packed
    ``(members, indptr)`` layout that :meth:`CoverageIndex.add_batch`
    consumes directly.
    """
    order = np.argsort(sample_ids, kind="stable")
    members = nodes[order]
    counts = np.bincount(sample_ids, minlength=batch)
    indptr = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr
