"""The diffusion-model interface.

A :class:`DiffusionModel` encapsulates everything the rest of the library
needs to know about a propagation process:

* forward: sample the set of nodes a seed set activates
  (:meth:`DiffusionModel.simulate`), or sample a whole live-edge
  :class:`~repro.diffusion.realization.Realization` up front
  (:meth:`DiffusionModel.sample_realization`) so the same world can be
  replayed deterministically — the adaptive session depends on this;
* reverse: perform one stochastic reverse BFS from a set of root nodes
  (:meth:`DiffusionModel.reverse_sample`), the primitive underlying both
  single-root RR sets and the paper's multi-root mRR sets.

The two concrete models are :class:`~repro.diffusion.ic.IndependentCascade`
and :class:`~repro.diffusion.lt.LinearThreshold`; the paper's algorithms are
model-agnostic given these primitives (Section 2: "our algorithms can be
easily extended to other propagation models").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import RandomSource, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.diffusion.realization import Realization


class DiffusionModel(abc.ABC):
    """Abstract stochastic diffusion process over a :class:`DiGraph`."""

    #: Short identifier used in reports ("IC", "LT").
    name: str = "abstract"

    @abc.abstractmethod
    def sample_realization(
        self, graph: DiGraph, seed: RandomSource = None
    ) -> "Realization":
        """Sample a full live-edge realization of ``graph``.

        The returned object supports deterministic replay: forward spreads
        computed from it are pure functions of the seeds.
        """

    @abc.abstractmethod
    def reverse_sample(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """One stochastic reverse BFS from ``roots``.

        Parameters
        ----------
        graph:
            The (residual) graph to sample in.
        roots:
            Array of distinct root node ids (size 1 recovers a vanilla
            RR set; size ``k`` gives a multi-root mRR set).
        rng:
            Generator supplying the edge coin flips.
        out:
            A caller-provided boolean scratch array of length ``graph.n``
            that is **all False on entry**; the implementation marks visited
            nodes True and must reset it to all False before returning
            (the sampler pools this buffer across millions of calls).

        Returns
        -------
        numpy.ndarray
            The visited node ids (including the roots themselves).
        """

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> np.ndarray:
        """Sample one cascade from ``seeds``; returns a boolean active mask.

        Default implementation materializes a realization and walks it; the
        concrete models override with direct on-the-fly sampling which skips
        the realization allocation.
        """
        realization = self.sample_realization(graph, seed)
        return realization.reachable_from(seeds)

    def spread(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> int:
        """Sample one cascade and return its size ``I(S)``."""
        return int(self.simulate(graph, seeds, seed).sum())

    # Convenience used by a few call sites and the tests.
    def _rng(self, seed: RandomSource) -> np.random.Generator:
        return as_generator(seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
