"""The independent cascade (IC) model (Kempe et al. 2003).

Each edge ``e`` fires independently with its probability ``p(e)``.  Forward
simulation flips each out-edge coin the first time its source activates;
reverse sampling flips each in-edge coin the first time its target is
visited.  Both directions are frontier-vectorized with
:func:`repro.graph.digraph.gather_csr_rows`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diffusion.base import (
    DiffusionModel,
    expand_labeled_frontier,
    normalize_seeds,
    run_labeled_forward_bfs,
    run_labeled_reverse_bfs,
    tile_starts,
)
from repro.diffusion.realization import ICRealization
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph, gather_csr_rows
from repro.kernels import resolve_backend
from repro.kernels.dispatch import ic_coin_expander
from repro.utils.rng import RandomSource, as_generator


class IndependentCascade(DiffusionModel):
    """Stateless IC model; all per-run state lives in the arguments."""

    name = "IC"

    def sample_realization(
        self, graph: DiGraph, seed: RandomSource = None
    ) -> ICRealization:
        """Flip every edge coin up front: ``live[e] ~ Bernoulli(p(e))``."""
        rng = as_generator(seed)
        _, _, probs = graph.out_csr
        live = rng.random(graph.m) < probs
        return ICRealization(graph, live)

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        seed: RandomSource = None,
    ) -> np.ndarray:
        """Forward cascade with on-the-fly coin flips.

        Equivalent in distribution to sampling a realization and walking it,
        but touches only the edges incident to activated nodes.
        """
        rng = as_generator(seed)
        indptr, targets, probs = graph.out_csr
        active = np.zeros(graph.n, dtype=bool)
        active[normalize_seeds(graph, seeds)] = True
        frontier = np.flatnonzero(active)
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            if len(positions) == 0:
                break
            fired = rng.random(len(positions)) < probs[positions]
            candidates = targets[positions[fired]]
            fresh = np.unique(candidates[~active[candidates]])
            active[fresh] = True
            frontier = fresh
        return active

    def simulate_batch(
        self,
        graph: DiGraph,
        seeds,
        n_sims: int,
        seed: RandomSource = None,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ):
        """One multi-cascade labeled forward BFS sampling ``n_sims`` runs.

        The forward twin of :meth:`reverse_sample_batch`: the shared
        :func:`~repro.diffusion.base.run_labeled_bfs` driver advances every
        simulation's frontier in lockstep, and this model's per-level rule
        flips the out-edge coins of all frontiers in a single vectorized
        draw.  Distributionally identical to ``n_sims`` independent
        :meth:`simulate` calls — each ``(simulation, out-edge)`` coin is
        still flipped at most once, when its source first activates within
        that simulation.  ``kernel`` selects the per-level backend (see
        :mod:`repro.kernels`); outputs are bit-identical across backends.
        """
        if n_sims < 0:
            raise ConfigurationError(f"n_sims must be >= 0, got {n_sims}")
        seeds = normalize_seeds(graph, seeds)
        rng = as_generator(seed)
        indptr, targets, probs = graph.out_csr
        n = graph.n
        starts, starts_indptr = tile_starts(seeds, n_sims)

        backend = resolve_backend(kernel, graph)
        if backend.kernels is not None:
            return run_labeled_forward_bfs(
                n,
                starts,
                starts_indptr,
                scratch=scratch,
                expand=ic_coin_expander(
                    backend, "ic_forward", indptr, targets, probs, n, rng
                ),
            )

        def flip_out_edge_coins(frontier_sids, frontier_nodes):
            positions, owners, _ = expand_labeled_frontier(
                indptr, frontier_sids, frontier_nodes
            )
            if len(positions) == 0:
                return positions
            fired = rng.random(len(positions)) < probs[positions]
            return owners[fired] * n + targets[positions[fired]]

        return run_labeled_forward_bfs(
            n, starts, starts_indptr, flip_out_edge_coins, scratch
        )

    def reverse_sample(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """Reverse BFS from ``roots``, flipping each in-edge coin once.

        This is the (m)RR-set primitive: the visited set is exactly the set
        of nodes that reach some root in a random realization, because each
        edge's coin is flipped at most once (when its target is first
        expanded) and the BFS explores all live in-edges.
        """
        indptr, sources, probs = graph.in_csr
        visited = out
        roots = np.asarray(roots, dtype=np.int64)
        visited[roots] = True
        collected = [roots]
        frontier = roots
        while len(frontier):
            positions = gather_csr_rows(indptr, frontier)
            if len(positions) == 0:
                break
            fired = rng.random(len(positions)) < probs[positions]
            candidates = sources[positions[fired]]
            fresh = np.unique(candidates[~visited[candidates]])
            if len(fresh) == 0:
                break
            visited[fresh] = True
            collected.append(fresh)
            frontier = fresh
        result = np.concatenate(collected) if len(collected) > 1 else roots.copy()
        visited[result] = False  # restore the pooled scratch buffer
        return result

    def reverse_sample_batch(
        self,
        graph: DiGraph,
        roots: np.ndarray,
        roots_indptr: np.ndarray,
        rng: np.random.Generator,
        scratch: np.ndarray = None,
        kernel: str = "auto",
    ):
        """One multi-source labeled reverse BFS generating a whole batch.

        The shared :func:`~repro.diffusion.base.run_labeled_reverse_bfs`
        driver advances all samples in lockstep; this model's per-level
        rule flips the edge coins for every sample's frontier in a single
        vectorized draw.  Distributionally identical to ``batch``
        independent :meth:`reverse_sample` calls — each
        ``(sample, in-edge)`` coin is still flipped at most once, when its
        target is first expanded within that sample.  ``kernel`` selects
        the per-level backend (see :mod:`repro.kernels`); outputs are
        bit-identical across backends.
        """
        indptr, sources, probs = graph.in_csr
        n = graph.n

        backend = resolve_backend(kernel, graph)
        if backend.kernels is not None:
            return run_labeled_reverse_bfs(
                n,
                roots,
                roots_indptr,
                scratch=scratch,
                expand=ic_coin_expander(
                    backend, "ic_reverse", indptr, sources, probs, n, rng
                ),
            )

        def flip_in_edge_coins(frontier_sids, frontier_nodes):
            positions, owners, _ = expand_labeled_frontier(
                indptr, frontier_sids, frontier_nodes
            )
            if len(positions) == 0:
                return positions
            fired = rng.random(len(positions)) < probs[positions]
            return owners[fired] * n + sources[positions[fired]]

        return run_labeled_reverse_bfs(
            n, roots, roots_indptr, flip_in_edge_coins, scratch
        )
