"""Execution-policy runtime: the one object every engine layer shares.

:class:`~repro.runtime.context.ExecutionContext` owns all engine policy —
batch sizes and tolerances, pool-reuse, the worker count together with the
lazily created :class:`~repro.parallel.runtime.ParallelRuntime`, the
``SeedSequence``-rooted RNG factory, the compact-graph-storage policy, and
the aggregated diagnostics sink.  Construct one at the top of a run (or let
:meth:`repro.experiments.config.ExperimentConfig.to_context` do it) and
pass it down as the single ``context=`` argument every engine accepts.
"""

from repro.runtime.context import (
    UNSET,
    ExecutionContext,
    default_context,
    resolve_context,
)
from repro.runtime.planner import (
    CalibrationEntry,
    CalibrationTable,
    GraphStats,
    PlanDecision,
    plan,
)

__all__ = [
    "ExecutionContext",
    "default_context",
    "resolve_context",
    "UNSET",
    "CalibrationEntry",
    "CalibrationTable",
    "GraphStats",
    "PlanDecision",
    "plan",
]
