"""The calibration-table-driven execution planner.

Picks the :class:`~repro.runtime.context.ExecutionContext` performance
knobs — ``sample_batch_size``, ``mc_batch_size``, ``jobs``,
``kernel_backend`` — from graph statistics (n, m, degree skew) and the
diffusion model, using **measured** calibration data when available and a
conservative static heuristic otherwise.  The same measure-then-choose-a-
plan discipline as cost-based query planning: the calibration sweep
(``examples/context_tuning.py --out calibration.json``) records seconds
per knob combination on fixture graphs, and planning reduces to a nearest-
fixture lookup plus an argmin over the recorded combinations.

Entry points::

    context = ExecutionContext.from_plan(graph, model,
                                         calibration="calibration.json")
    repro solve ... --plan auto --calibration calibration.json

The decision (source, reason, chosen knobs, matched fixture and distance)
is recorded in the context's diagnostics via ``note_plan()``, so a planned
run is always auditable.

Invalidation: calibration files carry :data:`CALIBRATION_VERSION`; a
version mismatch (stale schema), an unreadable file, an empty table, or no
fixture within :data:`DEFAULT_MAX_DISTANCE` in log-space all fall back to
the static heuristic — planning never fails a run.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

#: Schema version of calibration JSON files.  Bumped when the recorded
#: fields or their meaning change; stale files are ignored (with a reason
#: in the plan decision), never misread.
CALIBRATION_VERSION = 1

#: Maximum acceptable fixture distance in (ln n, ln m) space.  2.0 accepts
#: fixtures within roughly an order of magnitude in scale — beyond that,
#: measured timings say little about this graph and the heuristic is the
#: safer guide.
DEFAULT_MAX_DISTANCE = 2.0

#: Static-heuristic batch sizing: target roughly this many node-visits of
#: frontier working set per reverse-engine call, clamped to the calibrated
#: grid's extremes.
_HEURISTIC_BATCH_TARGET = 4_000_000
_HEURISTIC_BATCH_MIN = 64
_HEURISTIC_BATCH_MAX = 1024

#: Static-heuristic parallelism: workers only pay off once per-fill work
#: dwarfs the spawn + publish overhead, and only on genuinely multi-core
#: hosts.
_HEURISTIC_PARALLEL_EDGES = 200_000
_HEURISTIC_MIN_CPUS = 4
_HEURISTIC_MAX_JOBS = 4


@dataclass(frozen=True)
class GraphStats:
    """The planner's view of a graph: size, density, skew."""

    n: int
    m: int
    avg_degree: float
    degree_skew: float

    @classmethod
    def from_graph(cls, graph: Any) -> GraphStats:
        n = int(graph.n)
        m = int(graph.m)
        degrees = graph.out_degrees() + graph.in_degrees()
        mean = float(degrees.mean()) if n else 0.0
        skew = float(degrees.max() / mean) if n and mean > 0 else 1.0
        return cls(n=n, m=m, avg_degree=(m / n if n else 0.0), degree_skew=skew)


@dataclass(frozen=True)
class CalibrationEntry:
    """One measured knob combination on one fixture graph."""

    n: int
    m: int
    degree_skew: float
    model: str
    sample_batch_size: int
    mc_batch_size: Optional[int]
    jobs: Optional[int]
    kernel_backend: str
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "m": self.m,
            "degree_skew": self.degree_skew,
            "model": self.model,
            "sample_batch_size": self.sample_batch_size,
            "mc_batch_size": self.mc_batch_size,
            "jobs": self.jobs,
            "kernel_backend": self.kernel_backend,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class CalibrationTable:
    """A versioned collection of calibration measurements."""

    entries: tuple[CalibrationEntry, ...]
    version: int = CALIBRATION_VERSION

    @classmethod
    def from_dict(cls, payload: Any) -> CalibrationTable:
        if not isinstance(payload, dict):
            raise ValueError("calibration payload must be a JSON object")
        version = payload.get("version")
        if not isinstance(version, int):
            raise ValueError("calibration payload missing integer 'version'")
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ValueError("calibration 'entries' must be a list")
        entries: list[CalibrationEntry] = []
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise ValueError(f"calibration entry must be an object: {raw!r}")
            entries.append(
                CalibrationEntry(
                    n=int(raw["n"]),
                    m=int(raw["m"]),
                    degree_skew=float(raw.get("degree_skew", 1.0)),
                    model=str(raw["model"]),
                    sample_batch_size=int(raw["sample_batch_size"]),
                    mc_batch_size=(
                        None
                        if raw.get("mc_batch_size") is None
                        else int(raw["mc_batch_size"])
                    ),
                    jobs=(None if raw.get("jobs") is None else int(raw["jobs"])),
                    kernel_backend=str(raw.get("kernel_backend", "auto")),
                    seconds=float(raw["seconds"]),
                )
            )
        return cls(entries=tuple(entries), version=version)

    @classmethod
    def load(cls, path: Union[str, Path]) -> CalibrationTable:
        """Parse a calibration JSON file; raises on IO/shape problems."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(payload)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "entries": [entry.to_dict() for entry in self.entries],
        }


@dataclass(frozen=True)
class PlanDecision:
    """What the planner chose, and why."""

    source: str  # "calibration" | "heuristic"
    reason: str
    sample_batch_size: int
    mc_batch_size: Optional[int]
    jobs: Optional[int]
    kernel_backend: str
    #: (n, m) of the calibration fixture the knobs came from, if any.
    fixture: Optional[tuple[int, int]] = None
    #: Distance to that fixture in (ln n, ln m) space.
    distance: Optional[float] = None

    def knobs(self) -> dict[str, Any]:
        """The planned values as ``ExecutionContext`` constructor kwargs."""
        return {
            "sample_batch_size": self.sample_batch_size,
            "mc_batch_size": self.mc_batch_size,
            "jobs": self.jobs,
            "kernel_backend": self.kernel_backend,
        }


def model_name_of(model: Any) -> str:
    """Normalize a model argument to the calibration table's model label."""
    if isinstance(model, str):
        return model
    return str(getattr(model, "name", type(model).__name__))


def fixture_distance(stats: GraphStats, n: int, m: int) -> float:
    """Scale distance in (ln n, ln m) space — size ratios, not differences."""
    dn = math.log(max(stats.n, 1)) - math.log(max(n, 1))
    dm = math.log(max(stats.m, 1)) - math.log(max(m, 1))
    return math.hypot(dn, dm)


def static_plan(stats: GraphStats, model: Any, reason: str = "") -> PlanDecision:
    """The conservative fallback: safe defaults scaled by graph size.

    Batch size targets a bounded frontier working set (small graphs take
    the large batches, large graphs step down); parallelism engages only
    when the edge count makes per-fill work dwarf worker spawn overhead on
    a genuinely multi-core host; the kernel backend stays on ``auto``
    (compiled when importable, numpy otherwise — always bit-identical).
    """
    batch = _HEURISTIC_BATCH_TARGET // max(stats.n, 1)
    batch = max(_HEURISTIC_BATCH_MIN, min(_HEURISTIC_BATCH_MAX, batch))
    cpus = os.cpu_count() or 1
    jobs: Optional[int] = None
    if stats.m >= _HEURISTIC_PARALLEL_EDGES and cpus >= _HEURISTIC_MIN_CPUS:
        jobs = min(_HEURISTIC_MAX_JOBS, cpus)
    detail = reason or "no calibration data"
    return PlanDecision(
        source="heuristic",
        reason=f"static heuristic ({detail})",
        sample_batch_size=int(batch),
        mc_batch_size=None,
        jobs=jobs,
        kernel_backend="auto",
    )


def plan_from_calibration(
    table: CalibrationTable,
    stats: GraphStats,
    model: Any,
    max_distance: float = DEFAULT_MAX_DISTANCE,
) -> Optional[PlanDecision]:
    """Nearest-fixture lookup + argmin over its measured combinations.

    Returns ``None`` (caller falls back to the heuristic) when the table
    has no entries for this model or no fixture close enough in scale.
    """
    label = model_name_of(model)
    entries = [entry for entry in table.entries if entry.model == label]
    if not entries:
        return None
    fixtures: dict[tuple[int, int], list[CalibrationEntry]] = {}
    for entry in entries:
        fixtures.setdefault((entry.n, entry.m), []).append(entry)
    nearest = min(
        fixtures,
        key=lambda fx: (fixture_distance(stats, fx[0], fx[1]), fx),
    )
    distance = fixture_distance(stats, nearest[0], nearest[1])
    if distance > max_distance:
        return None
    best = min(
        fixtures[nearest],
        key=lambda e: (
            e.seconds,
            e.sample_batch_size,
            str(e.jobs),
            str(e.mc_batch_size),
            e.kernel_backend,
        ),
    )
    return PlanDecision(
        source="calibration",
        reason=(
            f"calibrated fixture n={nearest[0]} m={nearest[1]} at "
            f"log-distance {distance:.3f} ({len(fixtures[nearest])} "
            f"measurements, best {best.seconds:.3f}s)"
        ),
        sample_batch_size=best.sample_batch_size,
        mc_batch_size=best.mc_batch_size,
        jobs=best.jobs,
        kernel_backend=best.kernel_backend,
        fixture=nearest,
        distance=distance,
    )


def plan(
    graph: Any,
    model: Any,
    calibration: Any = None,
    max_distance: float = DEFAULT_MAX_DISTANCE,
) -> PlanDecision:
    """Choose knobs for ``graph`` x ``model``; never raises.

    ``calibration`` may be a path to a calibration JSON, an already-loaded
    :class:`CalibrationTable`, or ``None``.  Unreadable, stale-versioned,
    or out-of-range calibration data degrades to the static heuristic with
    the reason recorded in the decision.
    """
    stats = graph if isinstance(graph, GraphStats) else GraphStats.from_graph(graph)
    table: Optional[CalibrationTable] = None
    fallback_reason = "no calibration data"
    if isinstance(calibration, CalibrationTable):
        table = calibration
    elif calibration is not None:
        try:
            table = CalibrationTable.load(calibration)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            table = None
            fallback_reason = f"calibration unreadable: {exc}"
    if table is not None and table.version != CALIBRATION_VERSION:
        fallback_reason = (
            f"calibration version {table.version} != expected "
            f"{CALIBRATION_VERSION} (stale schema)"
        )
        table = None
    if table is not None and not table.entries:
        fallback_reason = "calibration table is empty"
        table = None
    if table is not None:
        decision = plan_from_calibration(table, stats, model, max_distance)
        if decision is not None:
            return decision
        fallback_reason = (
            f"no calibration fixture for model {model_name_of(model)!r} "
            f"within log-distance {max_distance}"
        )
    return static_plan(stats, model, fallback_reason)


def graph_stats(graph: Any) -> GraphStats:
    """Convenience alias used by the calibration sweep."""
    return GraphStats.from_graph(graph)


__all__ = [
    "CALIBRATION_VERSION",
    "DEFAULT_MAX_DISTANCE",
    "CalibrationEntry",
    "CalibrationTable",
    "GraphStats",
    "PlanDecision",
    "fixture_distance",
    "graph_stats",
    "model_name_of",
    "plan",
    "plan_from_calibration",
    "static_plan",
]
