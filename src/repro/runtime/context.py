"""The unified execution context.

Every engine in the library — the batched (m)RR sampler, the CRN forward
evaluator, the adaptive-session engine, the experiment harness, and the
baselines — used to thread its own set of policy knobs (``sample_batch_size``,
``mc_batch_size``, ``mc_tolerance``, ``reuse_pool``, ``jobs``, ``runtime``)
through a per-layer parameter chain.  :class:`ExecutionContext` replaces all
of those chains with one object owned at the top of a run and visible at
every layer:

* **batching policy** — ``sample_batch_size`` for the reverse engine,
  ``mc_batch_size`` / ``mc_tolerance`` for the forward estimators;
* **pool policy** — ``reuse_pool`` for the adaptive cross-round carry-over;
* **parallelism** — ``jobs`` plus the lazily created
  :class:`~repro.parallel.runtime.ParallelRuntime` (context-manager
  lifecycle; one owner per sweep — facades that receive a context never
  close it, facades that build one from legacy kwargs do);
* **randomness** — a ``SeedSequence``-rooted factory
  (:meth:`ExecutionContext.generator` / :meth:`spawn_seed_sequences` /
  :meth:`spawn_generators`) replacing ad-hoc ``spawn_generators`` plumbing;
* **storage** — the compact-graph policy (``graph_storage``) together with
  :meth:`note_graph`, which records each graph's dtype decision in the
  aggregated :attr:`diagnostics` sink.

Legacy per-knob keyword arguments on the public facades keep working
through :func:`resolve_context`, which builds an equivalent context and
emits a :class:`DeprecationWarning` — outputs are bit-identical either way
(the equivalence tests pin this).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any, Optional, Union, cast

import numpy as np

if TYPE_CHECKING:
    from repro.graph.digraph import DiGraph
    from repro.parallel.runtime import FaultPolicy, ParallelRuntime
    from repro.runtime.planner import PlanDecision
    from repro.store import PoolStore
    from repro.testing.faults import FaultInjection

from repro.errors import ConfigurationError
from repro.kernels import KERNEL_BACKENDS, numba_available, snapshot_stats
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.utils.rng import (
    RandomSource,
    as_generator,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.utils.validation import (
    check_jobs,
    check_optional_positive_int,
    check_positive_float,
    check_positive_int,
)

#: Sentinel distinguishing "caller did not pass this legacy kwarg" from any
#: legitimate value (``None`` is legitimate for ``jobs`` and ``runtime``).
UNSET = type("_Unset", (), {"__repr__": lambda self: "UNSET"})()

#: Accepted graph-storage policies: ``adaptive`` downcasts CSR arrays where
#: lossless (int32 indices, float32 probabilities), ``wide`` pins the
#: historical int64/float64 layout.
GRAPH_STORAGE_POLICIES = ("adaptive", "wide")


@dataclass
class ExecutionContext:
    """All engine policy for one run, owned in one place.

    Parameters
    ----------
    sample_batch_size:
        (m)RR sets generated per vectorized reverse-engine call.
    mc_batch_size:
        Forward cascades (or CRN jobs) per vectorized engine call;
        ``None`` lets each forward engine pick its own default.
    mc_tolerance:
        Optional CI half-width (nodes) at which Monte-Carlo estimation
        stops early; ``None`` disables the early stop.
    reuse_pool:
        Carry re-validated mRR pools across adaptive rounds (TRIM/TRIM-B).
    jobs:
        Worker processes for the parallel runtime.  ``None`` keeps every
        engine on its historical in-process single-stream route; any
        explicit value routes through the chunk-seeded parallel scheme,
        whose output is identical for every worker count (``jobs=1`` runs
        the same chunks in-process).
    max_samples:
        Optional per-round cap on (m)RR pool sizes (budget envelope).
    graph_storage:
        ``"adaptive"`` (default) or ``"wide"``; see
        :meth:`repro.graph.digraph.DiGraph.from_arrays`.
    kernel_backend:
        Per-level labeled-BFS backend (see :mod:`repro.kernels`):
        ``"auto"`` (default) picks the njit-compiled kernels when numba is
        importable and the graph is large enough, silently falling back to
        the numpy reference closures otherwise; ``"numpy"`` / ``"numba"`` /
        ``"python"`` pin the backend (pinning ``"numba"`` without numba
        raises at the first engine call).  Outputs are bit-identical
        across backends, so this is pure performance policy.
    fault_policy:
        Supervision knobs for the parallel runtime
        (:class:`~repro.parallel.runtime.FaultPolicy`: per-chunk timeout,
        retry and rebuild budgets, degrade-vs-raise on exhaustion, the
        shared-segment byte budget).  ``None`` uses the policy defaults.
        Pure recovery policy: results are bit-identical under any policy
        because recovered chunks replay their chunk-indexed seeds.
    fault_injection:
        A :class:`~repro.testing.faults.FaultInjection` chaos spec wrapped
        around worker-pool submissions — tests and the chaos gate only;
        leave ``None`` in production runs.
    """

    sample_batch_size: int = DEFAULT_BATCH_SIZE
    mc_batch_size: Optional[int] = None
    mc_tolerance: Optional[float] = None
    reuse_pool: bool = True
    jobs: Optional[int] = None
    max_samples: Optional[int] = None
    graph_storage: str = "adaptive"
    kernel_backend: str = "auto"
    fault_policy: Optional[FaultPolicy] = None
    fault_injection: Optional[FaultInjection] = None
    #: Optional persistent artifact store (:class:`repro.store.PoolStore`).
    #: When set, the (m)RR sampler, the CRN evaluator, and the harness check
    #: it before regenerating pools / realization batches; hits are
    #: bit-identical by construction (content-addressed on the exact
    #: generation recipe, RNG state included).  ``None`` disables caching.
    pool_store: Optional[PoolStore] = None
    #: Aggregated diagnostics sink: engines tally counters here (mRR pool
    #: builds and carry-over totals via ``build_round_pool``) and sweeps
    #: record decisions (the graph's storage/dtype choice via
    #: :meth:`note_graph`).  Parent-side only: contexts pickled into
    #: worker processes carry a *copy* of the dict, so worker-side tallies
    #: stay in the worker.
    diagnostics: dict[str, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.sample_batch_size, "sample_batch_size")
        check_optional_positive_int(self.mc_batch_size, "mc_batch_size")
        check_positive_float(self.mc_tolerance, "mc_tolerance")
        check_jobs(self.jobs)
        check_optional_positive_int(self.max_samples, "max_samples")
        if self.graph_storage not in GRAPH_STORAGE_POLICIES:
            raise ConfigurationError(
                f"graph_storage must be one of {GRAPH_STORAGE_POLICIES}, "
                f"got {self.graph_storage!r}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.fault_policy is not None:
            from repro.parallel.runtime import FaultPolicy

            if not isinstance(self.fault_policy, FaultPolicy):
                raise ConfigurationError(
                    f"fault_policy must be a FaultPolicy, "
                    f"got {type(self.fault_policy).__name__}"
                )
        if self.fault_injection is not None:
            from repro.testing.faults import FaultInjection

            if not isinstance(self.fault_injection, FaultInjection):
                raise ConfigurationError(
                    f"fault_injection must be a FaultInjection, "
                    f"got {type(self.fault_injection).__name__}"
                )
        if self.pool_store is not None:
            from repro.store import PoolStore

            if not isinstance(self.pool_store, PoolStore):
                raise ConfigurationError(
                    f"pool_store must be a PoolStore, "
                    f"got {type(self.pool_store).__name__}"
                )
        self._runtime: Optional[ParallelRuntime] = None
        self._owns_runtime: bool = False
        self._closed: bool = False

    # ------------------------------------------------------------------
    # Parallel runtime lifecycle
    # ------------------------------------------------------------------

    @property
    def runtime(self) -> Optional[ParallelRuntime]:
        """The context's :class:`~repro.parallel.runtime.ParallelRuntime`.

        ``None`` when ``jobs`` is ``None`` (the historical in-process
        route).  Otherwise created lazily on first access and owned by this
        context — :meth:`close` (or the ``with`` block) releases its worker
        pool and shared-memory segments.  A runtime handed in through
        :meth:`attach_runtime` is used but never closed here.
        """
        if self._runtime is None and self.jobs is not None and not self._closed:
            from repro.parallel.runtime import ParallelRuntime

            self._runtime = ParallelRuntime(
                self.jobs,
                fault_policy=self.fault_policy,
                injection=self.fault_injection,
            )
            self._owns_runtime = True
        return self._runtime

    def attach_runtime(self, runtime: Optional[ParallelRuntime]) -> ExecutionContext:
        """Use an externally owned runtime instead of creating one.

        The caller keeps ownership: this context never closes an attached
        runtime.  Returns ``self`` for chaining.
        """
        if self._runtime is not None and self._owns_runtime:
            raise ConfigurationError(
                "context already created its own runtime; attach before "
                "the first .runtime access"
            )
        self._runtime = runtime
        self._owns_runtime = False
        if runtime is not None:
            self.jobs = runtime.jobs
        return self

    def close(self) -> None:
        """Release the owned runtime (workers + shared memory); idempotent.

        An attached runtime (see :meth:`attach_runtime`) stays referenced
        and open — its owner closes it.
        """
        self._closed = True
        if self._owns_runtime and self._runtime is not None:
            self._runtime.close()
            self._runtime = None
            self._owns_runtime = False

    def __enter__(self) -> ExecutionContext:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> ExecutionContext:
        """A fresh context with fields replaced (no runtime is inherited)."""
        return replace(self, **changes)

    def sequential(self) -> ExecutionContext:
        """A copy with no parallel runtime (``jobs=None``).

        The experiment harness hands this to adaptive roster entries: they
        parallelize at the realization level, so giving their inner pool
        growth a runtime would change the sampling streams relative to the
        in-process reference.
        """
        if self.jobs is None:
            return self
        return self.replace(jobs=None)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @classmethod
    def from_plan(
        cls,
        graph: DiGraph,
        model: object,
        *,
        calibration: object = None,
        **overrides: Any,
    ) -> ExecutionContext:
        """Build a context whose knobs are chosen by the execution planner.

        The planner (:mod:`repro.runtime.planner`) picks
        ``sample_batch_size``, ``mc_batch_size``, ``jobs``, and
        ``kernel_backend`` from the graph's statistics (n, m, degree skew)
        and the diffusion model, using measured calibration data when
        ``calibration`` (a path or a loaded
        :class:`~repro.runtime.planner.CalibrationTable`) is usable and a
        conservative static heuristic otherwise.  Explicit ``overrides``
        always win over planned values; the decision lands in
        :attr:`diagnostics` via :meth:`note_plan`.
        """
        from repro.runtime.planner import plan

        decision = plan(graph, model, calibration=calibration)
        knobs: dict[str, Any] = decision.knobs()
        knobs.update(overrides)
        context = cls(**knobs)
        context.note_plan(decision)
        return context

    def note_plan(self, decision: PlanDecision) -> None:
        """Record what the planner chose and why (``plan_*`` diagnostics)."""
        self.record(
            plan_source=decision.source,
            plan_reason=decision.reason,
            plan_sample_batch_size=decision.sample_batch_size,
            plan_mc_batch_size=decision.mc_batch_size,
            plan_jobs=decision.jobs,
            plan_kernel_backend=decision.kernel_backend,
            plan_fixture=decision.fixture,
            plan_distance=decision.distance,
        )

    def note_store(self) -> None:
        """Record the pool store's activity (``pool_store_*`` diagnostics).

        The persistence companion of :meth:`note_kernels` /
        :meth:`note_faults`: copies the store's counters (hits, misses,
        stores, evictions, corrupt discards, bytes moved) into the
        diagnostics sink.  No-op without a store.
        """
        if self.pool_store is None:
            return
        self.record(pool_store_root=str(self.pool_store.root))
        self.record(
            **{
                f"pool_store_{key}": value
                for key, value in self.pool_store.stats.as_dict().items()
            }
        )

    # ------------------------------------------------------------------
    # RNG factory
    # ------------------------------------------------------------------

    @staticmethod
    def generator(seed: RandomSource = None) -> np.random.Generator:
        """Normalize ``seed`` into a :class:`numpy.random.Generator`."""
        return as_generator(seed)

    @staticmethod
    def spawn_seed_sequences(
        seed: RandomSource, count: int
    ) -> list[np.random.SeedSequence]:
        """``count`` independent child sequences rooted at ``seed``.

        The picklable half of the factory: work units shipped to worker
        processes carry these, so a unit's stream depends only on its
        global index, never on worker count.
        """
        return spawn_seed_sequences(seed, count)

    @staticmethod
    def spawn_generators(
        seed: RandomSource, count: int
    ) -> list[np.random.Generator]:
        """``count`` independent generators rooted at ``seed``."""
        return spawn_generators(seed, count)

    # ------------------------------------------------------------------
    # Diagnostics sink
    # ------------------------------------------------------------------

    def record(self, **entries: object) -> None:
        """Merge diagnostic entries into the aggregated sink."""
        self.diagnostics.update(entries)

    def tally(self, name: str, amount: Union[int, float] = 1) -> None:
        """Accumulate a numeric counter in the diagnostics sink."""
        current = cast("Union[int, float]", self.diagnostics.get(name, 0))
        self.diagnostics[name] = current + amount

    def apply_storage(self, graph: DiGraph) -> DiGraph:
        """Re-layout ``graph`` under this context's ``graph_storage`` policy.

        A no-op when the graph already follows the policy (the default:
        graphs are built adaptive).  ``run_sweep`` routes the sweep graph
        through this, so ``graph_storage="wide"`` pins the int64/float64
        reference layout end to end — derived residual graphs inherit the
        policy from their parent.
        """
        if graph.storage == self.graph_storage:
            return graph
        return graph.with_storage(self.graph_storage)

    def note_graph(self, graph: DiGraph, label: str = "graph") -> None:
        """Record a graph's storage decision (dtype choices, byte size)."""
        self.record(**{
            f"{label}_storage": graph.storage,
            f"{label}_index_dtype": str(graph.index_dtype),
            f"{label}_prob_dtype": str(graph.prob_dtype),
            f"{label}_csr_nbytes": graph.csr_nbytes,
        })

    def note_kernels(self) -> None:
        """Record the kernel-backend decision and dispatch activity.

        The companion of :meth:`note_graph` for the compiled-kernel layer:
        stores this context's ``kernel_backend`` knob, whether numba is
        importable here, and a snapshot of the process-wide
        :data:`repro.kernels.KERNEL_STATS` (per-driver kernel call counts,
        JIT compile seconds, backend resolutions).  Sweeps call it once at
        the end of a run so the diagnostics show what actually executed.
        """
        stats = snapshot_stats()
        self.record(
            kernel_backend=self.kernel_backend,
            kernel_numba_available=numba_available(),
            kernel_calls=stats["calls"],
            kernel_jit_seconds=stats["jit_seconds"],
            kernel_backends_resolved=stats["resolved"],
        )

    def note_faults(self) -> None:
        """Record the parallel runtime's recovery activity.

        The supervision companion of :meth:`note_graph` /
        :meth:`note_kernels`: copies the runtime's fault counters
        (retries, timeouts, pool rebuilds, republished segments, degraded
        chunks, recovery wall-time, swept orphans — see
        :attr:`~repro.parallel.runtime.ParallelRuntime.fault_stats`) into
        the diagnostics sink as ``fault_*`` entries.  Sweeps call it at
        the end of a run, so a recovered run is distinguishable from a
        clean one even though their results are bit-identical.  No-op on
        the in-process route (no runtime ever existed, nothing to report);
        reads an already-created runtime but never creates one.
        """
        runtime = self._runtime
        if runtime is None:
            return
        self.record(
            **{f"fault_{key}": value for key, value in runtime.fault_stats.items()}
        )

    # ------------------------------------------------------------------
    # Pickling (work units ship contexts to worker processes)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self._runtime = None
        self._owns_runtime = False
        self._closed = False


def default_context() -> ExecutionContext:
    """A context with every policy at its documented default."""
    return ExecutionContext()


def _warn_legacy(owner: str, names: Iterable[str]) -> None:
    warnings.warn(
        f"{owner}: passing {', '.join(sorted(names))} as per-knob keyword "
        f"arguments is deprecated [repro-lint REP006: engine policy routes "
        f"through ExecutionContext]; build an ExecutionContext and pass "
        f"context= instead (outputs are bit-identical)",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_context(
    context: Optional[ExecutionContext],
    owner: str,
    runtime: Any = UNSET,
    **legacy: Any,
) -> tuple[ExecutionContext, bool]:
    """The deprecation shim shared by every public facade.

    Returns ``(context, owns)``:

    * explicit ``context`` — returned as-is, ``owns=False`` (the caller
      that built it closes it); combining it with legacy per-knob kwargs
      is a :class:`ConfigurationError` (ambiguous policy);
    * no context — a fresh one is built from whichever legacy kwargs were
      actually passed (each emits one :class:`DeprecationWarning`),
      ``owns=True`` so the facade's ``close`` tears it down.  A legacy
      ``runtime=`` object is attached without transferring ownership.
    """
    passed = {k: v for k, v in legacy.items() if v is not UNSET}
    has_runtime = runtime is not UNSET
    if context is not None:
        if passed or has_runtime:
            clash = sorted(passed) + (["runtime"] if has_runtime else [])
            raise ConfigurationError(
                f"{owner}: pass either context= or the legacy knobs "
                f"{clash}, not both"
            )
        return context, False
    if passed or has_runtime:
        _warn_legacy(
            owner, sorted(passed) + (["runtime"] if has_runtime else [])
        )
    built = ExecutionContext(**passed)
    if has_runtime and runtime is not None:
        built.attach_runtime(runtime)
    return built, True
