"""Expander factories bridging kernel backends into the BFS driver.

The labeled-BFS driver's ``expand`` mode hands the kernel the visitation
bitset and the current frontier and expects back the sorted fresh keys
(already marked).  Each factory below closes over one engine call's fixed
state — the CSR arrays, the caller's RNG, flat world/allowed arrays — and
returns that ``expand(visited, fsids, fnodes)`` callable for a resolved
non-numpy backend.

Randomness discipline: a factory draws exactly the uniforms the numpy
closure would draw for the level, with the same single vectorized
``rng.random(k)`` call, *before* invoking the kernel.  The kernel consumes
them in the same element order the vectorized comparison would, which is
what makes backends interchangeable bit for bit.

Every kernel invocation is timed and tallied into
:data:`repro.kernels.KERNEL_STATS`; for numba dispatchers, a call that grew
the dispatcher's compiled-signature set is attributed as JIT compile time
(the per-dtype lazy compilation of the adaptive CSR storage shows up here).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, Optional

import numpy as np

from repro.kernels import KernelBackend, note_call

#: The ``expand(visited, fsids, fnodes) -> fresh_keys`` callable the
#: labeled-BFS driver consumes.
Expander = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def _timed(driver: str, fn: Callable[..., Any], *args: Any) -> Any:
    signatures = getattr(fn, "signatures", None)
    before = len(signatures) if signatures is not None else 0
    start = time.perf_counter()
    result = fn(*args)
    elapsed = time.perf_counter() - start
    after = len(signatures) if signatures is not None else 0
    note_call(driver, elapsed, after > before)
    return result


_EMPTY_ALLOWED = np.empty(0, dtype=bool)


def ic_coin_expander(
    backend: KernelBackend,
    driver: str,
    indptr: np.ndarray,
    neighbors: np.ndarray,
    probs: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> Expander:
    """IC coin-flip expander: forward over out-CSR, reverse over in-CSR."""
    fn = backend.kernels.ic_flip_level

    def expand(visited: np.ndarray, fsids: np.ndarray, fnodes: np.ndarray) -> np.ndarray:
        degrees = indptr[fnodes + 1] - indptr[fnodes]
        draws = rng.random(int(degrees.sum()))
        return _timed(
            driver, fn, indptr, neighbors, probs, n, visited, fsids, fnodes, draws
        )

    return expand


def lt_walk_expander(
    backend: KernelBackend,
    indptr: np.ndarray,
    sources: np.ndarray,
    cum: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> Expander:
    """Reverse-LT expander: one keep-at-most-one-in-edge walk step."""
    fn = backend.kernels.lt_walk_level

    def expand(visited: np.ndarray, fsids: np.ndarray, fnodes: np.ndarray) -> np.ndarray:
        draws = rng.random(len(fnodes))
        return _timed(
            "lt_reverse", fn, indptr, sources, cum, n, visited, fsids, fnodes, draws
        )

    return expand


def lt_forward_expander(
    backend: KernelBackend,
    indptr: np.ndarray,
    targets: np.ndarray,
    probs: np.ndarray,
    n: int,
    rng: np.random.Generator,
    thresholds: np.ndarray,
    accumulated: np.ndarray,
    touched_before: np.ndarray,
) -> Expander:
    """Forward-LT expander: first-touch bookkeeping, then threshold scan.

    Phase 1 (``lt_touch_level``) returns the level's fresh keys sorted
    ascending so the lazy threshold draw here consumes the stream in the
    exact order the numpy closure's ``np.unique``-sorted ``fresh`` does;
    phase 2 (``lt_cross_level``) accumulates and collects the crossers.
    """
    touch = backend.kernels.lt_touch_level
    cross = backend.kernels.lt_cross_level

    def expand(visited: np.ndarray, fsids: np.ndarray, fnodes: np.ndarray) -> np.ndarray:
        fresh = _timed(
            "lt_forward", touch, indptr, targets, n, touched_before,
            accumulated, fsids, fnodes,
        )
        thresholds[fresh] = rng.random(len(fresh))
        return _timed(
            "lt_forward", cross, indptr, targets, probs, n, accumulated,
            thresholds, visited, fsids, fnodes,
        )

    return expand


def replay_expander(
    backend: KernelBackend,
    kind: str,
    indptr: np.ndarray,
    targets: np.ndarray,
    worlds_flat: np.ndarray,
    world: np.ndarray,
    m: int,
    n: int,
    allowed_flat: Optional[np.ndarray] = None,
) -> Expander:
    """Deterministic replay expander over pre-sampled worlds (IC or LT).

    Shared by ``batch_reachable_from`` (``world`` is the identity mapping,
    ``allowed_flat`` the flat residual mask) and the CRN sweeps (``world``
    maps jobs to world indices, no mask).
    """
    allowed = _EMPTY_ALLOWED if allowed_flat is None else allowed_flat
    if kind == "ic":
        fn = backend.kernels.replay_ic_level

        def expand(visited: np.ndarray, fsids: np.ndarray, fnodes: np.ndarray) -> np.ndarray:
            return _timed(
                "replay_ic", fn, indptr, targets, worlds_flat, world, m, n,
                allowed, visited, fsids, fnodes,
            )

    else:
        fn = backend.kernels.replay_lt_level

        def expand(visited: np.ndarray, fsids: np.ndarray, fnodes: np.ndarray) -> np.ndarray:
            return _timed(
                "replay_lt", fn, indptr, targets, worlds_flat, world, n,
                allowed, visited, fsids, fnodes,
            )

    return expand
