"""Kernel backends for the labeled-BFS hot loops.

Every engine in the library bottoms out in the per-level frontier
expansions of the shared labeled-BFS driver; this package makes that inner
loop pluggable behind a small registry (the DGL ``backend as F`` idea,
scoped to the three expansion families this codebase actually has):

* ``"numpy"`` — the vectorized closures the models have always used; the
  reference backend, always available.
* ``"numba"`` — the same per-level rules as njit-compiled loops over the
  CSR arrays (:mod:`repro.kernels.numba_backend`); requires the optional
  ``[numba]`` extra.
* ``"python"`` — the compiled kernels' *source* run interpreted
  (:mod:`repro.kernels.reference`); far too slow for real runs but
  bit-identical to both other backends, so equivalence tests cover the
  kernel code path on machines without numba.

Selection goes through :func:`resolve_backend`, driven by the
``ExecutionContext.kernel_backend`` knob: ``"auto"`` picks numba when it is
importable and the graph is big enough to amortize dispatch
(``AUTO_MIN_EDGES``), silently falling back to numpy otherwise; an explicit
name pins the backend, and pinning ``"numba"`` without numba installed
raises :class:`~repro.errors.ConfigurationError` naming the missing extra.

Bit-identity across backends is a hard invariant, not an aspiration: all
randomness is drawn by the caller from the ordinary numpy ``Generator``
(one vectorized draw per level, exactly like the numpy closures) and
passed into the kernels, so a pool, CRN estimate, or adaptive run is the
same bit for bit under every backend — the equivalence tests pin this.

The module-level :data:`KERNEL_STATS` sink records what the dispatch layer
actually did (per-driver kernel call counts, JIT compile seconds, the
backends resolved); ``ExecutionContext.note_kernels`` snapshots it into the
context diagnostics next to ``note_graph``'s dtype records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.graph.digraph import DiGraph

#: Knob values accepted by ``ExecutionContext.kernel_backend`` and
#: ``ExperimentConfig.kernel_backend`` (and the CLI's ``--kernel-backend``).
KERNEL_BACKENDS = ("auto", "numpy", "numba", "python")

#: ``"auto"`` only picks the compiled backend on graphs with at least this
#: many edges: below it, per-call dispatch and argument marshalling dominate
#: and the numpy closures are already fast, so tiny graphs (and most unit
#: tests) stay on the reference path.
AUTO_MIN_EDGES = 512


@dataclass(frozen=True)
class KernelBackend:
    """A resolved backend: its name and (for kernel paths) its module.

    ``kernels`` is ``None`` for the numpy backend — the models keep their
    vectorized closures — and the kernel module (compiled or interpreted)
    otherwise; callers branch on it.
    """

    name: str
    compiled: bool
    kernels: Optional[Any]


_NUMPY = KernelBackend(name="numpy", compiled=False, kernels=None)

# Lazy import slot for the numba backend: None = not tried yet, otherwise
# a (module_or_None, error_message) pair.  Tests monkeypatch this to
# simulate a missing or import-broken numba.
_NUMBA_CACHE: Optional[tuple[Optional[Any], Optional[str]]] = None


def _load_numba_backend() -> tuple[Optional[Any], Optional[str]]:
    global _NUMBA_CACHE
    if _NUMBA_CACHE is None:
        try:
            from repro.kernels import numba_backend

            _NUMBA_CACHE = (numba_backend, None)
        except Exception as exc:  # ImportError, or a broken install
            _NUMBA_CACHE = (None, f"{type(exc).__name__}: {exc}")
    return _NUMBA_CACHE


def numba_available() -> bool:
    """Whether the compiled backend can be imported here."""
    return _load_numba_backend()[0] is not None


def _python_backend() -> KernelBackend:
    from repro.kernels import reference

    return KernelBackend(name="python", compiled=False, kernels=reference)


def _numba_backend() -> KernelBackend:
    module, error = _load_numba_backend()
    if module is None:
        raise ConfigurationError(
            "kernel_backend='numba' but the compiled backend is unavailable "
            f"({error}); install the optional extra with "
            "`pip install .[numba]`, or use kernel_backend='auto' to fall "
            "back to the numpy reference backend"
        )
    return KernelBackend(name="numba", compiled=True, kernels=module)


def resolve_backend(name: str, graph: Optional[DiGraph] = None) -> KernelBackend:
    """Resolve a ``kernel_backend`` knob value into a concrete backend.

    ``"auto"`` returns the compiled backend when numba is importable and
    ``graph`` (when given) has at least :data:`AUTO_MIN_EDGES` edges —
    otherwise the numpy reference backend, silently.  Explicit names pin
    the choice; ``"numba"`` raises :class:`ConfigurationError` naming the
    ``[numba]`` extra when the import fails.  Every resolution is tallied
    in :data:`KERNEL_STATS`.
    """
    if name not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"kernel_backend must be one of {KERNEL_BACKENDS}, got {name!r}"
        )
    if name == "numpy":
        backend = _NUMPY
    elif name == "python":
        backend = _python_backend()
    elif name == "numba":
        backend = _numba_backend()
    elif not numba_available():
        backend = _NUMPY
    elif graph is not None and graph.m < AUTO_MIN_EDGES:
        backend = _NUMPY
    else:
        backend = _numba_backend()
    resolved = KERNEL_STATS["resolved"]
    resolved[backend.name] = resolved.get(backend.name, 0) + 1
    return backend


# ----------------------------------------------------------------------
# Kernel decision stats (feeds ExecutionContext.note_kernels)
# ----------------------------------------------------------------------

def _fresh_stats() -> dict[str, Any]:
    return {"calls": {}, "jit_seconds": 0.0, "resolved": {}}


#: Process-wide dispatch bookkeeping: ``calls`` counts kernel invocations
#: per driver (``ic_forward``, ``ic_reverse``, ``lt_forward``,
#: ``lt_reverse``, ``replay_ic``, ``replay_lt``), ``jit_seconds``
#: accumulates time spent inside calls that triggered a fresh numba
#: compilation (attributed via dispatcher signature growth), ``resolved``
#: counts backend resolutions by resolved name.  Deliberately global — the
#: hot loops must not thread a stats object — and snapshotted into a
#: context's diagnostics by ``note_kernels``.
KERNEL_STATS: dict[str, Any] = _fresh_stats()


def note_call(driver: str, seconds: float, compiled_fresh: bool) -> None:
    """Tally one kernel invocation (and its JIT time, if it compiled)."""
    calls = KERNEL_STATS["calls"]
    calls[driver] = calls.get(driver, 0) + 1
    if compiled_fresh:
        KERNEL_STATS["jit_seconds"] += seconds


def snapshot_stats() -> dict[str, Any]:
    """A deep-enough copy of :data:`KERNEL_STATS` for diagnostics sinks."""
    return {
        "calls": dict(KERNEL_STATS["calls"]),
        "jit_seconds": float(KERNEL_STATS["jit_seconds"]),
        "resolved": dict(KERNEL_STATS["resolved"]),
    }


def reset_stats() -> None:
    """Zero the process-wide kernel stats (tests and benchmarks)."""
    global KERNEL_STATS
    KERNEL_STATS = _fresh_stats()


__all__ = [
    "AUTO_MIN_EDGES",
    "KERNEL_BACKENDS",
    "KERNEL_STATS",
    "KernelBackend",
    "note_call",
    "numba_available",
    "reset_stats",
    "resolve_backend",
    "snapshot_stats",
]
