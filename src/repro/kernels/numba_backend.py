"""The njit-compiled kernel set.

Importing this module requires numba (the optional ``[numba]`` extra);
:func:`repro.kernels.resolve_backend` gates the import and turns a missing
or broken numba into either a silent numpy fallback (``"auto"``) or a
:class:`~repro.errors.ConfigurationError` (explicit ``"numba"``).

Each function in :mod:`repro.kernels.reference` compiles lazily on its
first call per argument-dtype signature (the dtype-adaptive CSR storage
means int32/int64 x float32/float64 combinations each get their own
machine code).  ``cache=True`` persists the compiled artifacts in numba's
on-disk cache next to the source, so the one-time JIT cost is paid once
per environment, not once per process — the dispatch layer measures and
records what compilation does happen in the kernel stats sink.
"""

from __future__ import annotations

import numba

from repro.kernels import reference

_njit = numba.njit(cache=True, fastmath=False)

ic_flip_level = _njit(reference.ic_flip_level)
lt_walk_level = _njit(reference.lt_walk_level)
lt_touch_level = _njit(reference.lt_touch_level)
lt_cross_level = _njit(reference.lt_cross_level)
replay_ic_level = _njit(reference.replay_ic_level)
replay_lt_level = _njit(reference.replay_lt_level)
