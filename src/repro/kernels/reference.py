"""Per-level labeled-BFS kernels, written once in njit-compatible Python.

This module is the single source of truth for the compiled backends: the
``python`` backend runs these functions as-is (interpreted — slow, but it
executes the *exact* code the compiled backend compiles, which is what the
cross-backend equivalence tests exercise on machines without numba), and
:mod:`repro.kernels.numba_backend` wraps each one in ``numba.njit``.

Every kernel implements one level of the shared labeled-BFS driver
(:func:`repro.diffusion.base.run_labeled_bfs`) in its fused ``expand`` form:
given the frontier ``(fsids, fnodes)`` and the flat visitation bitset, it
gathers the frontier's CSR edges, applies the model's per-level rule,
dedups first-encounter, marks ``visited`` in place, and returns the
**sorted** fresh ``sid * n + node`` keys.  Sorted-unique output plus
in-place marking is exactly what the numpy reference path produces with
``keys[~visited[keys]]`` / ``np.unique`` / ``visited[keys] = True``, so the
two routes are bit-identical by construction — including member order,
because the driver collects keys level by level in ascending key order
either way.

Randomness stays in the caller: the dispatch layer draws every uniform the
level needs from the caller's ``numpy.random.Generator`` *before* invoking
the kernel (one ``rng.random(k)`` per level, the same single draw the numpy
closures make), and passes the draw array in.  Kernels therefore never
touch RNG state, which is what keeps pools, CRN estimates, and adaptive
runs identical across backends for any (backend, jobs) combination.

Dtype contract: CSR ``indptr``/``targets``/``sources`` arrays may be int32
or int64 and ``probs`` float32 or float64 (the dtype-adaptive compact
storage); frontier arrays, keys, and flat world arrays are int64; ``draws``
and the LT accumulator/threshold arrays are float64.  All arithmetic below
promotes exactly as the numpy path does (int64 keys; float64 accumulation
with exact float32 upcasts), so compact storage changes nothing.
"""

from __future__ import annotations

import numpy as np


def ic_flip_level(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    probs: np.ndarray,
    n: int,
    visited: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
    draws: np.ndarray,
) -> np.ndarray:
    """One IC level: flip each frontier edge's coin, collect fresh nodes.

    Serves both directions — forward over the out-CSR and reverse over the
    in-CSR — since the rule is the same: edge ``pos`` fires when
    ``draws[pos_in_level] < probs[pos]``.  ``draws`` holds one uniform per
    frontier CSR edge, in frontier order (the order ``rng.random(k)``
    produces them for the numpy closure's single vectorized draw).
    """
    out = np.empty(draws.shape[0], np.int64)
    found = 0
    d = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        base = fsids[i] * n
        for pos in range(indptr[v], indptr[v + 1]):
            if draws[d] < probs[pos]:
                key = base + neighbors[pos]
                if not visited[key]:
                    visited[key] = True
                    out[found] = key
                    found += 1
            d += 1
    fresh = out[:found]
    fresh.sort()
    return fresh


def lt_walk_level(
    indptr: np.ndarray,
    sources: np.ndarray,
    cum: np.ndarray,
    n: int,
    visited: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
    draws: np.ndarray,
) -> np.ndarray:
    """One reverse-LT level: each frontier pair keeps at most one in-edge.

    ``cum`` is the float64 running sum of the in-CSR probabilities; the
    chosen position for draw ``x`` is the first whose within-row cumulative
    exceeds ``x`` (a draw past the row total keeps no edge).  The binary
    search below is ``np.searchsorted(cum, base + x, side="right")``
    written out, so chosen positions match the numpy path bit for bit.
    """
    out = np.empty(fnodes.shape[0], np.int64)
    found = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        start = indptr[v]
        if start > 0:
            x = cum[start - 1] + draws[i]
        else:
            x = 0.0 + draws[i]
        lo = 0
        hi = cum.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if x < cum[mid]:
                hi = mid
            else:
                lo = mid + 1
        if lo < indptr[v + 1]:
            key = fsids[i] * n + sources[lo]
            if not visited[key]:
                visited[key] = True
                out[found] = key
                found += 1
    fresh = out[:found]
    fresh.sort()
    return fresh


def lt_touch_level(
    indptr: np.ndarray,
    targets: np.ndarray,
    n: int,
    touched_before: np.ndarray,
    accumulated: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
) -> np.ndarray:
    """Forward-LT phase 1: first-touch bookkeeping for a level's edges.

    Marks every ``(sim, target)`` pair touched for the first time, zeroes
    its accumulator slot, and returns the sorted fresh keys so the caller
    can draw their lazy thresholds (ascending key order — the same order
    ``np.unique`` hands the numpy closure its ``fresh`` array in, so the
    threshold stream is consumed identically).
    """
    total = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        total += indptr[v + 1] - indptr[v]
    out = np.empty(total, np.int64)
    found = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        base = fsids[i] * n
        for pos in range(indptr[v], indptr[v + 1]):
            key = base + targets[pos]
            if not touched_before[key]:
                touched_before[key] = True
                accumulated[key] = 0.0
                out[found] = key
                found += 1
    fresh = out[:found]
    fresh.sort()
    return fresh


def lt_cross_level(
    indptr: np.ndarray,
    targets: np.ndarray,
    probs: np.ndarray,
    n: int,
    accumulated: np.ndarray,
    thresholds: np.ndarray,
    visited: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
) -> np.ndarray:
    """Forward-LT phase 2: accumulate weights, collect threshold crossers.

    Adds each frontier edge's weight to its ``(sim, target)`` accumulator
    in frontier-edge order — the element order ``np.add.at`` uses, and
    float64 ``+=`` float32 upcasts exactly, so the running sums match the
    numpy path bit for bit — then scans the level's touched keys in sorted
    order and returns those whose sum crossed their threshold and that are
    not yet active.
    """
    total = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        total += indptr[v + 1] - indptr[v]
    keys = np.empty(total, np.int64)
    count = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        base = fsids[i] * n
        for pos in range(indptr[v], indptr[v + 1]):
            key = base + targets[pos]
            accumulated[key] += probs[pos]
            keys[count] = key
            count += 1
    keys.sort()
    out = np.empty(count, np.int64)
    found = 0
    prev = -1
    for j in range(count):
        key = keys[j]
        if key == prev:
            continue
        prev = key
        if accumulated[key] >= thresholds[key] and not visited[key]:
            visited[key] = True
            out[found] = key
            found += 1
    return out[:found]


def replay_ic_level(
    indptr: np.ndarray,
    targets: np.ndarray,
    live_flat: np.ndarray,
    world: np.ndarray,
    m: int,
    n: int,
    allowed_flat: np.ndarray,
    visited: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
) -> np.ndarray:
    """One deterministic IC replay level over pre-sampled live-edge worlds.

    ``world`` maps each sample id to its world index in the flat stacked
    live-edge matrix (identity for ``batch_reachable_from``, the job-to-
    world mapping for CRN sweeps); edge ``pos`` is traversed in sample
    ``sid`` when ``live_flat[world[sid] * m + pos]``.  ``allowed_flat`` is
    the flat ``sid * n + node`` residual mask, or empty for no restriction.
    """
    total = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        total += indptr[v + 1] - indptr[v]
    out = np.empty(total, np.int64)
    found = 0
    has_allowed = allowed_flat.shape[0] > 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        sid = fsids[i]
        wbase = world[sid] * m
        kbase = sid * n
        for pos in range(indptr[v], indptr[v + 1]):
            if live_flat[wbase + pos]:
                key = kbase + targets[pos]
                if has_allowed and not allowed_flat[key]:
                    continue
                if not visited[key]:
                    visited[key] = True
                    out[found] = key
                    found += 1
    fresh = out[:found]
    fresh.sort()
    return fresh


def replay_lt_level(
    indptr: np.ndarray,
    targets: np.ndarray,
    chosen_flat: np.ndarray,
    world: np.ndarray,
    n: int,
    allowed_flat: np.ndarray,
    visited: np.ndarray,
    fsids: np.ndarray,
    fnodes: np.ndarray,
) -> np.ndarray:
    """One deterministic LT replay level over pre-sampled chosen in-edges.

    Edge ``u -> v`` is live in sample ``sid`` exactly when ``v`` chose
    ``u`` in that sample's world: ``chosen_flat[world[sid] * n + v] == u``.
    Same ``world`` / ``allowed_flat`` conventions as
    :func:`replay_ic_level`.
    """
    total = 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        total += indptr[v + 1] - indptr[v]
    out = np.empty(total, np.int64)
    found = 0
    has_allowed = allowed_flat.shape[0] > 0
    for i in range(fnodes.shape[0]):
        v = fnodes[i]
        sid = fsids[i]
        wbase = world[sid] * n
        kbase = sid * n
        for pos in range(indptr[v], indptr[v + 1]):
            tgt = targets[pos]
            if chosen_flat[wbase + tgt] == v:
                key = kbase + tgt
                if has_allowed and not allowed_flat[key]:
                    continue
                if not visited[key]:
                    visited[key] = True
                    out[found] = key
                    found += 1
    fresh = out[:found]
    fresh.sort()
    return fresh


#: The kernel names every backend must export (the registry checks this).
KERNEL_NAMES = (
    "ic_flip_level",
    "lt_walk_level",
    "lt_touch_level",
    "lt_cross_level",
    "replay_ic_level",
    "replay_lt_level",
)
