"""Persistent content-addressed artifact store for pools and realizations.

``PoolStore`` caches the repro's hottest regenerated artifacts — (m)RR
pools, CRN realization batches, shared harness worlds, service warm pools
— on disk, keyed so precisely (graph fingerprint x model x generation
params x exact randomness recipe x format version) that a hit is
bit-identical by construction to regenerating.  See DESIGN.md "Pool store
& planner" for the key schema and invalidation rules.
"""

from repro.store.disk import DEFAULT_STORE_BYTES, PoolStore, StoreStats
from repro.store.keys import (
    ARTIFACT_FORMAT_VERSION,
    artifact_key,
    canonical_json,
    generator_state,
    graph_fingerprint,
    model_key,
    restore_generator_state,
    rng_state_token,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "DEFAULT_STORE_BYTES",
    "PoolStore",
    "StoreStats",
    "artifact_key",
    "canonical_json",
    "generator_state",
    "graph_fingerprint",
    "model_key",
    "restore_generator_state",
    "rng_state_token",
]
