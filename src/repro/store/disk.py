"""The on-disk artifact store: npz payloads + JSON manifests.

Layout: each artifact is a pair of files in one flat directory::

    <root>/<key>.npz     the numpy payload (named arrays, uncompressed)
    <root>/<key>.json    the manifest: key, format version, payload digest,
                         payload byte count, caller metadata

Guarantees:

* **Atomic writes** — both files are staged as temporaries in the store
  directory and published with ``os.replace`` (payload first, manifest
  last), so readers either see a complete artifact or none.  Concurrent
  writers of the same key are safe: the last ``os.replace`` wins.
* **Verified loads** — a load re-hashes the payload bytes and compares
  against the manifest digest; any mismatch (truncation, torn concurrent
  rewrite, bit rot) or any other failure discards the artifact and returns
  ``None`` — callers silently regenerate, the store **never crashes a
  run**.  Discards are counted in :attr:`PoolStore.stats`.
* **Bounded size** — after every save the store evicts
  least-recently-used artifacts (manifest mtime, refreshed on every hit)
  until total payload+manifest bytes fit ``max_bytes``.

The store is picklable (configuration only, counters reset), so an
:class:`~repro.runtime.context.ExecutionContext` carrying one can cross a
process boundary; worker-side stores operate on the same directory and
remain safe thanks to the atomic publish protocol.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.store.keys import ARTIFACT_FORMAT_VERSION

#: Default byte budget: generous for pools/worlds at benchmark scale while
#: still bounding an unattended store (e.g. a long-lived service host).
DEFAULT_STORE_BYTES = 2 * 1024 ** 3

_MANIFEST_SUFFIX = ".json"
_PAYLOAD_SUFFIX = ".npz"


@dataclass
class StoreStats:
    """Counters for diagnostics (surfaced via ``context.note_store()``)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_failures: int = 0
    evictions: int = 0
    corrupt_discarded: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_failures": self.store_failures,
            "evictions": self.evictions,
            "corrupt_discarded": self.corrupt_discarded,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class PoolStore:
    """Content-addressed artifact store for pools and realization batches.

    Parameters
    ----------
    root:
        Directory holding the artifacts; created on first save.
    max_bytes:
        Byte budget over payload+manifest files; least-recently-used
        artifacts are evicted after each save until the store fits.
    clock:
        Injectable time source for the LRU recency stamp (tests substitute
        a deterministic counter).
    """

    root: Union[str, Path]
    max_bytes: int = DEFAULT_STORE_BYTES
    clock: Callable[[], float] = time.time
    stats: StoreStats = field(default_factory=StoreStats, repr=False)

    def __post_init__(self) -> None:
        if not str(self.root).strip():
            # Path("") silently means the current directory; an empty root
            # would scatter artifacts into whatever the cwd happens to be.
            raise ValueError("store root must be a directory path, got ''")
        self.root = Path(self.root)
        if self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {self.max_bytes}")

    # -- pickling: configuration crosses processes, counters stay local --

    def __getstate__(self) -> dict[str, Any]:
        return {"root": str(self.root), "max_bytes": self.max_bytes}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = Path(state["root"])
        self.max_bytes = int(state["max_bytes"])
        self.clock = time.time
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------

    def _manifest_path(self, key: str) -> Path:
        return Path(self.root) / f"{key}{_MANIFEST_SUFFIX}"

    def _payload_path(self, key: str) -> Path:
        return Path(self.root) / f"{key}{_PAYLOAD_SUFFIX}"

    def keys(self) -> list[str]:
        """Keys with a published manifest, oldest recency stamp first."""
        root = Path(self.root)
        if not root.is_dir():
            return []
        stamped: list[tuple[float, str]] = []
        for manifest in root.glob(f"*{_MANIFEST_SUFFIX}"):
            try:
                stamped.append((manifest.stat().st_mtime, manifest.stem))
            except OSError:
                continue
        return [key for _, key in sorted(stamped)]

    def total_bytes(self) -> int:
        """Bytes currently on disk across payloads and manifests."""
        root = Path(self.root)
        if not root.is_dir():
            return 0
        total = 0
        for path in root.iterdir():
            if path.suffix in (_MANIFEST_SUFFIX, _PAYLOAD_SUFFIX):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    def __len__(self) -> int:
        return len(self.keys())

    # -- load ----------------------------------------------------------

    def load(self, key: str) -> Optional[tuple[dict[str, np.ndarray], dict[str, Any]]]:
        """Return ``(arrays, meta)`` for ``key``, or ``None`` on any miss.

        Every failure mode — absent files, unparsable manifest, version or
        key mismatch, payload digest mismatch, undecodable npz — discards
        the artifact (best-effort) and reads as a miss; the caller
        regenerates and the run proceeds.
        """
        manifest_path = self._manifest_path(key)
        payload_path = self._payload_path(key)
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            if manifest_path.exists() or payload_path.exists():
                self._discard_corrupt(key)
            self.stats.misses += 1
            return None
        try:
            if manifest.get("version") != ARTIFACT_FORMAT_VERSION:
                raise ValueError("artifact format version mismatch")
            if manifest.get("key") != key:
                raise ValueError("manifest key mismatch")
            payload = payload_path.read_bytes()
            digest = hashlib.sha256(payload).hexdigest()
            if digest != manifest.get("digest"):
                raise ValueError("payload digest mismatch")
            with np.load(io.BytesIO(payload), allow_pickle=False) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        except (OSError, ValueError, KeyError, EOFError):
            self._discard_corrupt(key)
            self.stats.misses += 1
            return None
        meta = manifest.get("meta")
        if not isinstance(meta, dict):
            meta = {}
        self._touch(manifest_path, payload_path)
        self.stats.hits += 1
        self.stats.bytes_read += len(payload)
        return arrays, meta

    def _touch(self, *paths: Path) -> None:
        """Refresh the LRU recency stamp on a hit."""
        now = self.clock()
        for path in paths:
            try:
                os.utime(path, (now, now))
            except OSError:
                continue

    def _discard_corrupt(self, key: str) -> None:
        self.stats.corrupt_discarded += 1
        for path in (self._manifest_path(key), self._payload_path(key)):
            try:
                path.unlink()
            except OSError:
                continue

    # -- save ----------------------------------------------------------

    def save(
        self,
        key: str,
        arrays: dict[str, np.ndarray],
        meta: Optional[dict[str, Any]] = None,
    ) -> bool:
        """Persist ``arrays`` (+ JSON-able ``meta``) under ``key``.

        Returns False — never raises — when the write cannot complete
        (disk full, permissions, unserializable meta): the store is an
        accelerator, not a dependency.
        """
        try:
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            payload = buffer.getvalue()
            manifest = json.dumps(
                {
                    "key": key,
                    "version": ARTIFACT_FORMAT_VERSION,
                    "digest": hashlib.sha256(payload).hexdigest(),
                    "nbytes": len(payload),
                    "meta": meta or {},
                },
                sort_keys=True,
            )
            root = Path(self.root)
            root.mkdir(parents=True, exist_ok=True)
            self._publish(root, payload, self._payload_path(key))
            self._publish(root, manifest.encode("utf-8"), self._manifest_path(key))
        except (OSError, ValueError, TypeError):
            self.stats.store_failures += 1
            return False
        self.stats.stores += 1
        self.stats.bytes_written += len(payload)
        self._touch(self._manifest_path(key), self._payload_path(key))
        self._evict_over_budget(keep=key)
        return True

    def _publish(self, root: Path, data: bytes, destination: Path) -> None:
        """Stage ``data`` as a sibling temporary, then atomically rename."""
        fd, tmp_name = tempfile.mkstemp(
            dir=root, prefix=".tmp-", suffix=destination.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, destination)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- eviction ------------------------------------------------------

    def _artifact_nbytes(self, key: str) -> int:
        total = 0
        for path in (self._manifest_path(key), self._payload_path(key)):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        """Drop least-recently-used artifacts until the store fits.

        The just-saved key is evicted last (only when it alone exceeds the
        budget — mirroring the service cache's oversized-entry policy).
        """
        ordered = self.keys()
        if keep is not None and keep in ordered:
            ordered.remove(keep)
            ordered.append(keep)
        sizes = {key: self._artifact_nbytes(key) for key in ordered}
        total = sum(sizes.values())
        for key in ordered:
            if total <= self.max_bytes:
                return
            self._evict(key)
            total -= sizes[key]

    def _evict(self, key: str) -> None:
        self.stats.evictions += 1
        for path in (self._manifest_path(key), self._payload_path(key)):
            try:
                path.unlink()
            except OSError:
                continue
