"""Content-addressed keys for the persistent artifact store.

A store hit must be **bit-identical by construction** to regenerating the
artifact, so every key captures the *exact generation recipe*:

* a **graph fingerprint** — SHA-256 over the six CSR arrays' raw bytes,
  their dtypes, the storage policy, and ``(n, m)``.  Any change to the
  graph (weights included) changes the fingerprint, so stale artifacts can
  never be served for a mutated graph;
* a **model key** — the diffusion model's class, public ``name``, and any
  item parameters (the topic-aware mixture weights);
* the **generation parameters** — counts, batch sizes, root-drawer
  configuration — supplied by the caller as plain JSON-able fields;
* the **randomness recipe** — either a digest of the caller Generator's
  exact bit-generator state (single-stream path) or the chunk-root
  ``SeedSequence`` entropy plus its spawn offset (sharded path);
* the :data:`ARTIFACT_FORMAT_VERSION`, so a layout change invalidates
  every existing artifact instead of misreading it.

Keys are rendered as ``<kind>-<sha256 of the canonical JSON>`` — stable
across processes and platforms because the JSON is serialized with sorted
keys and no whitespace.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

#: Bumped whenever the payload layout or key schema changes; part of every
#: key, so old artifacts become unreachable (and eventually evicted) rather
#: than misread.
ARTIFACT_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json.dumps`` succeeds.

    Bit-generator state dicts mix plain ints (PCG64) with ndarrays
    (Philox, MT19937); both must serialize canonically.
    """
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def canonical_json(fields: Any) -> str:
    """Deterministic JSON rendering (sorted keys, compact separators)."""
    return json.dumps(_jsonable(fields), sort_keys=True, separators=(",", ":"))


def graph_fingerprint(graph: Any) -> str:
    """SHA-256 over the six CSR arrays + dtypes + storage policy + (n, m)."""
    digest = hashlib.sha256()
    digest.update(f"n={graph.n};m={graph.m};storage={graph.storage}".encode())
    for indptr, indices, probs in (graph.out_csr, graph.in_csr):
        for array in (indptr, indices, probs):
            digest.update(str(array.dtype).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def model_key(model: Any) -> str:
    """Identity of a diffusion model: class, public name, item parameters."""
    parts = [type(model).__name__, str(getattr(model, "name", ""))]
    mixture = getattr(model, "mixture", None)
    if mixture is not None:
        weights = getattr(mixture, "weights", mixture)
        parts.append(canonical_json(list(weights)))
    return "/".join(parts)


def rng_state_token(rng: np.random.Generator) -> str:
    """Digest of a Generator's exact bit-generator state.

    Two Generators produce identical draw sequences iff their states match,
    so keying on this token makes a hit bit-identical by construction —
    provided the stored post-generation state is restored on load (see
    :func:`restore_generator_state`).
    """
    state = rng.bit_generator.state
    return hashlib.sha256(canonical_json(state).encode()).hexdigest()


def generator_state(rng: np.random.Generator) -> dict[str, Any]:
    """The Generator's state as a JSON-able dict (for manifest metadata)."""
    state = _jsonable(rng.bit_generator.state)
    if not isinstance(state, dict):  # pragma: no cover - defensive
        raise TypeError(f"unexpected bit-generator state type: {type(state)}")
    return state


def restore_generator_state(rng: np.random.Generator, state: Any) -> bool:
    """Restore a previously captured state onto ``rng``; False on mismatch.

    A False return means the hit cannot guarantee downstream bit-identity
    (e.g. the manifest was produced by a different bit-generator family),
    so the caller must fall back to regeneration.
    """
    if not isinstance(state, dict):
        return False
    if state.get("bit_generator") != type(rng.bit_generator).__name__:
        return False
    try:
        rng.bit_generator.state = state
    except (KeyError, TypeError, ValueError):
        return False
    return True


def artifact_key(kind: str, fields: dict[str, Any]) -> str:
    """Render a content-addressed key: ``<kind>-<sha256(recipe JSON)>``.

    The :data:`ARTIFACT_FORMAT_VERSION` is folded into every digest, so a
    format bump invalidates the whole store without touching it.
    """
    recipe = dict(fields)
    recipe["__kind__"] = kind
    recipe["__version__"] = ARTIFACT_FORMAT_VERSION
    digest = hashlib.sha256(canonical_json(recipe).encode()).hexdigest()
    return f"{kind}-{digest}"
