"""The always-on seed-selection service.

A stdlib-asyncio NDJSON server over the library's solvers and
estimators, built for robustness: per-request monotonic deadlines,
bounded admission with typed load shedding, a byte-budget cache of
graphs and warm mRR pools behind per-key circuit breakers, graceful
degradation to in-process execution when the worker pool exhausts its
fault budgets, and drain-then-exit shutdown.  Every response ``result``
is bit-identical to a cold offline ``jobs=1`` run of the same request
seed — see :mod:`repro.service.server` for the full contract.
"""

from repro.service.cache import CacheStats, ServiceCache
from repro.service.client import ServiceClient, ServiceThread
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPERATIONS,
    ProtocolError,
    Request,
    encode_reply,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.service.server import SeedService, ServiceConfig, run_service

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "OPERATIONS",
    "CacheStats",
    "ProtocolError",
    "Request",
    "SeedService",
    "ServiceCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
    "encode_reply",
    "error_reply",
    "ok_reply",
    "parse_request",
    "run_service",
]
