"""The service wire protocol: newline-delimited JSON requests and replies.

One request per line, one reply per line, over TCP or stdio::

    {"op": "estimate", "id": "q1", "seed": 7,
     "params": {"dataset": "nethept-sim", "n": 300, "eta": 30,
                "seeds": [0, 3, 7], "theta": 2000}}
    {"id": "q1", "ok": true, "op": "estimate",
     "result": {"estimate": 21.9, ...}, "ms": 41.7}

Three operations: ``solve`` (one adaptive ASM run), ``estimate`` (mRR
truncated-spread estimate of a given seed set), and ``health`` (service
counters; bypasses admission control).  ``seed`` is the request's root
random seed — the whole response ``result`` body is a pure function of
``(op, seed, params)``, bit-identical to a cold offline ``jobs=1`` run of
the same request, which is what the chaos load gate asserts.  ``ms``
lives in the reply *envelope*, never in ``result``, so timing noise can
never leak into the deterministic payload.

A failed request is a typed error reply on the same line — the connection
is never dropped::

    {"id": "q1", "ok": false,
     "error": {"code": "overloaded", "message": "..."}}

Error codes (stable): ``invalid_request``, ``overloaded``,
``deadline_exceeded``, ``infeasible``, ``shutting_down``, ``internal``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ServiceError

#: Operations the server understands.
OPERATIONS = ("solve", "estimate", "health")

#: Stable wire error codes (the protocol contract; tests pin these).
ERROR_CODES = (
    "invalid_request",
    "overloaded",
    "deadline_exceeded",
    "infeasible",
    "shutting_down",
    "internal",
)

#: Hard ceiling on one request line; beyond this the request is rejected
#: (typed ``invalid_request``) before JSON parsing even starts.
MAX_LINE_BYTES = 1_000_000


class ProtocolError(ServiceError):
    """A request line that cannot be turned into a valid :class:`Request`."""

    code = "invalid_request"

    def __init__(self, message: str, request_id: Optional[str] = None):
        self.request_id = request_id
        super().__init__(message)


@dataclass(frozen=True)
class Request:
    """One parsed, validated request."""

    op: str
    id: str
    seed: int = 0
    deadline_ms: Optional[float] = None
    params: dict[str, Any] = field(default_factory=dict)


def parse_request(line: bytes) -> Request:
    """Decode and validate one request line.

    Raises :class:`ProtocolError` (carrying the request id when one could
    be recovered) on anything malformed; the server turns that into a
    typed ``invalid_request`` reply rather than closing the connection.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request 'id' must be a non-empty string")
    op = payload.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"request 'op' must be one of {list(OPERATIONS)}, got {op!r}",
            request_id,
        )
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ProtocolError(
            f"request 'seed' must be a non-negative integer, got {seed!r}",
            request_id,
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float))
        or isinstance(deadline_ms, bool)
        or deadline_ms < 0
    ):
        raise ProtocolError(
            f"request 'deadline_ms' must be a non-negative number or null, "
            f"got {deadline_ms!r}",
            request_id,
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            "request 'params' must be a JSON object", request_id
        )
    return Request(
        op=op,
        id=request_id,
        seed=seed,
        deadline_ms=None if deadline_ms is None else float(deadline_ms),
        params=params,
    )


def ok_reply(
    request_id: str, op: str, result: dict[str, Any], ms: float
) -> dict[str, Any]:
    """A success envelope; ``result`` is the deterministic payload."""
    return {
        "id": request_id,
        "ok": True,
        "op": op,
        "result": result,
        "ms": round(ms, 3),
    }


def error_reply(
    request_id: Optional[str],
    code: str,
    message: str,
    **details: Any,
) -> dict[str, Any]:
    """A typed error envelope (``id`` may be null for unparsable lines)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(details)
    return {"id": request_id, "ok": False, "error": error}


def encode_reply(reply: dict[str, Any]) -> bytes:
    """Serialize one reply to its wire line (sorted keys, one ``\\n``)."""
    return json.dumps(reply, sort_keys=True).encode("utf-8") + b"\n"
