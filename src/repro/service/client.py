"""Blocking NDJSON client and an in-process server harness.

:class:`ServiceClient` speaks the wire protocol over one TCP connection
— send a request dict, read one reply line — and is what the load
benchmark, the tests, and the example session all use, so the protocol
has exactly one client implementation to drift out of sync.

:class:`ServiceThread` runs a :class:`~repro.service.server.SeedService`
on a daemon thread with its own event loop, exposing the bound port once
the listener is up.  Tests and benchmarks use it to stand up a real
server (real sockets, real admission control) inside one process without
managing a subprocess; ``drain()`` triggers the same drain-then-exit
path a SIGTERM would.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any, Optional

from repro.errors import ServiceError
from repro.service.protocol import MAX_LINE_BYTES
from repro.service.server import SeedService, ServiceConfig


class ServiceClient:
    """One blocking NDJSON connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object and block for its reply."""
        self.send(payload)
        return self.read_reply()

    def send(self, payload: dict[str, Any]) -> None:
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def send_raw(self, line: bytes) -> None:
        """Ship raw bytes (tests exercise malformed lines through this)."""
        self._sock.sendall(line)

    def read_reply(self) -> dict[str, Any]:
        line = self._file.readline(MAX_LINE_BYTES * 2)
        if not line:
            raise ServiceError("server closed the connection")
        reply = json.loads(line.decode("utf-8"))
        if not isinstance(reply, dict):
            raise ServiceError(f"reply is not an object: {reply!r}")
        return reply

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServiceThread:
    """A real :class:`SeedService` on a background thread.

    ``with ServiceThread(config) as harness:`` yields once the listener
    is bound; ``harness.port`` is the ephemeral port, ``harness.connect()``
    returns a fresh :class:`ServiceClient`, and leaving the block drains
    the server and joins the thread.
    """

    def __init__(self, config: ServiceConfig, startup_timeout: float = 30.0):
        if config.stdio:
            raise ServiceError("ServiceThread drives TCP mode only")
        self.service = SeedService(config)
        self._startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-thread", daemon=True
        )

    @property
    def port(self) -> int:
        port = self.service.port
        if port is None:
            raise ServiceError("service is not listening yet")
        return port

    def start(self) -> ServiceThread:
        self._thread.start()
        if not self.service.ready.wait(timeout=self._startup_timeout):
            raise ServiceError(
                f"service failed to start within {self._startup_timeout}s"
            )
        if self._failure is not None:
            raise ServiceError("service failed to start") from self._failure
        return self

    def connect(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.service.config.host, self.port, timeout=timeout)

    def drain(self) -> None:
        """Trigger drain-then-exit (what SIGTERM does) and join."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.begin_drain)
        self._thread.join(timeout=self._startup_timeout)
        if self._thread.is_alive():
            raise ServiceError("service did not drain in time")
        if self._failure is not None:
            raise ServiceError("service crashed") from self._failure

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()/drain()
            self._failure = exc
            self.service.ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._loop_ready.set()
        await self.service.run()

    def __enter__(self) -> ServiceThread:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.drain()
