"""The always-on seed-selection server.

A stdlib-asyncio NDJSON server (TCP or stdio; see
:mod:`repro.service.protocol`) built around one robustness spine:

* **admission control** — at most ``max_in_flight`` requests compute at
  once (an :class:`asyncio.Semaphore` over a thread pool of the same
  size) and at most ``max_queue`` more may wait; beyond that a request
  is *shed* with a typed ``overloaded`` reply — the connection is never
  dropped;
* **deadlines** — each request's ``deadline_ms`` becomes a monotonic
  :class:`~repro.utils.timing.Deadline` at admission (so queue time
  counts).  Expiry while queued answers without running anything; expiry
  while running abandons the compute thread (it finishes in the
  background, bounded by the executor) and answers immediately — both
  are structured ``deadline_exceeded`` replies naming the stage;
* **cross-request cache** — graphs and warm mRR pools in a byte-budget
  LRU with revalidation-on-hit and a per-key circuit breaker
  (:mod:`repro.service.cache`); all cache access happens on the event
  loop thread, so no lock is needed;
* **graceful degradation** — a request whose shared worker pool exhausts
  its :class:`~repro.parallel.runtime.FaultPolicy` budgets
  (``WorkerPoolError``) is transparently re-run on an in-process
  ``jobs=1`` context — bit-identical bytes by the chunk-indexed seeding
  invariant — and the shared runtime is quarantined for
  ``quarantine_seconds`` before a fresh pool is built;
* **drain-then-exit** — SIGTERM/SIGINT (or EOF in stdio mode) stops
  accepting work, lets every admitted request finish and flush its
  reply, then tears down the executor, the runtime, and the sockets.

Determinism contract: each request derives its own
:class:`~repro.runtime.context.ExecutionContext` from the request seed,
and every context routes sampling through the chunk-seeded scheme
(``jobs >= 1``), so the ``result`` body is bit-identical to a cold
offline ``jobs=1`` run of the same request no matter the server's
``--jobs``, cache state, or any mid-request recovery.  With a shared
runtime, engine dispatch is serialized by a lock (the runtime is not
thread-safe); parallelism then comes from the worker pool, while
``jobs=1`` services run requests concurrently across handler threads.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, TextIO

from repro.errors import (
    ConfigurationError,
    GraphError,
    InfeasibleTargetError,
    ReproError,
    SamplingError,
    ServiceError,
    WorkerPoolError,
)
from repro.graph.digraph import DiGraph
from repro.parallel.runtime import FaultPolicy, ParallelRuntime
from repro.runtime.context import ExecutionContext
from repro.sampling.mrr import CarriedMRRPool
from repro.service import handlers
from repro.service.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_COOLDOWN_SECONDS,
    DEFAULT_FAILURE_THRESHOLD,
    ServiceCache,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_reply,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.store import PoolStore, artifact_key
from repro.testing.faults import (
    FaultInjection,
    ServiceFaultInjection,
    corrupt_carried_pool,
    kill_one_worker,
    service_slow_handler,
)
from repro.utils.timing import Deadline, Stopwatch


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one server instance needs, frozen at construction."""

    host: str = "127.0.0.1"
    port: int = 0
    stdio: bool = False
    jobs: int = 1
    max_in_flight: int = 4
    max_queue: int = 16
    cache_bytes: int = DEFAULT_CACHE_BYTES
    breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD
    breaker_cooldown: float = DEFAULT_COOLDOWN_SECONDS
    quarantine_seconds: float = 30.0
    kernel_backend: str = "auto"
    #: Persistent artifact store directory (None = memory-only cache).
    #: On boot the cache warm-starts from spilled pool snapshots; on
    #: drain the live pool entries are spilled back (see ``--pool-store``).
    pool_store: Optional[str] = None
    fault_policy: Optional[FaultPolicy] = None
    #: Chaos only: wrapped around the shared runtime's worker submissions.
    worker_injection: Optional[FaultInjection] = None
    #: Chaos only: service-level faults fired by admitted-request index.
    service_injections: tuple[ServiceFaultInjection, ...] = ()

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )
        if not self.quarantine_seconds >= 0.0:
            raise ConfigurationError(
                f"quarantine_seconds must be >= 0, got {self.quarantine_seconds}"
            )


class SeedService:
    """One server instance; :meth:`run` is the whole lifecycle."""

    def __init__(self, config: ServiceConfig, log: Optional[TextIO] = None):
        self.config = config
        self.port: Optional[int] = None
        #: Set once the listener is bound (TCP) or stdio is wired — safe
        #: to read from other threads (tests start :meth:`run` in one).
        self.ready = threading.Event()
        self.cache = ServiceCache(
            max_bytes=config.cache_bytes,
            failure_threshold=config.breaker_threshold,
            cooldown_seconds=config.breaker_cooldown,
        )
        self.counters: dict[str, int] = {
            "requests_total": 0,
            "requests_ok": 0,
            "requests_failed": 0,
            "shed_overloaded": 0,
            "deadline_queued": 0,
            "deadline_running": 0,
            "degraded_requests": 0,
            "carry_adopted": 0,
            "carry_discarded": 0,
            "shutting_down_replies": 0,
            "store_warm_loaded": 0,
            "store_spilled": 0,
        }
        self.store: Optional[PoolStore] = (
            PoolStore(config.pool_store) if config.pool_store else None
        )
        self._log = log if log is not None else sys.stderr
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_in_flight,
            thread_name_prefix="repro-service",
        )
        self._pending = 0
        self._admitted = 0
        self._draining = False
        self._conn_tasks: set[asyncio.Task[None]] = set()
        # Shared-runtime state (jobs >= 2): guarded by _runtime_lock
        # because compute happens on handler threads.
        self._runtime: Optional[ParallelRuntime] = None
        self._runtime_lock = threading.Lock()
        self._quarantine: Optional[Deadline] = None
        self._warm_start_cache()

    # ------------------------------------------------------------------
    # Persistent pool store (warm-start / spill)
    # ------------------------------------------------------------------

    def _warm_start_cache(self) -> None:
        """Reload spilled pool snapshots from the persistent store.

        Runs once at construction, before the listener binds, so the
        first request after a restart can adopt a pool the previous
        incarnation spilled on drain.  Loads are digest-verified by the
        store; anything unreadable is silently discarded (the cache just
        starts cold for that key).  Revalidation-on-hit still guards
        every adoption, so a stale snapshot can degrade only the
        speedup, never the reply bytes.
        """
        if self.store is None:
            return
        for store_key in self.store.keys():
            if not store_key.startswith("service-"):
                continue
            loaded = self.store.load(store_key)
            if loaded is None:
                continue
            arrays, meta = loaded
            raw_key = meta.get("service_key")
            if not isinstance(raw_key, list):
                continue
            try:
                pool = CarriedMRRPool(
                    members=arrays["members"],
                    indptr=arrays["indptr"],
                    root_counts=arrays["root_counts"],
                )
            except KeyError:
                continue
            cache_key: tuple[Any, ...] = tuple(raw_key)
            if self.cache.put(
                cache_key, pool, handlers.carried_pool_nbytes(pool)
            ):
                self.counters["store_warm_loaded"] += 1

    def _spill_cache(self) -> None:
        """Write the cache's live pool entries to the persistent store.

        Runs on drain (event-loop thread, after every admitted request
        settled).  Only pool snapshots spill — graph entries are cheap
        to rebuild from the dataset loader.  ``save`` never raises, so a
        full disk or a lost directory degrades to a cold next boot.
        """
        if self.store is None:
            return
        for cache_key, value, _nbytes in self.cache.entries():
            if not (cache_key and cache_key[0] == "pool"):
                continue
            if not isinstance(value, CarriedMRRPool):
                continue
            store_key = artifact_key(
                "service", {"service_key": list(cache_key)}
            )
            saved = self.store.save(
                store_key,
                {
                    "members": value.members,
                    "indptr": value.indptr,
                    "root_counts": value.root_counts,
                },
                {"service_key": list(cache_key)},
            )
            if saved:
                self.counters["store_spilled"] += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop accepting work; finish what was admitted; then exit.

        Idempotent; must be called on the event-loop thread (the signal
        handlers are; tests use ``loop.call_soon_threadsafe``).
        """
        if self._draining:
            return
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(self) -> None:
        """Serve until drained (signal or stdio EOF), then clean up."""
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.config.max_in_flight)
        self._drain_requested = asyncio.Event()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.begin_drain)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
        try:
            if self.config.stdio:
                await self._run_stdio()
            else:
                await self._run_tcp()
        finally:
            for signum in installed:
                self._loop.remove_signal_handler(signum)
            self._spill_cache()
            self._executor.shutdown(wait=True, cancel_futures=True)
            with self._runtime_lock:
                if self._runtime is not None:
                    self._runtime.close()
                    self._runtime = None

    async def _run_tcp(self) -> None:
        server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=2 * MAX_LINE_BYTES,
        )
        self.port = int(server.sockets[0].getsockname()[1])
        self.ready.set()
        print(
            f"repro-serve: listening on {self.config.host}:{self.port}",
            file=self._log,
            flush=True,
        )
        assert self._drain_requested is not None
        async with server:
            await self._drain_requested.wait()
            server.close()
            await server.wait_closed()
            await self._drain_in_flight()

    async def _run_stdio(self) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=2 * MAX_LINE_BYTES)
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(lambda: protocol, sys.stdin)
        transport, write_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, write_protocol, None, loop)
        self.ready.set()
        print("repro-serve: serving on stdio", file=self._log, flush=True)
        assert self._drain_requested is not None
        while not self._draining:
            line_task = asyncio.ensure_future(reader.readline())
            drain_task = asyncio.ensure_future(self._drain_requested.wait())
            done, _ = await asyncio.wait(
                {line_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
            )
            drain_task.cancel()
            if line_task not in done:
                line_task.cancel()
                break
            line = line_task.result()
            if not line:  # EOF: the stdio session is over — drain.
                self.begin_drain()
                break
            if line.strip():
                writer.write(encode_reply(await self._serve_line(line)))
                await writer.drain()
        await self._drain_in_flight()
        writer.close()

    async def _drain_in_flight(self) -> None:
        """Wait for every admitted request to settle and reply."""
        while self._pending > 0:
            await asyncio.sleep(0.02)
        if self._conn_tasks:
            # Replies were computed; give connection tasks a beat to
            # flush them, then cancel whatever is idle in readline().
            _, still_open = await asyncio.wait(self._conn_tasks, timeout=0.5)
            for task in still_open:
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversize line with no newline in sight: reply once,
                    # then close — there is no way to resynchronize.
                    writer.write(encode_reply(error_reply(
                        None, "invalid_request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                writer.write(encode_reply(await self._serve_line(line)))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Request pipeline (event-loop thread unless noted)
    # ------------------------------------------------------------------

    async def _serve_line(self, line: bytes) -> dict[str, Any]:
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.counters["requests_failed"] += 1
            return error_reply(exc.request_id, exc.code, str(exc))
        return await self._serve_request(request)

    async def _serve_request(self, request: Request) -> dict[str, Any]:
        self.counters["requests_total"] += 1
        if request.op == "health":
            return ok_reply(request.id, "health", self._health(), 0.0)
        if self._draining:
            self.counters["shutting_down_replies"] += 1
            self.counters["requests_failed"] += 1
            return error_reply(
                request.id, "shutting_down",
                "server is draining; no new work is admitted",
            )
        # Admission: bounded queue, load shedding, never a dropped line.
        if self._pending >= self.config.max_in_flight + self.config.max_queue:
            self.counters["shed_overloaded"] += 1
            self.counters["requests_failed"] += 1
            return error_reply(
                request.id, "overloaded",
                f"admission queue is full ({self._pending} pending); retry",
                retry_after_ms=100,
            )
        self._pending += 1
        admitted_index = self._admitted
        self._admitted += 1
        deadline = Deadline.after(
            None if request.deadline_ms is None else request.deadline_ms / 1000.0
        )
        try:
            reply = await self._execute(request, admitted_index, deadline)
        finally:
            self._pending -= 1
        if reply.get("ok"):
            self.counters["requests_ok"] += 1
        else:
            self.counters["requests_failed"] += 1
        return reply

    async def _execute(
        self, request: Request, admitted_index: int, deadline: Deadline
    ) -> dict[str, Any]:
        assert self._semaphore is not None and self._loop is not None
        watch = Stopwatch()
        try:
            plan = handlers.build_plan(request)
        except ProtocolError as exc:
            return error_reply(request.id, exc.code, str(exc))
        async with self._semaphore:
            if deadline.expired:
                self.counters["deadline_queued"] += 1
                return error_reply(
                    request.id, "deadline_exceeded",
                    f"deadline of {request.deadline_ms:.0f}ms expired in the "
                    f"admission queue",
                    stage="queued",
                )
            graph = self.cache.get(plan.graph_key)
            carry = self._carry_for(request, plan, admitted_index)
            future = self._loop.run_in_executor(
                self._executor,
                self._compute, plan, request.op, admitted_index, graph, carry,
            )
            try:
                with watch:
                    outcome = await asyncio.wait_for(
                        future, timeout=deadline.remaining()
                    )
            except asyncio.TimeoutError:
                self.counters["deadline_running"] += 1
                return error_reply(
                    request.id, "deadline_exceeded",
                    f"deadline of {request.deadline_ms:.0f}ms expired while "
                    f"running (compute abandoned)",
                    stage="running",
                )
            except InfeasibleTargetError as exc:
                return error_reply(request.id, "infeasible", str(exc))
            except (ConfigurationError, SamplingError, GraphError) as exc:
                return error_reply(request.id, "invalid_request", str(exc))
            except ServiceError as exc:
                return error_reply(request.id, exc.code, str(exc))
            except ReproError as exc:
                return error_reply(request.id, "internal", str(exc))
        # Settle (loop thread): cache writes, breaker strikes, envelope.
        result, loaded_graph, carry_out, carry_status, degraded = outcome
        if graph is None and loaded_graph is not None:
            self.cache.put(
                plan.graph_key, loaded_graph, int(loaded_graph.csr_nbytes)
            )
        if isinstance(plan, handlers.EstimatePlan):
            if carry_status == handlers.CARRY_DISCARDED:
                self.counters["carry_discarded"] += 1
                self.cache.discard(plan.pool_key)
            elif carry_status == handlers.CARRY_ADOPTED:
                self.counters["carry_adopted"] += 1
                self.cache.succeed(plan.pool_key)
            if carry_out is not None:
                self.cache.put(
                    plan.pool_key, carry_out,
                    handlers.carried_pool_nbytes(carry_out),
                )
        if degraded:
            self.counters["degraded_requests"] += 1
        reply = ok_reply(request.id, request.op, result, watch.elapsed * 1000.0)
        reply["meta"] = {"carry": carry_status, "degraded": degraded}
        return reply

    def _carry_for(
        self, request: Request, plan: handlers.Plan, admitted_index: int
    ) -> Optional[CarriedMRRPool]:
        if request.op != "estimate" or not isinstance(
            plan, handlers.EstimatePlan
        ):
            return None
        carry = self.cache.get(plan.pool_key)
        if carry is not None and self._fires(admitted_index, "cache_corrupt"):
            carry = corrupt_carried_pool(carry)
        return carry

    def _fires(self, admitted_index: int, kind: str) -> bool:
        return any(
            spec.kind == kind and spec.fires(admitted_index)
            for spec in self.config.service_injections
        )

    def _injection_delay(self, admitted_index: int) -> Optional[float]:
        for spec in self.config.service_injections:
            if spec.kind == "slow_handler" and spec.fires(admitted_index):
                return spec.delay_seconds
        return None

    # ------------------------------------------------------------------
    # Compute phase (handler threads)
    # ------------------------------------------------------------------

    def _compute(
        self,
        plan: handlers.Plan,
        op: str,
        admitted_index: int,
        graph: Optional[DiGraph],
        carry: Optional[CarriedMRRPool],
    ) -> tuple[
        dict[str, Any], Optional[DiGraph], Optional[CarriedMRRPool], str, bool
    ]:
        """Pure compute; returns ``(result, loaded_graph, carry_out,
        carry_status, degraded)`` for the loop-thread settle phase."""
        delay = self._injection_delay(admitted_index)
        if delay is not None:
            service_slow_handler(delay)
        loaded: Optional[DiGraph] = None
        if graph is None:
            graph = loaded = handlers.load_graph(plan)
        runtime = self._shared_runtime()
        if runtime is not None:
            # The shared runtime is not safe for concurrent dispatch:
            # serialize engine execution; parallelism comes from its
            # worker pool, not from overlapping handler threads.
            with self._runtime_lock:
                if self._fires(admitted_index, "pool_kill"):
                    kill_one_worker(runtime)
                try:
                    result, carry_out, status = self._run_plan(
                        graph, plan, op, runtime, carry
                    )
                    return result, loaded, carry_out, status, False
                except WorkerPoolError:
                    # Budgets exhausted: quarantine the pool and fall
                    # through to the bit-identical in-process route.
                    self._quarantine_runtime_locked()
        result, carry_out, status = self._run_plan(graph, plan, op, None, carry)
        return result, loaded, carry_out, status, runtime is not None

    def _run_plan(
        self,
        graph: DiGraph,
        plan: handlers.Plan,
        op: str,
        runtime: Optional[ParallelRuntime],
        carry: Optional[CarriedMRRPool],
    ) -> tuple[dict[str, Any], Optional[CarriedMRRPool], str]:
        sample_batch = (
            plan.batch_size
            if isinstance(plan, handlers.EstimatePlan)
            else plan.sample_batch_size
        )
        context = ExecutionContext(
            sample_batch_size=sample_batch,
            jobs=1,
            kernel_backend=self.config.kernel_backend,
            fault_policy=self.config.fault_policy,
        )
        if runtime is not None:
            context.attach_runtime(runtime)
        try:
            if op == "estimate" and isinstance(plan, handlers.EstimatePlan):
                outcome = handlers.run_estimate(graph, plan, context, carry)
                return outcome.result, outcome.carry, outcome.carry_status
            assert isinstance(plan, handlers.SolvePlan)
            return (
                handlers.run_solve(graph, plan, context),
                None,
                handlers.CARRY_NONE,
            )
        finally:
            context.close()

    # ------------------------------------------------------------------
    # Shared-runtime lifecycle (jobs >= 2)
    # ------------------------------------------------------------------

    def _shared_runtime(self) -> Optional[ParallelRuntime]:
        if self.config.jobs < 2:
            return None
        with self._runtime_lock:
            if self._quarantine is not None:
                if not self._quarantine.expired:
                    return None
                self._quarantine = None  # cooldown over: rebuild below
            if self._runtime is None:
                self._runtime = ParallelRuntime(
                    self.config.jobs,
                    fault_policy=self.config.fault_policy,
                    injection=self.config.worker_injection,
                )
            return self._runtime

    def _quarantine_runtime_locked(self) -> None:
        """Close the shared runtime and start its cooldown (lock held)."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None
        self._quarantine = Deadline.after(self.config.quarantine_seconds)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def _health(self) -> dict[str, Any]:
        with self._runtime_lock:
            runtime = self._runtime
            fault_stats = None if runtime is None else runtime.fault_stats
            quarantined = (
                self._quarantine is not None and not self._quarantine.expired
            )
        if self._draining:
            status = "draining"
        elif quarantined or self.counters["degraded_requests"]:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "jobs": self.config.jobs,
            "pending": self._pending,
            "counters": dict(self.counters),
            "cache": {
                "entries": len(self.cache),
                "bytes": self.cache.total_bytes,
                **self.cache.stats.as_dict(),
            },
            "store": (
                None
                if self.store is None
                else {
                    "root": str(self.store.root),
                    **self.store.stats.as_dict(),
                }
            ),
            "runtime": {
                "quarantined": quarantined,
                "fault_stats": fault_stats,
            },
        }


def run_service(
    config: ServiceConfig,
    log: Optional[TextIO] = None,
    on_ready: Optional[Callable[[SeedService], None]] = None,
) -> int:
    """Blocking entry point used by the CLI ``serve`` command.

    Runs one :class:`SeedService` to completion (drain via signal or
    stdio EOF) and returns a process exit code.  ``on_ready`` fires on
    the event-loop thread right after the listener binds — the CLI
    prints the bound port there.
    """
    service = SeedService(config, log=log)

    async def _main() -> None:
        watcher: Optional[asyncio.Task[None]] = None
        if on_ready is not None:
            callback = on_ready

            async def _watch_ready() -> None:
                while not service.ready.is_set():
                    await asyncio.sleep(0.01)
                callback(service)

            watcher = asyncio.ensure_future(_watch_ready())
        try:
            await service.run()
        finally:
            if watcher is not None:
                watcher.cancel()

    asyncio.run(_main())
    return 0
