"""Request handlers: pure compute, bit-identical to offline runs.

The server splits every request into three phases; this module is the
middle one, and the only one that runs off the event loop (in a worker
thread of the admission executor):

1. **plan** (event loop) — :func:`build_plan` validates ``params`` into a
   frozen plan carrying the cache keys;
2. **compute** (worker thread) — :func:`run_solve` / :func:`run_estimate`
   execute the plan against the library under a per-request
   :class:`~repro.runtime.context.ExecutionContext` derived from the
   request seed.  The result payload is a pure function of
   ``(op, seed, params)`` — warm pools, shared runtimes, retries, and
   degraded re-runs can change *where* and *how fast* the work happens,
   never the bytes;
3. **settle** (event loop) — the server stores the returned carry
   snapshot / strikes the circuit breaker and writes the reply.

Cross-request pool reuse: an estimate's finished mRR pool is exported
(:meth:`~repro.sampling.mrr.MRRCollection.export_carry`) against the full
graph's :func:`~repro.graph.residual.initial_residual` and offered to the
next request with the **exact same** pool key.  Adoption demands full
survival of :meth:`~repro.sampling.mrr.CarriedMRRPool.revalidate` — all
``theta`` sets intact — so a hit replays the cold run's pool verbatim;
anything less (a corrupted cache entry, a tampered root count) discards
the carry and rebuilds from scratch, trading the speedup for unchanged
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.core.asti import ASTI
from repro.diffusion.base import DiffusionModel
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.experiments import datasets
from repro.graph.digraph import DiGraph
from repro.graph.residual import initial_residual
from repro.runtime.context import ExecutionContext
from repro.sampling.engine import DEFAULT_BATCH_SIZE
from repro.sampling.mrr import CarriedMRRPool, MRRCollection
from repro.service.protocol import ProtocolError, Request

CacheKey = tuple[Any, ...]

#: How a request's pool carry-over went (reported in the reply envelope's
#: ``meta``, never in the deterministic ``result`` body).
CARRY_NONE = "none"        # no cached pool was offered
CARRY_ADOPTED = "adopted"  # the cached pool survived revalidation intact
CARRY_DISCARDED = "discarded"  # revalidation rejected it; rebuilt fresh


def _require_int(
    params: dict[str, Any],
    name: str,
    request_id: str,
    *,
    minimum: int,
    default: Optional[int] = None,
    required: bool = False,
) -> Optional[int]:
    value = params.get(name, default)
    if value is None:
        if required:
            raise ProtocolError(f"params.{name} is required", request_id)
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ProtocolError(
            f"params.{name} must be an integer >= {minimum}, got {value!r}",
            request_id,
        )
    return value


def _graph_params(
    params: dict[str, Any], request_id: str
) -> tuple[str, Optional[int], int]:
    dataset = params.get("dataset")
    if dataset not in datasets.dataset_names():
        raise ProtocolError(
            f"params.dataset must be one of {datasets.dataset_names()}, "
            f"got {dataset!r}",
            request_id,
        )
    n = _require_int(params, "n", request_id, minimum=1)
    graph_seed = _require_int(params, "graph_seed", request_id, minimum=0, default=0)
    assert graph_seed is not None
    return dataset, n, graph_seed


def _model_name(params: dict[str, Any], request_id: str) -> str:
    model = params.get("model", "IC")
    if model not in ("IC", "LT"):
        raise ProtocolError(
            f"params.model must be 'IC' or 'LT', got {model!r}", request_id
        )
    return model


@dataclass(frozen=True)
class EstimatePlan:
    """A validated ``estimate`` request, ready to compute."""

    seed: int
    dataset: str
    n: Optional[int]
    graph_seed: int
    model_name: str
    eta: int
    seeds: tuple[int, ...]
    theta: int
    batch_size: int

    @property
    def graph_key(self) -> CacheKey:
        return ("graph", self.dataset, self.n, self.graph_seed)

    @property
    def pool_key(self) -> CacheKey:
        # Exact replay key: every knob that shapes the sampling stream or
        # the chunk schedule is part of it, so a hit is bit-identical to
        # the cold run by construction (seeds queried are NOT part of the
        # key — the pool does not depend on them).
        return (
            "pool",
            self.dataset,
            self.n,
            self.graph_seed,
            self.model_name,
            self.eta,
            self.theta,
            self.seed,
            self.batch_size,
        )


@dataclass(frozen=True)
class SolvePlan:
    """A validated ``solve`` request, ready to compute."""

    seed: int
    dataset: str
    n: Optional[int]
    graph_seed: int
    model_name: str
    eta: int
    epsilon: float
    batch_size: int
    sample_batch_size: int
    max_samples: Optional[int]

    @property
    def graph_key(self) -> CacheKey:
        return ("graph", self.dataset, self.n, self.graph_seed)


Plan = Union[EstimatePlan, SolvePlan]


def build_plan(request: Request) -> Plan:
    """Validate ``request.params`` into a frozen compute plan."""
    params = request.params
    dataset, n, graph_seed = _graph_params(params, request.id)
    model_name = _model_name(params, request.id)
    eta = _require_int(params, "eta", request.id, minimum=1, required=True)
    assert eta is not None
    if request.op == "estimate":
        raw_seeds = params.get("seeds")
        if (
            not isinstance(raw_seeds, list)
            or not raw_seeds
            or not all(
                isinstance(s, int) and not isinstance(s, bool) and s >= 0
                for s in raw_seeds
            )
        ):
            raise ProtocolError(
                "params.seeds must be a non-empty list of node ids",
                request.id,
            )
        theta = _require_int(params, "theta", request.id, minimum=1, default=2000)
        batch = _require_int(
            params, "batch_size", request.id,
            minimum=1, default=DEFAULT_BATCH_SIZE,
        )
        assert theta is not None and batch is not None
        return EstimatePlan(
            seed=request.seed,
            dataset=dataset,
            n=n,
            graph_seed=graph_seed,
            model_name=model_name,
            eta=eta,
            seeds=tuple(raw_seeds),
            theta=theta,
            batch_size=batch,
        )
    if request.op == "solve":
        epsilon = params.get("epsilon", 0.5)
        if (
            not isinstance(epsilon, (int, float))
            or isinstance(epsilon, bool)
            or not 0.0 < float(epsilon) < 1.0
        ):
            raise ProtocolError(
                f"params.epsilon must be in (0, 1), got {epsilon!r}", request.id
            )
        batch = _require_int(params, "batch_size", request.id, minimum=1, default=1)
        sample_batch = _require_int(
            params, "sample_batch_size", request.id,
            minimum=1, default=DEFAULT_BATCH_SIZE,
        )
        assert batch is not None and sample_batch is not None
        return SolvePlan(
            seed=request.seed,
            dataset=dataset,
            n=n,
            graph_seed=graph_seed,
            model_name=model_name,
            eta=eta,
            epsilon=float(epsilon),
            batch_size=batch,
            sample_batch_size=sample_batch,
            max_samples=_require_int(params, "max_samples", request.id, minimum=1),
        )
    raise ProtocolError(f"op {request.op!r} takes no plan", request.id)


def load_graph(plan: Plan) -> DiGraph:
    """Load the plan's graph (deterministic in the graph key)."""
    return datasets.load_dataset(plan.dataset, n=plan.n, seed=plan.graph_seed)


def make_model(name: str) -> DiffusionModel:
    return IndependentCascade() if name == "IC" else LinearThreshold()


@dataclass(frozen=True)
class EstimateOutcome:
    """What the estimate compute hands back to the settle phase."""

    result: dict[str, Any]
    carry: Optional[CarriedMRRPool]
    carry_status: str  # CARRY_NONE / CARRY_ADOPTED / CARRY_DISCARDED


def carried_pool_nbytes(pool: CarriedMRRPool) -> int:
    """The byte budget one cached pool snapshot charges."""
    return int(
        pool.members.nbytes + pool.indptr.nbytes + pool.root_counts.nbytes
    )


def run_estimate(
    graph: DiGraph,
    plan: EstimatePlan,
    context: ExecutionContext,
    carry: Optional[CarriedMRRPool] = None,
) -> EstimateOutcome:
    """Compute one truncated-spread estimate (worker-thread phase).

    Mirrors :func:`repro.sampling.mrr.estimate_truncated_spread_mrr`
    exactly — same collection construction, same growth call, same
    estimator — so the response is bit-identical to that offline
    reference for the same ``(graph, plan, seed)`` regardless of the
    carry, the worker count, or any mid-request recovery.
    """
    residual = initial_residual(graph, plan.eta)
    collection = MRRCollection(
        graph,
        make_model(plan.model_name),
        plan.eta,
        seed=plan.seed,
        batch_size=plan.batch_size,
        context=context,
    )
    carry_status = CARRY_NONE
    if carry is not None:
        kept, diagnostics = carry.revalidate(residual)
        if (
            kept is not None
            and diagnostics.fallback is None
            and diagnostics.sets_carried == diagnostics.sets_offered == plan.theta
        ):
            collection.adopt(*kept)
            carry_status = CARRY_ADOPTED
        else:
            # Anything short of full survival means the entry cannot be
            # an exact replay (corruption, tampering, a stale key):
            # rebuild from scratch and let the server strike the breaker.
            carry_status = CARRY_DISCARDED
    collection.grow_to(plan.theta)
    estimate = collection.estimated_truncated_spread(list(plan.seeds))
    result = {
        "estimate": estimate,
        "eta": plan.eta,
        "theta": plan.theta,
        "seeds": list(plan.seeds),
        "model": plan.model_name,
    }
    new_carry = collection.export_carry(residual)
    return EstimateOutcome(result=result, carry=new_carry, carry_status=carry_status)


def run_solve(
    graph: DiGraph, plan: SolvePlan, context: ExecutionContext
) -> dict[str, Any]:
    """Run one adaptive ASM instance (worker-thread phase).

    The result body carries everything deterministic about the run —
    seeds, spread, per-round marginals, sample counts — and nothing
    timing-dependent (wall-clock lives in the reply envelope).
    """
    algorithm = ASTI(
        make_model(plan.model_name),
        epsilon=plan.epsilon,
        batch_size=plan.batch_size,
        max_samples=plan.max_samples,
        context=context,
    )
    run = algorithm.run(graph, plan.eta, seed=plan.seed)
    return {
        "policy": run.policy_name,
        "eta": run.eta,
        "seeds": [int(s) for s in run.seeds],
        "seed_count": run.seed_count,
        "spread": int(run.spread),
        "achieved": bool(run.achieved_target),
        "rounds": len(run.rounds),
        "total_samples": int(run.total_samples),
        "total_samples_carried": int(run.total_samples_carried),
        "marginal_spreads": [int(m) for m in run.marginal_spreads],
        "model": plan.model_name,
    }
