"""Cross-request cache: graphs and warm mRR pools, safely invalidated.

Two entry kinds share one LRU byte budget:

* **graph entries** — the loaded :class:`~repro.graph.digraph.DiGraph`
  for a ``(dataset, n, graph_seed)`` key.  Holding the *same object*
  across requests is what lets a shared parallel runtime reuse its
  published shared-memory segment (``publish_graph`` is keyed by object
  identity), so with ``--jobs >= 2`` the graph is packed into shm once,
  not once per request.
* **pool entries** — a :class:`~repro.sampling.mrr.CarriedMRRPool`
  snapshot of a finished estimate's mRR pool, generalizing the adaptive
  engine's cross-round carry-over to cross-*request* reuse.

Pool keys are **exact** — ``(graph_key, model, eta, theta, pool_seed,
batch_size)`` — so a hit is a pure replay of the cold run and adoption
preserves bit-identity by construction.  Safe invalidation still runs on
every hit: the stored pool goes through
:meth:`~repro.sampling.mrr.CarriedMRRPool.revalidate` against the full
graph's initial residual, and anything short of full survival (a
corrupted entry, a regime mismatch) discards the entry and rebuilds from
scratch — the response stays correct, the cache just didn't help.

A per-key **circuit breaker** quarantines keys whose cached entries keep
failing regeneration: after ``failure_threshold`` consecutive discards
the key is *open* — the cache refuses to store or serve that key, so a
poisoned entry cannot be re-offered every request — until
``cooldown_seconds`` pass (*half-open*: one store is allowed again); a
subsequent clean hit closes the breaker.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError

#: Default LRU byte budget (graph CSR bytes + pool array bytes).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Consecutive regeneration failures that open a key's breaker.
DEFAULT_FAILURE_THRESHOLD = 3

#: Seconds an open breaker waits before allowing another store.
DEFAULT_COOLDOWN_SECONDS = 30.0

CacheKey = tuple[Any, ...]


@dataclass
class _Breaker:
    """Per-key circuit-breaker state."""

    failures: int = 0
    opened_at: Optional[float] = None


@dataclass
class _Entry:
    value: Any
    nbytes: int


@dataclass
class CacheStats:
    """Counters the health endpoint reports."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    breaker_opened: int = 0
    breaker_rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class ServiceCache:
    """One LRU byte budget over graph and pool entries, with breakers.

    Not thread-safe by itself: the server mutates it exclusively from the
    event-loop thread (lookups before dispatching compute, stores after
    compute returns), which serializes every access without a lock.
    """

    max_bytes: int = DEFAULT_CACHE_BYTES
    failure_threshold: int = DEFAULT_FAILURE_THRESHOLD
    cooldown_seconds: float = DEFAULT_COOLDOWN_SECONDS
    #: Injectable monotonic clock (tests freeze it).
    clock: Callable[[], float] = time.monotonic
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not isinstance(self.max_bytes, int) or self.max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be a non-negative int, got {self.max_bytes!r}"
            )
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not self.cooldown_seconds >= 0.0:
            raise ConfigurationError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._breakers: dict[CacheKey, _Breaker] = {}
        self._bytes = 0

    # ------------------------------------------------------------------
    # LRU core
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def get(self, key: CacheKey) -> Optional[Any]:
        """The cached value, or ``None`` on a miss or an open breaker."""
        if self._breaker_open(key):
            self.stats.breaker_rejected += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def entries(self) -> list[tuple[CacheKey, Any, int]]:
        """Every live entry as ``(key, value, nbytes)``, LRU-first.

        A read-only snapshot (does not touch recency); the server's
        drain path walks it to spill pool entries to the persistent
        artifact store.
        """
        return [
            (key, entry.value, entry.nbytes)
            for key, entry in self._entries.items()
        ]

    def put(self, key: CacheKey, value: Any, nbytes: int) -> bool:
        """Store ``value``; returns False when the key's breaker is open.

        An entry larger than the whole budget is not stored (storing it
        would evict everything for a guaranteed-evicted entry).
        """
        if self._breaker_open(key):
            self.stats.breaker_rejected += 1
            return False
        if nbytes > self.max_bytes:
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = _Entry(value=value, nbytes=nbytes)
        self._bytes += nbytes
        self.stats.stores += 1
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    # Safe invalidation + circuit breaker
    # ------------------------------------------------------------------

    def discard(self, key: CacheKey) -> None:
        """Drop a key after its entry failed regeneration; count a strike.

        The caller (the estimate handler) calls this when a cached pool
        did not survive revalidation intact — the entry is removed, the
        key's breaker accumulates a failure, and at
        :attr:`failure_threshold` consecutive failures the breaker opens.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.nbytes
        self.stats.invalidations += 1
        breaker = self._breakers.setdefault(key, _Breaker())
        breaker.failures += 1
        if breaker.failures >= self.failure_threshold:
            if breaker.opened_at is None:
                self.stats.breaker_opened += 1
            # (Re)open — a failure during half-open restarts the cooldown.
            breaker.opened_at = self.clock()

    def succeed(self, key: CacheKey) -> None:
        """A clean regeneration/hit: reset the key's breaker (close it)."""
        self._breakers.pop(key, None)

    def breaker_state(self, key: CacheKey) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` for one key."""
        breaker = self._breakers.get(key)
        if breaker is None or breaker.opened_at is None:
            return "closed"
        if self.clock() - breaker.opened_at >= self.cooldown_seconds:
            return "half-open"
        return "open"

    def _breaker_open(self, key: CacheKey) -> bool:
        if self.breaker_state(key) != "open":
            return False
        return True
