"""IC vs. LT: the same campaign under both diffusion models.

The paper evaluates everything under both the independent cascade and the
linear threshold model (Figures 4-7).  This example runs ASTI under both
models on the same weighted-cascade graph — the weights double as valid LT
weights — and reports the two observations from Section 6.3:

* fewer seeds are needed under LT than under IC at the same threshold;
* runs are faster under LT (reverse sampling walks one in-edge per node).

Run::

    python examples/model_comparison.py
"""

from repro import ASTI, IndependentCascade, LinearThreshold
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations
from repro.experiments.report import format_table
from repro.utils.stats import summarize


def main() -> None:
    graph = datasets.load_dataset("nethept-sim", n=800, seed=0)
    eta = 100
    worlds = 4

    print(f"graph: {graph.n} nodes / {graph.m} edges, eta = {eta}\n")

    rows = []
    for model in (IndependentCascade(), LinearThreshold()):
        realizations = sample_shared_realizations(graph, model, worlds, seed=31)
        seeds, seconds = [], []
        for i, phi in enumerate(realizations):
            result = ASTI(model, epsilon=0.5).run(graph, eta, realization=phi, seed=i)
            assert result.spread >= eta
            seeds.append(result.seed_count)
            seconds.append(result.seconds)
        rows.append([
            model.name,
            round(summarize(seeds).mean, 1),
            round(summarize(seconds).mean, 2),
        ])

    print(format_table(
        ["model", "mean seeds", "mean seconds"],
        rows,
        title="ASTI under IC vs LT (same graph, same thresholds)",
    ))


if __name__ == "__main__":
    main()
