"""Topic-aware campaigns: one network, different items, different seeds.

The paper notes its algorithms extend to topic-aware diffusion models
(Section 2, citing Barbieri et al.).  This example shows the extension end
to end: the same social network propagates a *sports* item and a *tech*
item with different per-topic edge probabilities, and the adaptive
minimizer produces different seed sets and seed counts for each.

Run::

    python examples/topic_aware_campaign.py
"""

from repro import ASTI
from repro.diffusion.topic import TopicAwareGraph, TopicAwareIC, TopicMixture
from repro.graph import generators, weighting


def main() -> None:
    # The underlying follow graph; scalar weights become the average item.
    topology = generators.preferential_attachment(800, 2, seed=3, directed=False)
    weighted = weighting.scaled_cascade(topology, 0.6)

    # Three latent topics; each edge redistributes its probability mass
    # over them (a user may relay sports gossip but never tech news).
    taw = TopicAwareGraph.random(weighted, num_topics=3, seed=11)
    eta = 80

    items = {
        "sports item (pure topic 0)": TopicMixture.single(0, 3),
        "tech item   (pure topic 1)": TopicMixture.single(1, 3),
        "broad item  (uniform mix) ": TopicMixture.uniform(3),
    }

    print(f"network: {taw.n} users / {taw.m} edges, 3 topics, target eta = {eta}\n")
    results = {}
    for label, mixture in items.items():
        model, graph = TopicAwareIC.for_item(taw, mixture)
        result = ASTI(model, epsilon=0.5).run(graph, eta, seed=21)
        results[label] = result
        print(f"{label}: {result.seed_count:>3} seeds -> {result.spread} influenced "
              f"(first seeds: {result.seeds[:5]})")

    seed_sets = [tuple(r.seeds[:3]) for r in results.values()]
    if len(set(seed_sets)) > 1:
        print("\nDifferent items favor different seed users — the reason "
              "topic-aware campaigns cannot reuse one seed set per network.")


if __name__ == "__main__":
    main()
