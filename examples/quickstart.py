"""Quickstart: solve one adaptive seed minimization instance.

Builds a small synthetic social network, then asks ASTI (the paper's
framework instantiated with TRIM) for the minimum seeds needed to influence
10% of the users, observing the cascade after every seed.

Run::

    python examples/quickstart.py
"""

from repro import ASTI, IndependentCascade
from repro.graph import generators, weighting


def main() -> None:
    # A 2,000-node power-law network with weighted-cascade probabilities
    # p(u, v) = 1 / indeg(v), the paper's experimental convention.
    topology = generators.preferential_attachment(2000, 2, seed=7, directed=False)
    graph = weighting.scaled_cascade(topology, 0.6)
    eta = graph.n // 10

    print(f"graph: {graph.n} nodes, {graph.m} directed edges")
    print(f"target: influence at least eta = {eta} users\n")

    asti = ASTI(IndependentCascade(), epsilon=0.5)
    result = asti.run(graph, eta, seed=42)

    print(f"{result.policy_name} reached {result.spread} users "
          f"with {result.seed_count} seeds in {result.seconds:.2f}s\n")
    print("round  seed  newly influenced  remaining shortfall")
    for record in result.rounds:
        obs = record.observation
        shortfall_after = max(0, obs.shortfall_before - obs.marginal_spread)
        print(f"{obs.round_index:>5}  {obs.seeds[0]:>4}  "
              f"{obs.marginal_spread:>16}  {shortfall_after:>19}")


if __name__ == "__main__":
    main()
