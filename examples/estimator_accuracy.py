"""Why mRR sets: estimating the truncated spread accurately.

The technical heart of the paper (Sections 3.2-3.3): vanilla single-root RR
sets are *biased* for the truncated influence spread — the natural
estimator ``eta * Pr[R hits S]`` shrinks the truth by up to ``eta/n`` — and
the fix is the multi-root mRR set whose randomized root count satisfies
``E[k] = n / eta``, giving the Theorem 3.3 bracket
``(1 - 1/e) E[Gamma(S)] <= E[Gamma~(S)] <= E[Gamma(S)]``.

This example computes the exact expected truncated spread on a small graph
by full realization enumeration and compares four estimators against it.

Run::

    python examples/estimator_accuracy.py
"""

from repro import IndependentCascade
from repro.diffusion.exact import exact_expected_truncated_spread
from repro.graph import generators
from repro.experiments.report import format_table
from repro.sampling.mrr import RootCountRule, estimate_truncated_spread_mrr

THETA = 30_000


def main() -> None:
    model = IndependentCascade()
    graph = generators.star_graph(9, probability=0.5)
    eta = 2
    seeds = [0]  # the hub

    truth = exact_expected_truncated_spread(graph, model, seeds, eta)
    k_floor = graph.n // eta

    rules = {
        "mRR, randomized rounding (paper)": None,
        f"mRR, fixed k = {k_floor} (floor)": RootCountRule.fixed(k_floor, graph.n),
        f"mRR, fixed k = {k_floor + 1} (ceil)": RootCountRule.fixed(k_floor + 1, graph.n),
        "single-root RR (k = 1, biased)": RootCountRule.fixed(1, graph.n),
    }

    rows = []
    for label, rule in rules.items():
        estimate = estimate_truncated_spread_mrr(
            graph, model, seeds, eta, theta=THETA, seed=3, rule=rule
        )
        rows.append([label, round(estimate, 3), round(estimate / truth, 3)])

    print(f"9-node star with p = 0.5, eta = {eta}, seed set = {{hub}}")
    print(f"exact E[Gamma(S)] = {truth:.3f} (by enumerating all realizations)\n")
    print(format_table(
        ["estimator", "estimate", "estimate / truth"],
        rows,
        title="Theorem 3.3 bracket: randomized rounding stays in [0.632, 1]",
    ))
    print("\nNote the single-root RR estimator's collapse: with k = 1 its")
    print("expectation is (eta/n) * E[I(S)], the Section 3.2 negative result.")


if __name__ == "__main__":
    main()
