"""One complete session against the always-on seed-selection service.

Starts ``python -m repro serve`` as a subprocess, walks through the
wire protocol — health, a cold and a warm estimate (the warm one adopts
the cached mRR pool), an over-deadline request answered with a typed
``deadline_exceeded`` — and finishes with the robustness finale: SIGTERM
while a request is in flight, which must still deliver that reply
before the server drains and exits 0.

Run::

    python examples/service_session.py
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

ESTIMATE = {
    "op": "estimate", "id": "cold", "seed": 7,
    "params": {
        "dataset": "nethept-sim", "n": 300, "eta": 30,
        "seeds": [0, 3, 7], "theta": 1000,
    },
}


def start_server() -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(repo, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    # The first stdout line announces the bound port.
    banner = process.stdout.readline()
    match = re.search(r"listening on [\d.]+:(\d+)", banner)
    if not match:
        process.kill()
        raise RuntimeError(f"unexpected banner: {banner!r}")
    return process, int(match.group(1))


def main() -> None:
    process, port = start_server()
    print(f"server up on port {port}")
    conn = socket.create_connection(("127.0.0.1", port), timeout=120)
    wire = conn.makefile("rwb")

    def request(payload):
        wire.write(json.dumps(payload).encode() + b"\n")
        wire.flush()
        return json.loads(wire.readline())

    try:
        health = request({"op": "health", "id": "h1"})
        print(f"health: {health['result']['status']}")

        cold = request(ESTIMATE)
        print(f"cold estimate: {cold['result']['estimate']} "
              f"({cold['ms']:.0f}ms, carry={cold['meta']['carry']})")

        warm = request(dict(ESTIMATE, id="warm"))
        assert warm["result"] == cold["result"], "warm run must be bit-identical"
        print(f"warm estimate: {warm['result']['estimate']} "
              f"({warm['ms']:.0f}ms, carry={warm['meta']['carry']})")

        late = request(dict(ESTIMATE, id="late", deadline_ms=0))
        print(f"deadline_ms=0 -> {late['error']['code']} "
              f"(stage={late['error']['stage']})")

        # The finale: fire a request, SIGTERM the server while it runs,
        # and still collect the reply before the socket closes.
        wire.write(json.dumps(dict(ESTIMATE, id="inflight")).encode() + b"\n")
        wire.flush()
        time.sleep(0.05)  # repro-lint: disable=REP007 -- let the line reach admission
        process.send_signal(signal.SIGTERM)
        inflight = json.loads(wire.readline())
        assert inflight["ok"], f"in-flight request lost in drain: {inflight}"
        print(f"SIGTERM mid-request: reply '{inflight['id']}' still delivered")

        code = process.wait(timeout=60)
        assert code == 0, f"server exited {code}"
        print("server drained and exited 0")
    finally:
        conn.close()
        if process.poll() is None:
            process.kill()


if __name__ == "__main__":
    main()
