"""Viral marketing: adaptive vs. one-shot free-sample campaigns.

The paper's motivating scenario (Section 1): an advertiser hands out free
product samples and wants a required number of users talking about the
product, with as few samples as possible.  This example plays both
strategies against the *same* ground-truth worlds:

* the adaptive campaign (ASTI) ships one sample at a time and watches who
  the word-of-mouth cascade actually reaches before choosing the next
  recipient;
* the one-shot campaign (ATEUC) commits all samples up front based on the
  expected spread.

The output reproduces the paper's headline: the one-shot campaign needs
more samples and still misses its target on some worlds, while the
adaptive campaign hits the target on every world.

Run::

    python examples/viral_marketing_campaign.py
"""

from repro import ASTI, ATEUC, IndependentCascade
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations


def main() -> None:
    model = IndependentCascade()
    graph = datasets.load_dataset("nethept-sim", n=600, seed=0)
    eta = 60          # users the campaign must reach
    worlds = 6        # ground-truth cascade outcomes to evaluate against

    print(f"network: {graph.n} users, {graph.m} follow edges")
    print(f"campaign target: {eta} influenced users, {worlds} sampled worlds\n")

    realizations = sample_shared_realizations(graph, model, worlds, seed=99)

    # --- one-shot campaign: a single seed set chosen from expectations ----
    one_shot = ATEUC(model).run(graph, eta, seed=1)
    print(f"one-shot (ATEUC): committed {one_shot.seed_count} samples "
          f"(estimated reach {one_shot.estimated_spread:.0f})")
    misses = 0
    for i, phi in enumerate(realizations):
        reach = phi.spread(one_shot.seeds)
        status = "ok" if reach >= eta else "MISSED TARGET"
        misses += reach < eta
        print(f"  world {i}: reached {reach:>4} users  {status}")

    # --- adaptive campaign: observe, then decide the next sample ----------
    print(f"\nadaptive (ASTI): one sample per round, observing each cascade")
    total_samples = []
    for i, phi in enumerate(realizations):
        result = ASTI(model, epsilon=0.5).run(graph, eta, realization=phi, seed=10 + i)
        total_samples.append(result.seed_count)
        print(f"  world {i}: reached {result.spread:>4} users "
              f"with {result.seed_count} samples")

    mean_adaptive = sum(total_samples) / len(total_samples)
    print(f"\nsummary: one-shot used {one_shot.seed_count} samples and missed "
          f"{misses}/{worlds} worlds;")
    print(f"         adaptive used {mean_adaptive:.1f} samples on average "
          f"and never missed.")


if __name__ == "__main__":
    main()
