"""Sweep every engine knob through one ExecutionContext.

Before the unified context, tuning the batched engines meant threading
three separate knob paths — ``sample_batch_size`` into the reverse
sampler, ``jobs`` into the parallel runtime, ``reuse_pool`` into the
adaptive carry-over — through every constructor between you and the
engine.  Now each trial is one :class:`repro.ExecutionContext`::

    context = ExecutionContext(sample_batch_size=512, jobs=2, reuse_pool=True)
    ASTI(model, context=context).run(graph, eta, seed=0)

This example runs a small grid over all three knobs on one graph and
prints seconds per run, demonstrating that (a) every configuration goes
through the single ``context=`` argument and (b) the chosen seed sets
agree across ``jobs`` values (worker-count invariance) and across
``reuse_pool`` (which only changes *how much* sampling is paid, not the
policy's information).

Run:
    PYTHONPATH=src python examples/context_tuning.py
"""

from __future__ import annotations

import time

from repro import ASTI, ExecutionContext, IndependentCascade
from repro.graph import generators, weighting

GRAPH_N = 1500
ETA_FRACTION = 0.1
SEED = 7

SAMPLE_BATCH_SIZES = (64, 256, 1024)
JOBS = (None, 1, 2)          # None = historical single-stream route
REUSE_POOL = (True, False)


def build_graph():
    topology = generators.preferential_attachment(
        GRAPH_N, 3, seed=1, directed=False
    )
    return weighting.weighted_cascade(topology)


def run_trial(graph, eta, context):
    model = IndependentCascade()
    start = time.perf_counter()
    with ASTI(model, epsilon=0.5, max_samples=20_000, context=context) as algorithm:
        result = algorithm.run(graph, eta, seed=SEED)
    seconds = time.perf_counter() - start
    return result, seconds


def main() -> int:
    graph = build_graph()
    eta = max(1, int(ETA_FRACTION * graph.n))
    print(
        f"graph: n={graph.n} m={graph.m} "
        f"(storage {graph.index_dtype}/{graph.prob_dtype}, "
        f"{graph.csr_nbytes} CSR bytes) | eta={eta}"
    )
    print(f"{'batch':>6} {'jobs':>5} {'reuse':>6} {'seeds':>6} {'samples':>9} {'seconds':>8}")

    baseline_seeds = {}
    for sample_batch_size in SAMPLE_BATCH_SIZES:
        for jobs in JOBS:
            for reuse_pool in REUSE_POOL:
                with ExecutionContext(
                    sample_batch_size=sample_batch_size,
                    jobs=jobs,
                    reuse_pool=reuse_pool,
                ) as context:
                    result, seconds = run_trial(graph, eta, context)
                print(
                    f"{sample_batch_size:>6} {str(jobs):>5} {str(reuse_pool):>6} "
                    f"{result.seed_count:>6} {result.total_samples:>9} "
                    f"{seconds:>8.2f}"
                )
                # Worker-count invariance: for a fixed batch size and
                # reuse policy, every explicit jobs value must select the
                # exact same seeds (jobs=None uses a different — also
                # deterministic — historical stream).
                if jobs is not None:
                    key = (sample_batch_size, reuse_pool)
                    baseline_seeds.setdefault(key, result.seeds)
                    assert result.seeds == baseline_seeds[key], (
                        f"worker-count invariance violated at {key}"
                    )
    print("\nall explicit-jobs configurations selected identical seed sets")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
