"""Sweep every engine knob through one ExecutionContext.

Before the unified context, tuning the batched engines meant threading
separate knob paths — ``sample_batch_size`` into the reverse sampler,
``jobs`` into the parallel runtime, ``reuse_pool`` into the adaptive
carry-over, and now ``kernel_backend`` into the labeled-BFS hot loops —
through every constructor between you and the engine.  Now each trial is
one :class:`repro.ExecutionContext`::

    context = ExecutionContext(sample_batch_size=512, jobs=2,
                               kernel_backend="auto")
    ASTI(model, context=context).run(graph, eta, seed=0)

This example runs a small grid over all four knobs on one graph and
prints seconds per run, demonstrating that (a) every configuration goes
through the single ``context=`` argument and (b) the chosen seed sets
agree across ``jobs`` values (worker-count invariance), across
``reuse_pool`` (which only changes *how much* sampling is paid, not the
policy's information), and across ``kernel_backend`` (the backends are
bit-identical by construction).

The kernel grid includes ``"numba"`` only where the optional extra is
installed; the interpreted ``"python"`` backend is deliberately excluded
(it exists for equivalence tests, not for 1500-node runs).

The sweep doubles as the **calibration harness** for the execution
planner (:mod:`repro.runtime.planner`): pass ``--out calibration.json``
and every ``reuse_pool=True`` trial is recorded as a
:class:`~repro.runtime.planner.CalibrationEntry` in the planner's
versioned schema, ready for ``--plan auto --calibration`` runs.

Run:
    PYTHONPATH=src python examples/context_tuning.py
    PYTHONPATH=src python examples/context_tuning.py --out calibration.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import ASTI, ExecutionContext, IndependentCascade
from repro.graph import generators, weighting
from repro.kernels import numba_available
from repro.runtime.planner import CalibrationEntry, CalibrationTable, graph_stats

GRAPH_N = 1500
ETA_FRACTION = 0.1
SEED = 7

SAMPLE_BATCH_SIZES = (64, 256, 1024)
JOBS = (None, 1, 2)          # None = historical single-stream route
REUSE_POOL = (True, False)
KERNEL_BACKENDS = ("auto", "numpy") + (("numba",) if numba_available() else ())


def build_graph():
    topology = generators.preferential_attachment(
        GRAPH_N, 3, seed=1, directed=False
    )
    return weighting.weighted_cascade(topology)


def run_trial(graph, eta, context):
    model = IndependentCascade()
    start = time.perf_counter()
    with ASTI(model, epsilon=0.5, max_samples=20_000, context=context) as algorithm:
        result = algorithm.run(graph, eta, seed=SEED)
    seconds = time.perf_counter() - start
    return result, seconds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        metavar="CALIBRATION_JSON",
        help="write the sweep's timings as a planner calibration table "
        "(reuse_pool=True trials only — the planner always reuses pools)",
    )
    args = parser.parse_args()
    graph = build_graph()
    eta = max(1, int(ETA_FRACTION * graph.n))
    stats = graph_stats(graph)
    calibration_entries = []
    print(
        f"graph: n={graph.n} m={graph.m} "
        f"(storage {graph.index_dtype}/{graph.prob_dtype}, "
        f"{graph.csr_nbytes} CSR bytes) | eta={eta} | "
        f"kernel grid {KERNEL_BACKENDS}"
    )
    print(
        f"{'batch':>6} {'jobs':>5} {'reuse':>6} {'kernel':>7} "
        f"{'seeds':>6} {'samples':>9} {'seconds':>8}"
    )

    worker_baseline = {}
    backend_baseline = {}
    for sample_batch_size in SAMPLE_BATCH_SIZES:
        for jobs in JOBS:
            for reuse_pool in REUSE_POOL:
                for kernel_backend in KERNEL_BACKENDS:
                    with ExecutionContext(
                        sample_batch_size=sample_batch_size,
                        jobs=jobs,
                        reuse_pool=reuse_pool,
                        kernel_backend=kernel_backend,
                    ) as context:
                        result, seconds = run_trial(graph, eta, context)
                    print(
                        f"{sample_batch_size:>6} {str(jobs):>5} "
                        f"{str(reuse_pool):>6} {kernel_backend:>7} "
                        f"{result.seed_count:>6} {result.total_samples:>9} "
                        f"{seconds:>8.2f}"
                    )
                    # Calibration rows: only reuse_pool=True trials (the
                    # planner's contexts always reuse pools) and explicit
                    # jobs values (None is the historical stream, which a
                    # planned context never selects).
                    if reuse_pool and jobs is not None:
                        calibration_entries.append(
                            CalibrationEntry(
                                n=stats.n,
                                m=stats.m,
                                degree_skew=stats.degree_skew,
                                model="IC",
                                sample_batch_size=sample_batch_size,
                                mc_batch_size=None,
                                jobs=jobs,
                                kernel_backend=kernel_backend,
                                seconds=round(seconds, 4),
                            )
                        )
                    # Backend invariance: for a fixed (batch, jobs, reuse)
                    # cell, every kernel backend must select the exact
                    # same seeds — the backends are bit-identical.
                    cell = (sample_batch_size, jobs, reuse_pool)
                    backend_baseline.setdefault(cell, result.seeds)
                    assert result.seeds == backend_baseline[cell], (
                        f"kernel-backend invariance violated at {cell}"
                    )
                    # Worker-count invariance: for a fixed batch size,
                    # reuse policy, and backend, every explicit jobs value
                    # must select the exact same seeds (jobs=None uses a
                    # different — also deterministic — historical stream).
                    if jobs is not None:
                        key = (sample_batch_size, reuse_pool, kernel_backend)
                        worker_baseline.setdefault(key, result.seeds)
                        assert result.seeds == worker_baseline[key], (
                            f"worker-count invariance violated at {key}"
                        )
    print(
        "\nall configurations selected identical seed sets across backends"
        " and explicit jobs values"
    )
    if args.out is not None:
        table = CalibrationTable(entries=tuple(calibration_entries))
        Path(args.out).write_text(
            json.dumps(table.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(calibration_entries)} calibration entries "
            f"(version {table.version}) to {args.out}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
