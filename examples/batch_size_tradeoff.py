"""The batch-size trade-off: seed count vs. running time.

TRIM-B commits ``b`` seeds per round without observing between them, which
speeds up selection (fewer rounds, fewer mRR pools) at the price of a
slightly larger seed set and an adaptivity gap (paper Section 4 and the
Figure 4/5 discussion: ASTI-8 runs at ~5% of ASTI's time while selecting
only slightly more seeds).

This example sweeps b in {1, 2, 4, 8} on a shared set of ground-truth
worlds and prints the trade-off table.

Run::

    python examples/batch_size_tradeoff.py
"""

from repro import ASTI, IndependentCascade
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations
from repro.experiments.report import format_table
from repro.utils.stats import summarize


def main() -> None:
    model = IndependentCascade()
    graph = datasets.load_dataset("nethept-sim", n=800, seed=0)
    eta = 120
    worlds = sample_shared_realizations(graph, model, 4, seed=5)

    print(f"graph: {graph.n} nodes / {graph.m} edges, eta = {eta}, "
          f"{len(worlds)} shared worlds\n")

    rows = []
    for batch in (1, 2, 4, 8):
        algorithm = ASTI(model, epsilon=0.5, batch_size=batch)
        seeds, seconds, rounds = [], [], []
        for i, phi in enumerate(worlds):
            result = algorithm.run(graph, eta, realization=phi, seed=100 + i)
            assert result.spread >= eta
            seeds.append(result.seed_count)
            seconds.append(result.seconds)
            rounds.append(len(result.rounds))
        rows.append([
            algorithm.name,
            round(summarize(seeds).mean, 1),
            round(summarize(rounds).mean, 1),
            round(summarize(seconds).mean, 2),
        ])

    print(format_table(
        ["algorithm", "mean seeds", "mean rounds", "mean seconds"],
        rows,
        title="Batch-size trade-off (larger b: faster, slightly more seeds)",
    ))


if __name__ == "__main__":
    main()
