"""The two batch-size trade-offs: seed batches and sampling batches.

Two distinct knobs share the word "batch":

* **Seed batch ``b`` (TRIM-B).**  Committing ``b`` seeds per round without
  observing between them speeds up selection (fewer rounds, fewer mRR
  pools) at the price of a slightly larger seed set and an adaptivity gap
  (paper Section 4; ASTI-8 runs at ~5% of ASTI's time while selecting only
  slightly more seeds).
* **Sampling batch ``sample_batch_size`` (the engine).**  How many (m)RR
  sets the vectorized :class:`~repro.sampling.engine.BatchSampler`
  generates per multi-source reverse BFS.  Purely a throughput knob — the
  selected seeds are statistically unchanged — trading NumPy dispatch
  amortization against the ``batch x n`` working set (see DESIGN.md).

This example sweeps both on a shared set of ground-truth worlds: first the
paper's seed-batch trade-off, then the engine knob at fixed ``b``.

Run::

    python examples/batch_size_tradeoff.py
"""

from repro import ASTI, IndependentCascade
from repro.experiments import datasets
from repro.experiments.harness import sample_shared_realizations
from repro.experiments.report import format_table
from repro.utils.stats import summarize


def run_roster(algorithms, graph, eta, worlds):
    rows = []
    for label, algorithm in algorithms:
        seeds, seconds, rounds = [], [], []
        for i, phi in enumerate(worlds):
            result = algorithm.run(graph, eta, realization=phi, seed=100 + i)
            assert result.spread >= eta
            seeds.append(result.seed_count)
            seconds.append(result.seconds)
            rounds.append(len(result.rounds))
        rows.append([
            label,
            round(summarize(seeds).mean, 1),
            round(summarize(rounds).mean, 1),
            round(summarize(seconds).mean, 2),
        ])
    return rows


def main() -> None:
    model = IndependentCascade()
    graph = datasets.load_dataset("nethept-sim", n=800, seed=0)
    eta = 120
    worlds = sample_shared_realizations(graph, model, 4, seed=5)

    print(f"graph: {graph.n} nodes / {graph.m} edges, eta = {eta}, "
          f"{len(worlds)} shared worlds\n")

    seed_batches = [
        (f"ASTI-{b}" if b > 1 else "ASTI",
         ASTI(model, epsilon=0.5, batch_size=b))
        for b in (1, 2, 4, 8)
    ]
    print(format_table(
        ["algorithm", "mean seeds", "mean rounds", "mean seconds"],
        run_roster(seed_batches, graph, eta, worlds),
        title="Seed-batch trade-off (larger b: faster, slightly more seeds)",
    ))
    print()

    sampling_batches = [
        (f"sample_batch={sbs}",
         ASTI(model, epsilon=0.5, batch_size=4, sample_batch_size=sbs))
        for sbs in (1, 16, 256, 1024)
    ]
    print(format_table(
        ["engine knob", "mean seeds", "mean rounds", "mean seconds"],
        run_roster(sampling_batches, graph, eta, worlds),
        title="Sampling-batch trade-off (same seeds statistically; "
              "sample_batch=1 is the unbatched reference)",
    ))


if __name__ == "__main__":
    main()
