"""The forward engine's two knobs: chunk size and early-stop tolerance.

``estimate_spread`` generates cascades through the batched forward engine,
``mc_batch_size`` at a time, and can stop early once the 95% CI half-width
falls below ``ci_halfwidth``.  This example sweeps both knobs on a
generated weighted-cascade graph:

* the **chunk-size sweep** shows the dispatch-amortization curve — tiny
  chunks degenerate toward the per-cascade loop, large chunks go flat once
  NumPy dispatch is amortized (and would eventually fall out of cache;
  the estimator's adaptive shrinking guards the large-cascade end);
* the **tolerance sweep** shows the accuracy/work trade — looser CI
  targets finish after fewer cascades.

Run::

    python examples/mc_batching_tradeoff.py
"""

import time

from repro.diffusion.ic import IndependentCascade
from repro.diffusion.montecarlo import estimate_spread
from repro.experiments.report import format_table
from repro.graph import generators, weighting

GRAPH_N = 4_000
SAMPLES = 4_000
#: Mid-degree nodes: the representative small-cascade regime (CELF / oracle
#: singleton scoring) where batching has the most dispatch left to remove.
SEEDS = [1000, 2500, 3999]


def main() -> None:
    model = IndependentCascade()
    topology = generators.preferential_attachment(GRAPH_N, 3, seed=7, directed=False)
    graph = weighting.weighted_cascade(topology)

    rows = []
    for mc_batch_size in (1, 8, 32, 128, 256, 512, 1024):
        start = time.perf_counter()
        estimate = estimate_spread(
            graph, model, SEEDS, samples=SAMPLES, seed=1,
            mc_batch_size=mc_batch_size,
        )
        seconds = time.perf_counter() - start
        rows.append([
            mc_batch_size,
            round(SAMPLES / seconds, 1),
            round(estimate.mean, 2),
            round(1.96 * estimate.std_error, 3),
        ])
    print(format_table(
        ["mc_batch_size", "cascades/s", "estimate", "CI half-width"],
        rows,
        title=f"Chunk-size sweep ({SAMPLES} cascades, n = {GRAPH_N})",
    ))

    rows = []
    for tolerance in (None, 8.0, 4.0, 2.0, 1.0, 0.5):
        start = time.perf_counter()
        estimate = estimate_spread(
            graph, model, SEEDS, samples=SAMPLES, seed=1,
            mc_batch_size=256, ci_halfwidth=tolerance,
        )
        seconds = time.perf_counter() - start
        rows.append([
            "none (run all)" if tolerance is None else tolerance,
            estimate.samples,
            round(seconds * 1e3, 1),
            round(estimate.mean, 2),
            round(1.96 * estimate.std_error, 3),
        ])
    print()
    print(format_table(
        ["ci_halfwidth", "cascades used", "ms", "estimate", "CI half-width"],
        rows,
        title="Early-stop sweep (cap 4000 cascades, mc_batch_size = 256)",
    ))
    print("\nNote: the estimator never stops before its first chunk, so the")
    print("loosest tolerance still reports a CI from 256 cascades.")


if __name__ == "__main__":
    main()
