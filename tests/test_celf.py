"""Unit tests for the CELF lazy-greedy baseline."""

import pytest

from repro.baselines.celf import celf_influence_maximization, celf_seed_minimization
from repro.errors import ConfigurationError
from repro.graph import generators


class TestCelfIM:
    def test_star_hub_first(self, ic_model):
        g = generators.star_graph(15, probability=1.0)
        result = celf_influence_maximization(g, ic_model, k=1, samples=30, seed=0)
        assert result.seeds == [0]
        assert result.estimated_spread == pytest.approx(15.0)

    def test_k_seeds_returned(self, ic_model, small_social_damped):
        result = celf_influence_maximization(
            small_social_damped, ic_model, k=3, samples=40, seed=1
        )
        assert result.seed_count == 3
        assert len(set(result.seeds)) == 3

    def test_lazy_skips_happen(self, ic_model, small_social_damped):
        result = celf_influence_maximization(
            small_social_damped, ic_model, k=2, samples=30, seed=2
        )
        assert result.lazy_skips > 0  # the whole point of CELF

    def test_spread_monotone_in_k(self, ic_model, small_social_damped):
        r1 = celf_influence_maximization(
            small_social_damped, ic_model, k=1, samples=60, seed=3
        )
        r3 = celf_influence_maximization(
            small_social_damped, ic_model, k=3, samples=60, seed=3
        )
        assert r3.estimated_spread >= r1.estimated_spread * 0.9

    def test_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            celf_influence_maximization(path3, ic_model, k=0)
        with pytest.raises(ConfigurationError):
            celf_influence_maximization(path3, ic_model, k=9)
        with pytest.raises(ConfigurationError):
            celf_influence_maximization(path3, ic_model, k=1, samples=0)


class TestCelfSeedMinimization:
    def test_stops_at_target(self, ic_model, two_components):
        result = celf_seed_minimization(two_components, ic_model, eta=4, samples=30, seed=0)
        assert result.seed_count == 2
        assert result.estimated_spread >= 4

    def test_star_single_seed(self, ic_model):
        g = generators.star_graph(20, probability=1.0)
        result = celf_seed_minimization(g, ic_model, eta=12, samples=30, seed=1)
        assert result.seeds == [0]

    def test_agrees_with_ateuc_order_of_magnitude(self, ic_model, small_social_damped):
        from repro.baselines.ateuc import ATEUC

        eta = 25
        celf = celf_seed_minimization(
            small_social_damped, ic_model, eta=eta, samples=60, seed=2
        )
        ateuc = ATEUC(ic_model).run(small_social_damped, eta=eta, seed=2)
        assert celf.seed_count <= 3 * ateuc.seed_count + 2
        assert ateuc.seed_count <= 3 * celf.seed_count + 2

    def test_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            celf_seed_minimization(path3, ic_model, eta=0)
        with pytest.raises(ConfigurationError):
            celf_seed_minimization(path3, ic_model, eta=4)


class TestCelfDeterminism:
    """Satellite: CRN evaluation makes CELF a pure function of the seed."""

    def test_same_seed_same_seed_set(self, ic_model, small_social_damped):
        runs = [
            celf_influence_maximization(
                small_social_damped, ic_model, k=4, samples=40, seed=7
            )
            for _ in range(2)
        ]
        assert runs[0].seeds == runs[1].seeds
        assert runs[0].estimated_spread == runs[1].estimated_spread
        assert runs[0].lazy_skips == runs[1].lazy_skips

    def test_minimization_deterministic(self, ic_model, small_social_damped):
        first = celf_seed_minimization(
            small_social_damped, ic_model, eta=30, samples=40, seed=11
        )
        second = celf_seed_minimization(
            small_social_damped, ic_model, eta=30, samples=40, seed=11
        )
        assert first.seeds == second.seeds

    def test_lt_model_deterministic(self, lt_model, small_social):
        first = celf_influence_maximization(
            small_social, lt_model, k=3, samples=30, seed=5
        )
        second = celf_influence_maximization(
            small_social, lt_model, k=3, samples=30, seed=5
        )
        assert first.seeds == second.seeds

    def test_legacy_fresh_noise_path_still_runs(self, ic_model, two_components):
        result = celf_seed_minimization(
            two_components, ic_model, eta=4, samples=30, seed=0, crn=False
        )
        assert result.seed_count == 2
        assert result.estimated_spread >= 4


class TestCelfHarnessAdapter:
    def test_minimizer_run_shape(self, ic_model, small_social_damped):
        from repro.baselines.celf import CELFMinimizer

        adapter = CELFMinimizer(ic_model, samples=30)
        result = adapter.run(small_social_damped, eta=20, seed=3)
        assert result.policy_name == "CELF"
        assert result.seed_count == len(result.seeds) > 0
        assert result.seconds >= 0.0
        assert result.estimated_spread >= 20
