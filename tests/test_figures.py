"""Smoke tests for the per-figure drivers (tiny parameters)."""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def small_overrides():
    return {name: 150 for name in ("nethept-sim", "epinions-sim")}


class TestTable2:
    def test_rows_cover_requested_datasets(self, small_overrides):
        rows = figures.table2(names=list(small_overrides), n_override=small_overrides)
        assert [r.dataset for r in rows] == list(small_overrides)
        for row in rows:
            assert row.n == 150
            assert row.m > 0
            assert row.lwcc_size <= row.n
            assert row.paper_n > row.n  # stand-ins are scaled down


class TestFigure3:
    def test_distributions_sum_to_one(self, small_overrides):
        dists = figures.figure3(names=list(small_overrides), n_override=small_overrides)
        for _name, dist in dists.items():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_heavy_tail_present(self, small_overrides):
        dists = figures.figure3(names=["nethept-sim"], n_override={"nethept-sim": 300})
        degrees = dists["nethept-sim"]
        assert max(degrees) >= 8  # some node far above the mean


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figures.threshold_sweep(
            dataset="nethept-sim",
            model_name="IC",
            graph_n=150,
            realizations=2,
            algorithms=("ASTI", "ATEUC"),
            eta_fractions=(0.05, 0.15),
            max_samples=4000,
            seed=1,
        )

    def test_figure4_series_shape(self, sweep):
        seeds = sweep.series("ASTI", "seeds")
        assert len(seeds) == 2
        assert seeds[0] <= seeds[1]

    def test_figure5_times_positive(self, sweep):
        assert all(t > 0 for t in sweep.series("ASTI", "seconds"))

    def test_figure9_spread_reaches_eta_for_asti(self, sweep):
        spreads = sweep.series("ASTI", "spread")
        assert all(s >= eta for s, eta in zip(spreads, sweep.eta_values))

    def test_table3_cells(self, sweep):
        cells = figures.table3(sweep)
        assert len(cells) == 2
        for cell in cells:
            assert cell.rendered() == "N/A" or cell.ratio is not None

    def test_figure6_lt_variant_runs(self):
        sweep = figures.figure6(
            dataset="nethept-sim",
            graph_n=120,
            realizations=2,
            algorithms=("ASTI",),
            eta_fractions=(0.05,),
            max_samples=3000,
            seed=2,
        )
        assert sweep.config.model_name == "LT"
        assert sweep.series("ASTI", "seeds")[0] >= 1


class TestFigure8:
    def test_per_realization_spreads(self):
        result = figures.figure8(
            graph_n=150, realizations=4, eta_fraction=0.1, max_samples=4000, seed=3
        )
        assert len(result.asti_spreads) == 4
        assert len(result.ateuc_spreads) == 4
        assert result.asti_failures == 0  # adaptive always reaches eta
        assert all(s >= result.eta for s in result.asti_spreads)


class TestFigure10:
    def test_marginal_spread_series(self):
        result = figures.figure10(
            graph_n=150, realizations=2, eta_fraction=0.2, max_samples=4000, seed=4
        )
        assert len(result.per_realization) == 2
        means = result.mean_by_index()
        assert len(means) >= 1
        assert all(m >= 1 for m in means)
