"""Unit tests for the heuristic baselines."""

import pytest

from repro.baselines.heuristics import DegreeSelector, degree_seed_minimization
from repro.core.asti import run_adaptive_policy
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.residual import initial_residual


class TestDegreeSelector:
    def test_picks_highest_degree(self, rng):
        g = generators.star_graph(10, probability=1.0)
        residual = initial_residual(g, eta=5)
        assert DegreeSelector().select(residual, rng).nodes == [0]

    def test_adaptive_run_reaches_target(self, ic_model, small_social_damped):
        result = run_adaptive_policy(
            small_social_damped, 20, ic_model, DegreeSelector(), seed=0
        )
        assert result.spread >= 20

    def test_gain_reported(self, rng):
        g = generators.star_graph(10, probability=1.0)
        residual = initial_residual(g, eta=5)
        d = DegreeSelector().select(residual, rng).diagnostics
        assert d.estimated_gain == pytest.approx(9.0)


class TestDegreeSeedMinimization:
    def test_star_solved_with_hub(self, ic_model):
        g = generators.star_graph(20, probability=1.0)
        result = degree_seed_minimization(g, ic_model, eta=10, samples=30, seed=0)
        assert result.seeds[0] == 0
        assert result.seed_count == 1
        assert result.estimated_spread >= 10

    def test_multiple_seeds_when_needed(self, ic_model, two_components):
        result = degree_seed_minimization(
            two_components, ic_model, eta=4, samples=30, seed=1
        )
        assert result.seed_count == 2

    def test_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            degree_seed_minimization(path3, ic_model, eta=0)
        with pytest.raises(ConfigurationError):
            degree_seed_minimization(path3, ic_model, eta=7)
        with pytest.raises(ConfigurationError):
            degree_seed_minimization(path3, ic_model, eta=2, samples=0)
