"""Unit tests for graph analysis (Table 2 / Figure 3 machinery)."""

import numpy as np
import pytest

from repro.graph import analysis, generators
from repro.graph.builder import GraphBuilder


class TestAverageDegree:
    def test_simple(self):
        g = generators.path_graph(4)
        assert analysis.average_degree(g) == pytest.approx(3 / 4)

    def test_empty_graph(self):
        from repro.graph.digraph import DiGraph

        assert analysis.average_degree(DiGraph.from_edges(0, [])) == 0.0


class TestDegreeHistogram:
    def test_out_direction(self):
        g = generators.star_graph(5, outward=True)
        hist = analysis.degree_histogram(g, "out")
        assert hist == {0: 4, 4: 1}

    def test_in_direction(self):
        g = generators.star_graph(5, outward=True)
        hist = analysis.degree_histogram(g, "in")
        assert hist == {0: 1, 1: 4}

    def test_total_direction(self):
        g = generators.path_graph(3)
        hist = analysis.degree_histogram(g, "total")
        assert hist == {1: 2, 2: 1}

    def test_bad_direction(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            analysis.degree_histogram(g, "sideways")

    def test_distribution_sums_to_one(self):
        g = generators.preferential_attachment(100, 2, seed=0)
        dist = analysis.degree_distribution(g)
        assert sum(dist.values()) == pytest.approx(1.0)


class TestComponents:
    def test_single_component(self):
        g = generators.cycle_graph(5)
        labels = analysis.weakly_connected_components(g)
        assert len(np.unique(labels)) == 1

    def test_direction_ignored(self):
        g = generators.path_graph(4)  # weakly connected though directed
        assert analysis.largest_wcc_size(g) == 4

    def test_two_components(self, two_components):
        labels = analysis.weakly_connected_components(two_components)
        assert len(np.unique(labels)) == 2
        assert analysis.largest_wcc_size(two_components) == 2

    def test_isolated_nodes(self):
        g = GraphBuilder(5).add_edge(0, 1, 0.5).build()
        assert analysis.largest_wcc_size(g) == 2

    def test_empty_graph(self):
        from repro.graph.digraph import DiGraph

        assert analysis.largest_wcc_size(DiGraph.from_edges(0, [])) == 0


class TestSummary:
    def test_summary_row(self):
        g = generators.cycle_graph(6)
        summary = analysis.summarize_graph(g, name="cycle")
        assert summary.name == "cycle"
        assert summary.n == 6
        assert summary.m == 6
        assert summary.average_degree == pytest.approx(1.0)
        assert summary.lwcc_size == 6
        assert summary.as_row()[0] == "cycle"


class TestPowerLawEstimate:
    def test_heavy_tail_detected(self):
        g = generators.preferential_attachment(500, 2, seed=1, directed=False)
        alpha = analysis.power_law_exponent_estimate(g)
        # The x_min=1 MLE is biased low on BA graphs; we only need "looks
        # like a finite power-law exponent", not a calibrated fit.
        assert 1.0 < alpha < 4.0

    def test_empty_degrees(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(3, [])
        assert np.isnan(analysis.power_law_exponent_estimate(g))
