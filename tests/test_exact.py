"""Unit tests for exact enumeration (the ground-truth oracle)."""

import pytest

from repro.diffusion.exact import (
    enumerate_ic_realizations,
    enumerate_lt_realizations,
    exact_expected_spread,
    exact_expected_truncated_spread,
)
from repro.errors import ConfigurationError
from repro.graph import generators


class TestEnumerationIC:
    def test_probabilities_sum_to_one(self, paper_example, ic_model):
        total = sum(p for _, p in enumerate_ic_realizations(paper_example))
        assert total == pytest.approx(1.0)

    def test_world_count(self, path3):
        # Certain edges: only one world has positive probability.
        worlds = list(enumerate_ic_realizations(path3))
        assert len(worlds) == 1

    def test_half_probability_edge_gives_two_worlds(self):
        g = generators.path_graph(2, probability=0.5)
        worlds = list(enumerate_ic_realizations(g))
        assert len(worlds) == 2
        assert all(p == pytest.approx(0.5) for _, p in worlds)

    def test_too_many_edges_rejected(self):
        g = generators.complete_graph(6)  # 30 edges
        with pytest.raises(ConfigurationError):
            list(enumerate_ic_realizations(g))


class TestEnumerationLT:
    def test_probabilities_sum_to_one(self, path5_half):
        total = sum(p for _, p in enumerate_lt_realizations(path5_half))
        assert total == pytest.approx(1.0)

    def test_chain_world_count(self, path5_half):
        # Each of nodes 1..4 keeps its single in-edge or not: 2^4 worlds.
        worlds = list(enumerate_lt_realizations(path5_half))
        assert len(worlds) == 16


class TestExactValues:
    def test_paper_example_vanilla_spreads(self, paper_example, ic_model):
        # Example 2.3: E[I(v1)] = 2.75 dominates all others.
        spreads = [
            exact_expected_spread(paper_example, ic_model, [v]) for v in range(4)
        ]
        assert spreads[0] == pytest.approx(2.75)
        assert spreads[1] == pytest.approx(2.0)
        assert spreads[2] == pytest.approx(2.0)
        assert spreads[3] == pytest.approx(1.0)

    def test_paper_example_truncated_spreads(self, paper_example, ic_model):
        # Example 2.3's punchline: truncation flips the winner to v2/v3.
        truncated = [
            exact_expected_truncated_spread(paper_example, ic_model, [v], eta=2)
            for v in range(4)
        ]
        assert truncated[0] == pytest.approx(1.75)
        assert truncated[1] == pytest.approx(2.0)
        assert truncated[2] == pytest.approx(2.0)
        assert truncated[3] == pytest.approx(1.0)

    def test_seed_set_spread(self, paper_example, ic_model):
        value = exact_expected_spread(paper_example, ic_model, [1, 2])
        assert value == pytest.approx(3.0)  # v2, v3 and v4 always

    def test_truncated_never_exceeds_vanilla(self, ic_model, path5_half):
        for v in range(5):
            vanilla = exact_expected_spread(path5_half, ic_model, [v])
            truncated = exact_expected_truncated_spread(path5_half, ic_model, [v], eta=2)
            assert truncated <= vanilla + 1e-12

    def test_lt_exact_chain(self, lt_model):
        g = generators.path_graph(3, probability=0.5)
        # E[I({0})] = 1 + 0.5 + 0.25 = 1.75 under LT live-edge too.
        assert exact_expected_spread(g, lt_model, [0]) == pytest.approx(1.75)

    def test_matches_monte_carlo(self, ic_model, paper_example, rng):
        from repro.diffusion.montecarlo import estimate_spread

        exact = exact_expected_spread(paper_example, ic_model, [0])
        mc = estimate_spread(paper_example, ic_model, [0], samples=4000, seed=rng)
        assert mc.mean == pytest.approx(exact, abs=0.1)

    def test_invalid_eta(self, paper_example, ic_model):
        with pytest.raises(ConfigurationError):
            exact_expected_truncated_spread(paper_example, ic_model, [0], eta=0)

    def test_unknown_model_rejected(self, paper_example):
        class FakeModel:
            pass

        with pytest.raises(ConfigurationError):
            exact_expected_spread(paper_example, FakeModel(), [0])
