"""Tests for the project linter (``repro.devtools.lint``).

Each rule gets positive fixtures (the construct it exists to catch) and
negative fixtures (the sanctioned alternative), all as in-memory sources
linted under engine-layer-looking paths.  The scratch-copy tests mirror
real source files into a ``repro/...`` tree under ``tmp_path`` and verify
that (a) the real tree is clean as shipped and (b) seeded mutations —
``np.random.seed`` and a lambda into ``map_ordered`` — surface the
expected codes, which is the end-to-end property the linter is for.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.lint import (
    JSON_SCHEMA_VERSION,
    PARSE_ERROR_CODE,
    LintRunner,
    collect_files,
    main,
    render_json,
    suppressed_lines,
)
from repro.devtools.rules import ALL_RULES

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: A path the engine-layer rules (REP006's ``repro/`` marker) apply to.
ENGINE_PATH = "src/repro/sampling/example.py"


def lint(source: str, path: str = ENGINE_PATH):
    return LintRunner().lint_source(source, path)


def codes(source: str, path: str = ENGINE_PATH):
    return [finding.code for finding in lint(source, path)]


# ----------------------------------------------------------------------
# Rule catalog sanity
# ----------------------------------------------------------------------


def test_rule_catalog_codes_are_unique_and_documented():
    seen = [rule.code for rule in ALL_RULES]
    assert len(seen) == len(set(seen))
    assert seen == sorted(seen)
    for rule in ALL_RULES:
        assert rule.code.startswith("REP") and len(rule.code) == 6
        assert rule.hint, f"{rule.code} has no fix hint"
        assert rule.name, f"{rule.code} has no name"


# ----------------------------------------------------------------------
# REP001 — global-state numpy RNG
# ----------------------------------------------------------------------


def test_rep001_flags_global_seed():
    src = "import numpy as np\nnp.random.seed(0)\n"
    assert codes(src) == ["REP001"]


def test_rep001_flags_aliased_and_from_imports():
    src = (
        "import numpy.random as npr\n"
        "from numpy.random import shuffle\n"
        "npr.randint(10)\n"
        "shuffle([1, 2])\n"
    )
    assert codes(src) == ["REP001", "REP001"]


def test_rep001_ignores_generator_methods():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "rng.random()\n"
        "rng.shuffle([1, 2])\n"
    )
    assert codes(src) == []


def test_rep001_ignores_unrelated_modules():
    src = "import random\nrandom.seed(0)\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# REP002 — unseeded RNG construction
# ----------------------------------------------------------------------


def test_rep002_flags_unseeded_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert codes(src) == ["REP002"]


def test_rep002_flags_explicit_none_seed():
    src = "from numpy.random import default_rng\nrng = default_rng(None)\n"
    assert codes(src) == ["REP002"]


def test_rep002_flags_generator_over_unseeded_bit_generator():
    src = "import numpy as np\nrng = np.random.Generator(np.random.PCG64())\n"
    assert codes(src) == ["REP002"]


def test_rep002_accepts_seeded_construction():
    src = (
        "import numpy as np\n"
        "def fresh(seed):\n"
        "    return np.random.default_rng(seed)\n"
        "rng = np.random.Generator(np.random.PCG64(42))\n"
    )
    assert codes(src) == []


def test_rep002_exempts_the_rng_factory_modules():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert codes(src, "src/repro/runtime/context.py") == []
    assert codes(src, "src/repro/utils/rng.py") == []


# ----------------------------------------------------------------------
# REP003 — picklable dispatch
# ----------------------------------------------------------------------


def test_rep003_flags_lambda_into_map_ordered():
    src = (
        "def run(runtime, payloads):\n"
        "    return runtime.map_ordered(lambda item: item, payloads)\n"
    )
    assert codes(src) == ["REP003"]


def test_rep003_flags_nested_function():
    src = (
        "def run(runtime, payloads):\n"
        "    def job(item):\n"
        "        return item\n"
        "    return runtime.map_ordered(job, payloads)\n"
    )
    assert codes(src) == ["REP003"]


def test_rep003_flags_bound_method_into_submit():
    src = (
        "class Driver:\n"
        "    def go(self, pool, payload):\n"
        "        return pool.submit(self.job, payload)\n"
    )
    assert codes(src) == ["REP003"]


def test_rep003_accepts_module_level_function():
    src = (
        "def job(item):\n"
        "    return item\n"
        "def run(runtime, payloads):\n"
        "    return runtime.map_ordered(job, payloads)\n"
    )
    assert codes(src) == []


# ----------------------------------------------------------------------
# REP004 — njit-safe kernels (path-scoped to kernels/reference.py)
# ----------------------------------------------------------------------

KERNEL_PATH = "scratch/repro/kernels/reference.py"


def test_rep004_flags_unsafe_kernel_constructs():
    src = (
        "import numpy as np\n"
        "def kernel(frontier, **options):\n"
        "    table = {}\n"
        "    rng = np.random.default_rng(0)\n"
        "    return np.concatenate([frontier])\n"
    )
    found = codes(src, KERNEL_PATH)
    assert found == ["REP004"] * 4  # kwargs, dict, rng call, np.concatenate


def test_rep004_accepts_the_allowlisted_subset():
    src = (
        "import numpy as np\n"
        "def kernel(indptr, indices, draws):\n"
        "    out = np.empty(len(indices), dtype=np.int64)\n"
        "    count = 0\n"
        "    for i in range(len(indices)):\n"
        "        if draws[i] < 0.5:\n"
        "            out[count] = indices[i]\n"
        "            count += 1\n"
        "    return out[:count]\n"
    )
    assert codes(src, KERNEL_PATH) == []


def test_rep004_is_scoped_to_the_reference_module():
    src = "def helper(**kwargs):\n    return dict(kwargs)\n"
    assert codes(src, ENGINE_PATH) == []
    assert codes(src, KERNEL_PATH) != []


# ----------------------------------------------------------------------
# REP005 — paired shared-memory release
# ----------------------------------------------------------------------


def test_rep005_flags_unpaired_publish():
    src = (
        "def run(runtime, arrays):\n"
        "    handle, release = runtime.publish_arrays(arrays)\n"
        "    return handle\n"
    )
    assert codes(src) == ["REP005"]


def test_rep005_accepts_finally_release():
    src = (
        "def run(runtime, arrays):\n"
        "    handle, release = runtime.publish_arrays(arrays)\n"
        "    try:\n"
        "        return work(handle)\n"
        "    finally:\n"
        "        release()\n"
    )
    assert codes(src) == []


def test_rep005_accepts_exitstack_registration():
    src = (
        "def run(runtime, arrays, stack):\n"
        "    handle, release = runtime.publish_arrays(arrays)\n"
        "    stack.callback(release)\n"
        "    return handle\n"
    )
    assert codes(src) == []


def test_rep005_suggests_published_context_manager():
    finding = lint(
        "def run(runtime, arrays):\n"
        "    handle, release = runtime.publish_arrays(arrays)\n"
        "    return handle\n"
    )[0]
    assert "published(" in finding.hint


# ----------------------------------------------------------------------
# REP006 — policy routes through ExecutionContext
# ----------------------------------------------------------------------


def test_rep006_flags_bare_policy_kwarg():
    src = "def estimate(graph, seeds, mc_batch_size=64):\n    return 0\n"
    found = lint(src)
    assert [f.code for f in found] == ["REP006"]
    assert "mc_batch_size" in found[0].message


def test_rep006_accepts_context_hybrid():
    src = (
        "def estimate(graph, seeds, mc_batch_size=None, context=None):\n"
        "    return 0\n"
    )
    assert codes(src) == []


def test_rep006_accepts_resolve_context_shim():
    src = (
        "def estimate(graph, seeds, jobs=None):\n"
        "    ctx = resolve_context(None, 'estimate', jobs=jobs)\n"
        "    return ctx\n"
    )
    assert codes(src) == []


def test_rep006_only_applies_inside_the_package():
    src = "def sweep(graph, jobs=4):\n    return jobs\n"
    assert codes(src, "benchmarks/bench_example.py") == []
    assert codes(src, "src/repro/core/example.py") == ["REP006"]


def test_rep006_exempts_the_policy_layer_modules():
    src = "def parse(jobs=1, kernel_backend='auto'):\n    return jobs\n"
    for exempt in ("src/repro/cli.py", "src/repro/experiments/config.py"):
        assert codes(src, exempt) == []


def test_resolve_context_deprecation_warning_names_rep006(ic_model):
    from repro.baselines.celf import CELFMinimizer

    with pytest.deprecated_call(match="REP006"):
        CELFMinimizer(ic_model, samples=8, mc_batch_size=8)


# ----------------------------------------------------------------------
# REP007 — no bare blocking sleeps
# ----------------------------------------------------------------------


def test_rep007_flags_bare_time_sleep():
    src = "import time\n\ndef wait():\n    time.sleep(1.0)\n"
    assert codes(src) == ["REP007"]


def test_rep007_flags_aliased_and_from_imports():
    aliased = "import time as t\n\ndef wait():\n    t.sleep(0.5)\n"
    assert codes(aliased) == ["REP007"]
    from_import = "from time import sleep as snooze\n\ndef wait():\n    snooze(2)\n"
    assert codes(from_import) == ["REP007"]


def test_rep007_flags_blocking_sleeps_in_async_code():
    # Both a bare time.sleep and the otherwise-sanctioned backoff helper
    # block the event loop inside an async def; the hint says to await
    # asyncio.sleep instead.
    blocking = (
        "import time\n"
        "from repro.utils.timing import backoff_sleep\n\n"
        "async def handler():\n"
        "    time.sleep(0.1)\n"
        "    backoff_sleep(0.1, 1)\n"
    )
    findings = lint(blocking, "src/repro/service/example.py")
    assert [f.code for f in findings] == ["REP007", "REP007"]
    assert "event loop" in findings[1].message


def test_rep007_accepts_async_sleep_and_backoff_helper():
    src = (
        "import asyncio\n"
        "from repro.utils.timing import backoff_sleep\n\n"
        "async def handler():\n"
        "    await asyncio.sleep(0.1)\n\n"
        "def retry():\n"
        "    backoff_sleep(0.1, 1)\n"
    )
    assert codes(src, "src/repro/service/example.py") == []


def test_rep007_sync_def_inside_async_def_is_sync():
    # A nested sync def is executor-bound work, not loop code.
    src = (
        "import time\n\n"
        "async def handler():\n"
        "    def compute():\n"
        "        time.sleep(0.01)\n"
        "    return compute\n"
    )
    findings = lint(src)
    assert [f.code for f in findings] == ["REP007"]
    assert "library code" in findings[0].message


def test_rep007_exempts_the_timing_module():
    src = "import time\n\ndef backoff_sleep(base, attempt):\n    time.sleep(base)\n"
    assert codes(src, "src/repro/utils/timing.py") == []


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------


def test_suppression_on_the_flagged_line():
    src = (
        "import numpy as np\n"
        "np.random.seed(0)  # repro-lint: disable=REP001 -- fixture\n"
    )
    assert codes(src) == []


def test_suppression_from_the_line_above():
    src = (
        "import numpy as np\n"
        "# repro-lint: disable=REP001 -- deliberate fixture\n"
        "np.random.seed(0)\n"
    )
    assert codes(src) == []


def test_bare_disable_suppresses_every_code():
    src = (
        "import numpy as np\n"
        "np.random.seed(0)  # repro-lint: disable\n"
    )
    assert codes(src) == []


def test_suppression_is_code_specific():
    src = (
        "import numpy as np\n"
        "np.random.seed(0)  # repro-lint: disable=REP003\n"
    )
    assert codes(src) == ["REP001"]


def test_suppressed_lines_parses_multiple_codes():
    mapping = suppressed_lines("x = 1  # repro-lint: disable=REP001, REP006\n")
    assert mapping[1] == frozenset({"REP001", "REP006"})


# ----------------------------------------------------------------------
# Parse errors, rendering, CLI
# ----------------------------------------------------------------------


def test_unparsable_source_reports_rep000():
    found = lint("def broken(:\n")
    assert [f.code for f in found] == [PARSE_ERROR_CODE]


def test_json_payload_shape_is_pinned():
    findings = lint("import numpy as np\nnp.random.seed(0)\n")
    payload = json.loads(render_json(findings, files_checked=1))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["counts_by_code"] == {"REP001": 1}
    (entry,) = payload["findings"]
    assert set(entry) == {"path", "line", "col", "code", "message", "hint"}
    assert entry["code"] == "REP001"
    assert entry["line"] == 2


def test_collect_files_walks_directories_and_skips_caches(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    files = collect_files([str(tmp_path)])
    assert files == [tmp_path / "pkg" / "mod.py"]
    with pytest.raises(FileNotFoundError):
        collect_files([str(tmp_path / "missing")])


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nnp.random.seed(0)\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    assert "REP001" in capsys.readouterr().out
    assert main([]) == 2
    assert main(["--select", "REP999", str(clean)]) == 2
    assert main(["--list-rules"]) == 0
    assert "REP001" in capsys.readouterr().out


def test_main_select_restricts_rules(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
    assert main(["--select", "REP003", str(dirty)]) == 0
    assert main(["--select", "REP001,REP003", str(dirty)]) == 1


# ----------------------------------------------------------------------
# Scratch-copy mutation checks against real sources
# ----------------------------------------------------------------------


def _mirror(tmp_path: Path, relative: str) -> Path:
    """Copy one real source file into a ``repro/...`` scratch mirror."""
    destination = tmp_path / "repro" / relative
    destination.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(REPO_SRC / "repro" / relative, destination)
    return destination


def test_shipped_tree_is_clean():
    runner = LintRunner()
    findings, files_checked = runner.lint_paths([str(REPO_SRC)])
    assert findings == []
    assert files_checked > 50


def test_mutated_global_seed_is_caught(tmp_path):
    target = _mirror(tmp_path, "diffusion/montecarlo.py")
    assert LintRunner().lint_file(target) == []
    target.write_text(
        target.read_text() + "\n\ndef _mutated() -> None:\n    np.random.seed(0)\n"
    )
    assert [f.code for f in LintRunner().lint_file(target)] == ["REP001"]


def test_mutated_lambda_dispatch_is_caught(tmp_path):
    target = _mirror(tmp_path, "sampling/engine.py")
    assert LintRunner().lint_file(target) == []
    target.write_text(
        target.read_text()
        + "\n\ndef _mutated(runtime, payloads):\n"
        + "    return runtime.map_ordered(lambda item: item, payloads)\n"
    )
    assert [f.code for f in LintRunner().lint_file(target)] == ["REP003"]


def test_mutated_kernel_is_caught(tmp_path):
    target = _mirror(tmp_path, "kernels/reference.py")
    assert LintRunner().lint_file(target) == []
    target.write_text(
        target.read_text()
        + "\n\ndef _mutated_kernel(frontier):\n    lookup = {}\n    return lookup\n"
    )
    assert [f.code for f in LintRunner().lint_file(target)] == ["REP004"]
