"""Unit tests for the selector abstractions."""

import pytest

from repro.core.policy import (
    FirstNodeSelector,
    RandomNodeSelector,
    Selection,
    SelectionDiagnostics,
)
from repro.graph import generators
from repro.graph.residual import initial_residual


class TestSelection:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            Selection(nodes=[])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Selection(nodes=[1, 1])

    def test_default_diagnostics(self):
        s = Selection(nodes=[3])
        assert s.diagnostics == SelectionDiagnostics()

    def test_diagnostics_carried(self):
        d = SelectionDiagnostics(samples_generated=5, iterations=2)
        s = Selection(nodes=[0], diagnostics=d)
        assert s.diagnostics.samples_generated == 5


class TestBuiltinSelectors:
    def test_first_node(self, rng):
        res = initial_residual(generators.path_graph(4), eta=2)
        assert FirstNodeSelector().select(res, rng).nodes == [0]

    def test_random_node_in_range(self, rng):
        res = initial_residual(generators.path_graph(10), eta=2)
        for _ in range(20):
            picked = RandomNodeSelector().select(res, rng).nodes[0]
            assert 0 <= picked < 10

    def test_repr_mentions_name(self):
        assert "first-node" in repr(FirstNodeSelector())
