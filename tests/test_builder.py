"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import EdgeError
from repro.graph.builder import GraphBuilder


class TestAddEdge:
    def test_basic_build(self):
        g = GraphBuilder(3).add_edge(0, 1, 0.5).add_edge(1, 2, 0.7).build()
        assert g.m == 2
        assert g.edge_probability(1, 2) == pytest.approx(0.7)

    def test_deduplicate_keeps_last(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1, 0.3)
        builder.add_edge(0, 1, 0.9)
        g = builder.build()
        assert g.m == 1
        assert g.edge_probability(0, 1) == pytest.approx(0.9)

    def test_parallel_edges_when_requested(self):
        builder = GraphBuilder(2, deduplicate=False)
        builder.add_edge(0, 1, 0.3)
        builder.add_edge(0, 1, 0.9)
        assert len(builder) == 2
        assert builder.build().m == 2

    def test_has_edge(self):
        builder = GraphBuilder(2).add_edge(0, 1, 0.5)
        assert builder.has_edge(0, 1)
        assert not builder.has_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            GraphBuilder(2).add_edge(1, 1, 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(EdgeError):
            GraphBuilder(2).add_edge(0, 2, 0.5)
        with pytest.raises(EdgeError):
            GraphBuilder(2).add_edge(-1, 0, 0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(EdgeError):
            GraphBuilder(2).add_edge(0, 1, 0.0)
        with pytest.raises(EdgeError):
            GraphBuilder(2).add_edge(0, 1, 1.1)

    def test_negative_node_count_rejected(self):
        with pytest.raises(EdgeError):
            GraphBuilder(-1)


class TestBulkHelpers:
    def test_undirected_edge_adds_both_directions(self):
        g = GraphBuilder(2).add_undirected_edge(0, 1, 0.4).build()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.m == 2

    def test_add_edges(self):
        g = GraphBuilder(3).add_edges([(0, 1, 0.5), (1, 2, 0.5)]).build()
        assert g.m == 2

    def test_add_path(self):
        g = GraphBuilder(4).add_path([0, 1, 2, 3], 0.25).build()
        assert g.m == 3
        assert g.edge_probability(2, 3) == pytest.approx(0.25)

    def test_add_path_single_node_is_noop(self):
        g = GraphBuilder(2).add_path([0], 0.5).build()
        assert g.m == 0

    def test_empty_build(self):
        g = GraphBuilder(5).build()
        assert g.n == 5
        assert g.m == 0
