"""Unit tests for edge-weighting schemes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import generators, weighting
from repro.graph.builder import GraphBuilder


@pytest.fixture
def fan_in():
    """Three sources all pointing at node 3."""
    builder = GraphBuilder(4)
    builder.add_edge(0, 3, 1.0)
    builder.add_edge(1, 3, 1.0)
    builder.add_edge(2, 3, 1.0)
    return builder.build()


class TestWeightedCascade:
    def test_probability_is_inverse_indegree(self, fan_in):
        g = weighting.weighted_cascade(fan_in)
        for u in range(3):
            assert g.edge_probability(u, 3) == pytest.approx(1.0 / 3.0)

    def test_incoming_sums_to_one(self, fan_in):
        g = weighting.weighted_cascade(fan_in)
        assert float(g.in_probabilities(3).sum()) == pytest.approx(1.0)

    def test_topology_preserved(self, fan_in):
        g = weighting.weighted_cascade(fan_in)
        assert g.n == fan_in.n
        assert g.m == fan_in.m


class TestScaledCascade:
    def test_damping_scales_probabilities(self, fan_in):
        g = weighting.scaled_cascade(fan_in, 0.6)
        assert g.edge_probability(0, 3) == pytest.approx(0.2)

    def test_gamma_one_matches_weighted_cascade(self, fan_in):
        assert weighting.scaled_cascade(fan_in, 1.0) == weighting.weighted_cascade(fan_in)

    def test_invalid_gamma(self, fan_in):
        with pytest.raises(ConfigurationError):
            weighting.scaled_cascade(fan_in, 0.0)
        with pytest.raises(ConfigurationError):
            weighting.scaled_cascade(fan_in, 1.5)

    def test_valid_lt_weighting(self, fan_in):
        from repro.diffusion.lt import check_lt_validity

        check_lt_validity(weighting.scaled_cascade(fan_in, 0.4))


class TestConstant:
    def test_assigns_everywhere(self, fan_in):
        g = weighting.constant(fan_in, 0.05)
        _, _, probs = g.edge_arrays()
        assert np.allclose(probs, 0.05)

    def test_invalid_probability(self, fan_in):
        with pytest.raises(ConfigurationError):
            weighting.constant(fan_in, 0.0)


class TestTrivalency:
    def test_uses_only_choices(self, fan_in):
        g = weighting.trivalency(fan_in, seed=1)
        _, _, probs = g.edge_arrays()
        assert set(np.round(probs, 6)) <= {0.1, 0.01, 0.001}

    def test_reproducible(self, fan_in):
        a = weighting.trivalency(fan_in, seed=7)
        b = weighting.trivalency(fan_in, seed=7)
        assert a == b

    def test_empty_choices_rejected(self, fan_in):
        with pytest.raises(ConfigurationError):
            weighting.trivalency(fan_in, choices=())

    def test_invalid_choice_rejected(self, fan_in):
        with pytest.raises(ConfigurationError):
            weighting.trivalency(fan_in, choices=(0.1, 2.0))


class TestUniformRandom:
    def test_within_bounds(self, fan_in):
        g = weighting.uniform_random(fan_in, low=0.2, high=0.4, seed=3)
        _, _, probs = g.edge_arrays()
        assert probs.min() >= 0.2
        assert probs.max() <= 0.4

    def test_invalid_bounds(self, fan_in):
        with pytest.raises(ConfigurationError):
            weighting.uniform_random(fan_in, low=0.5, high=0.2)


class TestNormalizeForLT:
    def test_violating_node_scaled(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 2, 0.9)
        builder.add_edge(1, 2, 0.9)
        g = weighting.normalize_for_lt(builder.build())
        assert float(g.in_probabilities(2).sum()) == pytest.approx(1.0)

    def test_satisfying_node_untouched(self, fan_in):
        g = weighting.weighted_cascade(fan_in)
        assert weighting.normalize_for_lt(g) == g

    def test_empty_graph(self):
        g = GraphBuilder(3).build()
        assert weighting.normalize_for_lt(g) == g


class TestOnGeneratedGraphs:
    def test_weighted_cascade_on_preferential_attachment(self):
        topo = generators.preferential_attachment(60, 2, seed=0, directed=False)
        g = weighting.weighted_cascade(topo)
        sums = np.zeros(g.n)
        src, dst, probs = g.edge_arrays()
        np.add.at(sums, dst, probs)
        nonzero = sums[g.in_degrees() > 0]
        assert np.allclose(nonzero, 1.0)
