"""Dtype-adaptive compact graph storage: decisions and bit-equivalence.

The compact layout (int32 CSR indices/indptr when ``n`` and ``m`` fit,
float32 probabilities when the downcast is lossless) must be numerically
indistinguishable from the wide int64/float64 reference: every consumer
promotes exactly.  These tests pin the dtype decision rules, the
int32-vs-int64 equivalence across the full sampling/simulation stack, and
the shared-memory round-trip of compact graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ASTI, IndependentCascade, LinearThreshold
from repro.diffusion.montecarlo import CRNSpreadEvaluator
from repro.errors import GraphError
from repro.graph import generators, weighting
from repro.graph.digraph import DiGraph, csr_index_dtype, csr_prob_dtype
from repro.parallel.shm import graph_from_handle, share_graph
from repro.sampling.coverage import CoverageIndex
from repro.sampling.engine import mrr_batch_sampler
from repro.sampling.mrr import RootCountRule


@pytest.fixture(params=["IC", "LT"])
def model(request):
    return IndependentCascade() if request.param == "IC" else LinearThreshold()


@pytest.fixture
def wc_graph():
    """Weighted-cascade probabilities (1/indeg): float32-ineligible."""
    topology = generators.preferential_attachment(150, 3, seed=7, directed=False)
    return weighting.weighted_cascade(topology)


@pytest.fixture
def exact_graph():
    """Power-of-two weights: fully compact-eligible (int32 + float32).

    ``p(u, v) = 1 / 2^ceil(log2 indeg(v))`` — every value is a dyadic
    rational (lossless in float32) and incoming sums stay <= 1, so the
    graph is valid for LT as well.
    """
    topology = generators.preferential_attachment(150, 3, seed=7, directed=False)
    src, dst, _ = topology.edge_arrays()
    indeg = np.maximum(topology.in_degrees(), 1)
    pow2 = np.exp2(np.ceil(np.log2(indeg)))
    return DiGraph.from_arrays(topology.n, src, dst, 1.0 / pow2[dst])


class TestDtypeDecision:
    def test_index_dtype_boundary(self):
        limit = np.iinfo(np.int32).max
        assert csr_index_dtype(100, 100) == np.int32
        assert csr_index_dtype(limit - 1, limit) == np.int32
        # Straddling the boundary: one count over the int32 range flips
        # the whole layout to int64.
        assert csr_index_dtype(limit, 10) == np.int64
        assert csr_index_dtype(10, limit + 1) == np.int64

    def test_prob_dtype_lossless_rule(self):
        assert csr_prob_dtype(np.asarray([0.5, 0.25, 1.0])) == np.float32
        # 1/3 does not survive a float32 round-trip.
        assert csr_prob_dtype(np.asarray([1.0 / 3.0])) == np.float64
        assert csr_prob_dtype(np.asarray([0.1])) == np.float64

    def test_adaptive_graph_dtypes(self, wc_graph, exact_graph):
        assert wc_graph.index_dtype == np.int32
        assert wc_graph.prob_dtype == np.float64
        assert exact_graph.index_dtype == np.int32
        assert exact_graph.prob_dtype == np.float32

    def test_wide_storage_pins_reference_layout(self, exact_graph):
        wide = exact_graph.with_storage("wide")
        assert wide.index_dtype == np.int64
        assert wide.prob_dtype == np.float64
        assert wide == exact_graph  # topology + probabilities identical
        # Round-trip back to adaptive restores the compact layout.
        again = wide.with_storage("adaptive")
        assert again.index_dtype == np.int32
        assert again.prob_dtype == np.float32

    def test_compact_halves_csr_bytes_when_fully_eligible(self, exact_graph):
        wide = exact_graph.with_storage("wide")
        assert exact_graph.csr_nbytes * 2 == wide.csr_nbytes

    def test_invalid_storage_policy_rejected(self, exact_graph):
        with pytest.raises(GraphError, match="storage"):
            exact_graph.with_storage("narrow")
        with pytest.raises(GraphError, match="storage"):
            DiGraph.from_edges(2, [(0, 1, 0.5)], storage="packed")

    def test_storage_policy_inherited_by_derived_graphs(self, exact_graph):
        wide = exact_graph.with_storage("wide")
        keep = np.ones(wide.n, dtype=bool)
        keep[:10] = False
        sub_wide, _ = wide.induced_subgraph(keep)
        assert sub_wide.storage == "wide"
        assert sub_wide.index_dtype == np.int64
        assert sub_wide.prob_dtype == np.float64
        sub_compact, _ = exact_graph.induced_subgraph(keep)
        assert sub_compact.storage == "adaptive"
        assert sub_compact.index_dtype == np.int32
        assert wide.reverse().storage == "wide"
        assert wide.with_probabilities(lambda u, v: 0.5).storage == "wide"

    def test_edge_arrays_export_is_canonical(self, exact_graph):
        src, dst, probs = exact_graph.edge_arrays()
        assert src.dtype == np.int64
        assert dst.dtype == np.int64
        assert probs.dtype == np.float64


class TestBitEquivalence:
    """Compact vs wide storage: identical draws everywhere."""

    def graphs(self, graph):
        return graph, graph.with_storage("wide")

    def test_realizations_identical(self, model, exact_graph):
        compact, wide = self.graphs(exact_graph)
        phi_c = model.sample_realization(compact, np.random.default_rng(3))
        phi_w = type(model)().sample_realization(wide, np.random.default_rng(3))
        if hasattr(phi_c, "live_edges"):
            assert np.array_equal(phi_c.live_edges, phi_w.live_edges)
        else:
            assert np.array_equal(phi_c.chosen_source, phi_w.chosen_source)

    def test_mrr_pools_identical(self, model, exact_graph):
        compact, wide = self.graphs(exact_graph)
        pools = []
        for graph in (compact, wide):
            rule = RootCountRule.for_target(graph.n, 15)
            engine = mrr_batch_sampler(
                graph, type(model)(), rule, seed=17, batch_size=64
            )
            index = CoverageIndex(graph.n)
            engine.fill(index, 500)
            pools.append(index.packed())
        assert np.array_equal(pools[0][0], pools[1][0])
        assert np.array_equal(pools[0][1], pools[1][1])

    def test_simulate_batch_identical(self, model, exact_graph):
        compact, wide = self.graphs(exact_graph)
        members_c, indptr_c = model.simulate_batch(
            compact, [0, 2], 50, seed=23
        )
        members_w, indptr_w = type(model)().simulate_batch(
            wide, [0, 2], 50, seed=23
        )
        assert np.array_equal(members_c, members_w)
        assert np.array_equal(indptr_c, indptr_w)

    def test_crn_estimates_identical(self, model, exact_graph):
        compact, wide = self.graphs(exact_graph)
        candidates = [[v] for v in range(10)]
        values_c = CRNSpreadEvaluator(
            compact, model, n_sims=30, seed=5
        ).evaluate_many(candidates)
        values_w = CRNSpreadEvaluator(
            wide, type(model)(), n_sims=30, seed=5
        ).evaluate_many(candidates)
        assert np.array_equal(values_c, values_w)

    def test_adaptive_seed_sets_identical(self, model, exact_graph):
        compact, wide = self.graphs(exact_graph)
        run_c = ASTI(model, epsilon=0.5, max_samples=4000).run(
            compact, eta=15, seed=31
        )
        run_w = ASTI(type(model)(), epsilon=0.5, max_samples=4000).run(
            wide, eta=15, seed=31
        )
        assert run_c.seeds == run_w.seeds
        assert run_c.spread == run_w.spread
        assert run_c.marginal_spreads == run_w.marginal_spreads

    def test_wc_graph_pipeline_identical(self, model, wc_graph):
        """Index-only compaction (float64 probs) is equivalent too."""
        compact, wide = self.graphs(wc_graph)
        run_c = ASTI(model, epsilon=0.5, max_samples=4000).run(
            compact, eta=12, seed=13
        )
        run_w = ASTI(type(model)(), epsilon=0.5, max_samples=4000).run(
            wide, eta=12, seed=13
        )
        assert run_c.seeds == run_w.seeds


class TestSharedMemoryRoundTrip:
    def test_compact_graph_survives_shm_round_trip(self, exact_graph):
        bundle, handle = share_graph(exact_graph)
        try:
            rebuilt = graph_from_handle(handle)
            assert rebuilt.index_dtype == np.int32
            assert rebuilt.prob_dtype == np.float32
            assert rebuilt == exact_graph
        finally:
            bundle.close()

    def test_segment_bytes_track_storage(self, exact_graph):
        compact_bundle, _ = share_graph(exact_graph)
        wide_bundle, _ = share_graph(exact_graph.with_storage("wide"))
        try:
            assert compact_bundle.nbytes < 0.55 * wide_bundle.nbytes + 1
        finally:
            compact_bundle.close()
            wide_bundle.close()


class TestCoveragePacking:
    def test_members_stored_compact(self):
        index = CoverageIndex(1000)
        index.add(np.asarray([1, 5, 7], dtype=np.int64))
        members, indptr = index.packed()
        assert members.dtype == np.int32
        assert indptr.dtype == np.int64  # pool sizes may exceed int32
        assert members.tolist() == [1, 5, 7]

    def test_compact_members_keep_coverage_semantics(self):
        index = CoverageIndex(50)
        index.add_batch(
            np.asarray([2, 3, 2, 4], dtype=np.int64),
            np.asarray([0, 2, 4], dtype=np.int64),
        )
        assert index.coverage_of(2) == 2
        assert index.coverage_of_set([3, 4]) == 2
        node, coverage = index.argmax_node()
        assert (node, coverage) == (2, 2)
