"""Unit tests for residual graphs."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators, weighting
from repro.graph.residual import ResidualGraph, initial_residual, shrink_residual


class TestInitialResidual:
    def test_identity_mapping(self, path3):
        res = initial_residual(path3, eta=2)
        assert res.n == 3
        assert res.shortfall == 2
        assert res.round_index == 1
        assert list(res.original_ids) == [0, 1, 2]

    def test_eta_bounds(self, path3):
        with pytest.raises(GraphError):
            initial_residual(path3, eta=0)
        with pytest.raises(GraphError):
            initial_residual(path3, eta=4)

    def test_mapping_helpers(self, path3):
        res = initial_residual(path3, eta=1)
        assert list(res.to_original([0, 2])) == [0, 2]
        assert res.local_of(1) == 1


class TestShrink:
    def test_removes_activated(self, path3):
        res = initial_residual(path3, eta=3)
        res2 = shrink_residual(res, [0, 1])
        assert res2.n == 1
        assert res2.shortfall == 1
        assert res2.round_index == 2
        assert list(res2.original_ids) == [2]

    def test_edges_dropped_with_nodes(self, star6):
        res = initial_residual(star6, eta=6)
        res2 = shrink_residual(res, [0])
        assert res2.m == 0  # hub removal kills every edge

    def test_shortfall_floors_at_zero(self, path3):
        res = initial_residual(path3, eta=1)
        res2 = shrink_residual(res, [0, 1, 2])
        assert res2.shortfall == 0
        assert res2.n == 0

    def test_local_ids_renumbered(self):
        g = generators.path_graph(5)
        res = initial_residual(g, eta=5)
        res2 = shrink_residual(res, [0, 2])  # remove originals 0, 2
        assert list(res2.original_ids) == [1, 3, 4]
        # Edge 3 -> 4 survives under local ids 1 -> 2.
        assert res2.graph.has_edge(1, 2)
        assert res2.local_of(3) == 1

    def test_chained_shrinks_compose(self):
        g = generators.path_graph(6)
        res = initial_residual(g, eta=6)
        res = shrink_residual(res, [0])
        res = shrink_residual(res, [0])  # local 0 is original 1 now
        assert list(res.original_ids) == [2, 3, 4, 5]
        assert res.round_index == 3
        assert res.shortfall == 4

    def test_empty_activation_rejected(self, path3):
        res = initial_residual(path3, eta=2)
        with pytest.raises(GraphError):
            shrink_residual(res, [])

    def test_out_of_range_activation_rejected(self, path3):
        res = initial_residual(path3, eta=2)
        with pytest.raises(GraphError):
            shrink_residual(res, [7])

    def test_local_of_missing_node(self, path3):
        res = initial_residual(path3, eta=2)
        res2 = shrink_residual(res, [1])
        with pytest.raises(GraphError):
            res2.local_of(1)


class TestShrinkVectorizedRegression:
    """The vectorized shrink must round-trip exactly like the old loop."""

    @staticmethod
    def _reference_shrink(current, newly_activated_local):
        # The pre-vectorization per-node implementation, kept verbatim as
        # the regression oracle.
        import numpy as np

        activated = np.zeros(current.n, dtype=bool)
        for v in newly_activated_local:
            if not 0 <= v < current.n:
                raise GraphError(
                    f"activated node {v} out of residual range {current.n}"
                )
            activated[v] = True
        removed = int(activated.sum())
        if removed == 0:
            raise GraphError("a round must activate at least the selected seed")
        keep = ~activated
        subgraph, kept_local = current.graph.induced_subgraph(keep)
        return ResidualGraph(
            graph=subgraph,
            original_ids=current.original_ids[kept_local],
            shortfall=max(0, current.shortfall - removed),
            round_index=current.round_index + 1,
        )

    def test_large_batch_matches_reference(self):
        import numpy as np

        g = weighting.weighted_cascade(
            generators.preferential_attachment(500, 3, seed=11, directed=False)
        )
        res = initial_residual(g, eta=400)
        rng = np.random.default_rng(5)
        activated = rng.choice(g.n, size=350, replace=False)
        fast = shrink_residual(res, activated)
        slow = self._reference_shrink(res, activated)
        assert fast.graph == slow.graph
        assert np.array_equal(fast.original_ids, slow.original_ids)
        assert fast.shortfall == slow.shortfall
        assert fast.round_index == slow.round_index

    def test_duplicate_ids_match_reference(self, path3):
        res = initial_residual(path3, eta=3)
        fast = shrink_residual(res, [1, 1, 2])
        slow = self._reference_shrink(res, [1, 1, 2])
        assert list(fast.original_ids) == list(slow.original_ids)
        assert fast.shortfall == slow.shortfall

    def test_error_messages_preserved(self, path3):
        res = initial_residual(path3, eta=2)
        with pytest.raises(GraphError, match=r"activated node 7 out of residual range 3"):
            shrink_residual(res, [1, 7])
        with pytest.raises(GraphError, match="at least the selected seed"):
            shrink_residual(res, [])
