"""Unit tests for single-root RR sets."""

import pytest

from repro.diffusion.exact import exact_expected_spread
from repro.errors import SamplingError
from repro.graph import generators
from repro.sampling.rr import RRCollection, RRSampler


class TestRRSampler:
    def test_sets_contain_root(self, ic_model, path3, rng):
        sampler = RRSampler(path3, ic_model, seed=rng)
        for _ in range(10):
            members = sampler.sample()
            assert len(members) >= 1

    def test_empty_graph_rejected(self, ic_model):
        from repro.graph.digraph import DiGraph

        with pytest.raises(SamplingError):
            RRSampler(DiGraph.from_edges(0, []), ic_model)

    def test_sample_into(self, ic_model, path3, rng):
        from repro.sampling.coverage import CoverageIndex

        sampler = RRSampler(path3, ic_model, seed=rng)
        index = CoverageIndex(3)
        sampler.sample_into(index, 25)
        assert len(index) == 25

    def test_negative_count_rejected(self, ic_model, path3, rng):
        from repro.sampling.coverage import CoverageIndex

        sampler = RRSampler(path3, ic_model, seed=rng)
        with pytest.raises(SamplingError):
            sampler.sample_into(CoverageIndex(3), -1)


class TestRRCollection:
    def test_grow_to_idempotent(self, ic_model, path3):
        pool = RRCollection(path3, ic_model, seed=0)
        pool.grow_to(40)
        pool.grow_to(30)
        assert len(pool) == 40

    def test_estimate_requires_sets(self, ic_model, path3):
        pool = RRCollection(path3, ic_model, seed=0)
        with pytest.raises(SamplingError):
            pool.estimated_spread([0])

    def test_unbiased_on_certain_star(self, ic_model):
        # Star with certain edges: hub's spread is exactly n, leaves' is 1.
        g = generators.star_graph(5, probability=1.0)
        pool = RRCollection(g, ic_model, seed=1)
        pool.grow_to(2000)
        assert pool.estimated_spread([0]) == pytest.approx(5.0)
        leaf = pool.estimated_spread([1])
        assert 0.4 < leaf < 1.8  # E = 1, variance from root choice

    def test_estimate_matches_exact_expected_spread(self, ic_model, rng):
        g = generators.paper_example_graph()
        pool = RRCollection(g, ic_model, seed=7)
        pool.grow_to(8000)
        for v in range(4):
            exact = exact_expected_spread(g, ic_model, [v])
            assert pool.estimated_node_spread(v) == pytest.approx(exact, rel=0.12)

    def test_set_estimate_at_least_node_estimate(self, ic_model, small_social):
        pool = RRCollection(small_social, ic_model, seed=3)
        pool.grow_to(500)
        single = pool.estimated_node_spread(0)
        pair = pool.estimated_spread([0, 1])
        assert pair >= single - 1e-9

    def test_lt_model_supported(self, lt_model, path5_half):
        pool = RRCollection(path5_half, lt_model, seed=2)
        pool.grow_to(3000)
        # Chain with p = 0.5: E[I({0})] = 1 + .5 + .25 + .125 + .0625.
        assert pool.estimated_spread([0]) == pytest.approx(1.9375, rel=0.15)
