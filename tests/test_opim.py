"""Unit tests for the OPIM-style IM machinery."""

import numpy as np
import pytest

from repro.baselines.opim import OpimNodeSelector, opim_influence_maximization
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.residual import initial_residual


class TestOpimNodeSelector:
    def test_picks_star_hub(self, ic_model, rng):
        g = generators.star_graph(20, probability=1.0)
        residual = initial_residual(g, eta=5)
        selection = OpimNodeSelector(ic_model, epsilon=0.5).select(residual, rng)
        assert selection.nodes == [0]

    def test_single_node_shortcut(self, ic_model, rng):
        residual = initial_residual(generators.path_graph(1), eta=1)
        selection = OpimNodeSelector(ic_model).select(residual, rng)
        assert selection.nodes == [0]

    def test_vanilla_objective_prefers_v1_on_paper_example(self, ic_model):
        # The flip side of Example 2.3: *without* truncation, v1 wins —
        # which is exactly why AdaptIM lacks the ASM guarantee.
        g = generators.paper_example_graph()
        residual = initial_residual(g, eta=2)
        picks = set()
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            picks.add(OpimNodeSelector(ic_model, epsilon=0.3).select(residual, rng).nodes[0])
        assert 0 in picks  # v1 gets picked under the vanilla objective
        assert picks <= {0}

    def test_diagnostics(self, ic_model, small_social_damped, rng):
        residual = initial_residual(small_social_damped, eta=12)
        d = OpimNodeSelector(ic_model, epsilon=0.5).select(residual, rng).diagnostics
        assert d.samples_generated > 0
        assert d.estimated_gain > 0


class TestOpimInfluenceMaximization:
    def test_star_hub_selected_first(self, ic_model):
        g = generators.star_graph(15, probability=1.0)
        result = opim_influence_maximization(g, ic_model, k=2, seed=0)
        assert 0 in result.seeds
        assert result.estimated_spread >= 14.0

    def test_k_validation(self, ic_model, path3):
        with pytest.raises(ConfigurationError):
            opim_influence_maximization(path3, ic_model, k=0)
        with pytest.raises(ConfigurationError):
            opim_influence_maximization(path3, ic_model, k=9)

    def test_certificate_reported(self, ic_model, small_social):
        result = opim_influence_maximization(
            small_social, ic_model, k=3, epsilon=0.5, seed=1
        )
        assert len(result.seeds) == 3
        assert result.samples > 0
        assert 0.0 <= result.certified_ratio <= 1.0

    def test_spread_monotone_in_k(self, ic_model, small_social):
        r1 = opim_influence_maximization(small_social, ic_model, k=1, seed=2)
        r3 = opim_influence_maximization(small_social, ic_model, k=3, seed=2)
        assert r3.estimated_spread >= r1.estimated_spread * 0.9

    def test_max_samples_cap(self, ic_model, small_social):
        result = opim_influence_maximization(
            small_social, ic_model, k=2, seed=3, max_samples=128
        )
        assert result.samples <= 260  # one doubling past the cap boundary
