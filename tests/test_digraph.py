"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.errors import EdgeError, GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph, gather_csr_rows, nodes_reachable_from


def make_triangle():
    return DiGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)])


class TestConstruction:
    def test_from_edges_counts(self):
        g = make_triangle()
        assert g.n == 3
        assert g.m == 3

    def test_empty_graph(self):
        g = DiGraph.from_edges(4, [])
        assert g.n == 4
        assert g.m == 0
        assert g.out_degree(3) == 0

    def test_zero_node_graph(self):
        g = DiGraph.from_edges(0, [])
        assert g.n == 0
        assert len(g) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edges(2, [(0, 0, 0.5)])

    def test_out_of_range_source_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edges(2, [(2, 0, 0.5)])

    def test_out_of_range_target_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edges(2, [(0, 5, 0.5)])

    def test_zero_probability_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edges(2, [(0, 1, 0.0)])

    def test_probability_above_one_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_edges(2, [(0, 1, 1.5)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(EdgeError):
            DiGraph.from_arrays(
                3,
                np.array([0, 1]),
                np.array([1]),
                np.array([0.5]),
            )

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(
                -1,
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
            )


class TestAccessors:
    def test_degrees(self):
        g = make_triangle()
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1
        assert list(g.out_degrees()) == [1, 1, 1]
        assert list(g.in_degrees()) == [1, 1, 1]

    def test_neighbors(self):
        g = make_triangle()
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.in_neighbors(0)) == [2]

    def test_probabilities_aligned(self):
        g = make_triangle()
        assert g.out_probabilities(1)[0] == pytest.approx(0.25)
        assert g.in_probabilities(2)[0] == pytest.approx(0.25)

    def test_node_out_of_range(self):
        g = make_triangle()
        with pytest.raises(NodeNotFoundError):
            g.out_degree(3)
        with pytest.raises(NodeNotFoundError):
            g.in_neighbors(-1)

    def test_has_edge(self):
        g = make_triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_probability(self):
        g = make_triangle()
        assert g.edge_probability(2, 0) == pytest.approx(1.0)
        with pytest.raises(EdgeError):
            g.edge_probability(0, 2)

    def test_edge_probability_validates_both_endpoints(self):
        # An out-of-range target must surface as NodeNotFoundError (like
        # has_edge), not a misleading "edge does not exist" EdgeError.
        g = make_triangle()
        with pytest.raises(NodeNotFoundError):
            g.edge_probability(0, 3)
        with pytest.raises(NodeNotFoundError):
            g.edge_probability(0, -1)
        with pytest.raises(NodeNotFoundError):
            g.edge_probability(3, 0)

    def test_edges_iteration_matches_arrays(self):
        g = make_triangle()
        listed = sorted(g.edges())
        src, dst, probs = g.edge_arrays()
        from_arrays = sorted(zip(src.tolist(), dst.tolist(), probs.tolist()))
        assert listed == from_arrays

    def test_multi_out_neighbors_grouped(self):
        g = DiGraph.from_edges(4, [(0, 2, 0.1), (0, 1, 0.2), (0, 3, 0.3)])
        assert set(g.out_neighbors(0).tolist()) == {1, 2, 3}
        assert g.out_degree(0) == 3


class TestTransforms:
    def test_reverse_swaps_directions(self):
        g = make_triangle()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        assert r.m == g.m

    def test_reverse_twice_is_identity(self):
        g = make_triangle()
        assert g.reverse().reverse() == g

    def test_with_probabilities(self):
        g = make_triangle()
        g2 = g.with_probabilities(lambda u, v: 0.9)
        assert g2.edge_probability(0, 1) == pytest.approx(0.9)
        assert g2.m == g.m

    def test_induced_subgraph_drops_edges(self):
        g = make_triangle()
        keep = np.array([True, True, False])
        sub, ids = g.induced_subgraph(keep)
        assert sub.n == 2
        assert sub.m == 1  # only 0 -> 1 survives
        assert list(ids) == [0, 1]

    def test_induced_subgraph_renumbers(self):
        g = DiGraph.from_edges(4, [(1, 3, 0.5)])
        keep = np.array([False, True, False, True])
        sub, ids = g.induced_subgraph(keep)
        assert sub.n == 2
        assert sub.has_edge(0, 1)
        assert list(ids) == [1, 3]

    def test_induced_subgraph_bad_mask_shape(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.induced_subgraph(np.array([True, False]))

    def test_equality(self):
        assert make_triangle() == make_triangle()
        other = DiGraph.from_edges(3, [(0, 1, 0.5)])
        assert make_triangle() != other


class TestGatherCsrRows:
    def test_concatenates_rows_in_order(self):
        g = DiGraph.from_edges(4, [(0, 1, 0.5), (0, 2, 0.5), (2, 3, 0.5)])
        indptr, targets, _ = g.out_csr
        positions = gather_csr_rows(indptr, np.array([0, 2]))
        assert sorted(targets[positions].tolist()) == [1, 2, 3]

    def test_empty_rows(self):
        g = DiGraph.from_edges(3, [(0, 1, 0.5)])
        indptr, _, _ = g.out_csr
        assert len(gather_csr_rows(indptr, np.array([1, 2]))) == 0

    def test_no_nodes(self):
        g = DiGraph.from_edges(3, [(0, 1, 0.5)])
        indptr, _, _ = g.out_csr
        assert len(gather_csr_rows(indptr, np.array([], dtype=np.int64))) == 0


class TestReachability:
    def test_simple_path(self, path3):
        mask = nodes_reachable_from(path3, [0])
        assert mask.all()

    def test_respects_direction(self, path3):
        mask = nodes_reachable_from(path3, [2])
        assert mask.tolist() == [False, False, True]

    def test_multiple_sources(self, two_components):
        mask = nodes_reachable_from(two_components, [0, 2])
        assert mask.all()

    def test_invalid_source(self, path3):
        with pytest.raises(NodeNotFoundError):
            nodes_reachable_from(path3, [9])


class TestRelabeled:
    def big_graph(self):
        from repro.graph import generators, weighting

        return weighting.weighted_cascade(
            generators.preferential_attachment(200, 3, seed=2, directed=False)
        )

    def test_default_order_is_degree_descending(self):
        graph = self.big_graph()
        relabeled, order = graph.relabeled()
        degrees = relabeled.in_degrees() + relabeled.out_degrees()
        assert np.all(degrees[:-1] >= degrees[1:])
        # order[new_id] = old_id matches the analysis helper exactly.
        from repro.graph.analysis import degree_order

        assert np.array_equal(order, degree_order(graph))

    def test_isomorphic_edges(self):
        graph = self.big_graph()
        relabeled, order = graph.relabeled()
        inverse = np.argsort(order)
        src, dst, probs = graph.edge_arrays()
        rsrc, rdst, rprobs = relabeled.edge_arrays()
        expected = sorted(zip(inverse[src], inverse[dst], probs))
        actual = sorted(zip(rsrc, rdst, rprobs))
        assert expected == actual

    def test_inverse_mapping_round_trip(self):
        """Relabeling by the inverse permutation recovers original ids."""
        graph = self.big_graph()
        relabeled, order = graph.relabeled()
        inverse = np.argsort(order)
        # relabeled ids map back: order[new_id] = old_id, so relabeling
        # the relabeled graph by `inverse` (as its order) restores the
        # original numbering exactly.
        restored, _ = relabeled.relabeled(inverse)
        assert restored == graph

    def test_explicit_order(self, path3):
        order = np.array([2, 1, 0])
        relabeled, returned = path3.relabeled(order)
        assert np.array_equal(returned, order)
        # Old edge 0 -> 1 becomes 2 -> 1; old 1 -> 2 becomes 1 -> 0.
        assert relabeled.has_edge(2, 1) and relabeled.has_edge(1, 0)

    def test_storage_policy_inherited(self):
        graph = self.big_graph()
        wide = graph.with_storage("wide")
        relabeled, _ = wide.relabeled()
        assert relabeled.storage == "wide"

    def test_rejects_non_permutation(self, path3):
        with pytest.raises(GraphError):
            path3.relabeled(np.zeros(3, dtype=np.int64))
        with pytest.raises(GraphError):
            path3.relabeled(np.arange(2))


class TestDegreeOrder:
    def test_direction_variants(self):
        from repro.graph.analysis import degree_order

        g = DiGraph.from_edges(
            3, [(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5)]
        )
        assert degree_order(g, "out").tolist()[0] == 0
        assert degree_order(g, "in").tolist()[0] == 2
        with pytest.raises(ValueError):
            degree_order(g, "sideways")

    def test_ties_break_by_id(self, path3):
        from repro.graph.analysis import degree_order

        # path 0 -> 1 -> 2: total degrees are 1, 2, 1; ties ascending id.
        assert degree_order(path3).tolist() == [1, 0, 2]
